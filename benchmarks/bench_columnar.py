"""Columnar-execution ablation: batch vs row mode on scan/aggregate/join
queries at 10k-1M rows.

Two ways to run it:

* ``python benchmarks/bench_columnar.py [--smoke] [--output PATH]`` —
  standalone: emits a machine-readable JSON document (also written to
  ``BENCH_columnar.json`` by default) with per-size, per-query latencies,
  throughputs and speedups.  ``--smoke`` shrinks the workload to the 10k
  size for CI, which gates on the smoke aggregate speedup staying >= 2x.
* ``python -m pytest benchmarks/bench_columnar.py`` — as a test, asserting
  the report shape and that batch mode actually wins on the aggregate.

The experiment demonstrates the PR's acceptance criterion: >= 3x speedup
over row mode on a full-table aggregate at 100k+ rows (the full run also
covers 1M rows), with projection/selection pushdown visible in the
``columnar`` stats section of the report.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without pytest
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sqlengine import Database
from repro.sqlengine.planner import PlannerOptions

#: (name, SQL) benchmark queries; ``full_aggregate`` is the smoke gate.
QUERIES = [
    ("full_aggregate", "SELECT SUM(value), COUNT(*) FROM metrics"),
    (
        "filtered_scan",
        "SELECT id, value FROM metrics WHERE grp = 7 AND value > 5000",
    ),
    (
        "filtered_aggregate",
        "SELECT MIN(value), MAX(value), AVG(value) FROM metrics "
        "WHERE value >= 2500",
    ),
    (
        "hash_join_aggregate",
        "SELECT COUNT(*), SUM(metrics.value) FROM metrics, dim "
        "WHERE metrics.grp = dim.g AND dim.tag != 3",
    ),
]


def build_database(rows: int) -> Database:
    database = Database()
    database.executescript(
        """
        CREATE TABLE metrics (id INTEGER, grp INTEGER, value INTEGER,
                              label VARCHAR(20), payload VARCHAR(40));
        CREATE TABLE dim (g INTEGER, tag INTEGER);
        """
    )
    database.insert_rows(
        "metrics",
        [
            (i, i % 100, (i * 37) % 10_000, f"l{i % 50}", f"p-{i}")
            for i in range(rows)
        ],
    )
    database.insert_rows("dim", [(g, g % 7) for g in range(100)])
    return database


def _best_of(database: Database, sql: str, mode: str, repeats: int) -> float:
    """Best-of-N latency in seconds (first run warms plan + column cache)."""
    database.set_planner_options(PlannerOptions(execution_mode=mode))
    database.execute(sql)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        database.execute(sql)
        best = min(best, time.perf_counter() - start)
    return best


def run_experiment(sizes: list[int], repeats: int) -> dict:
    """Batch-vs-row latency/throughput per size and query."""
    results: dict[str, dict] = {}
    for rows in sizes:
        database = build_database(rows)
        per_query: dict[str, dict] = {}
        for name, sql in QUERIES:
            row_s = _best_of(database, sql, "row", repeats)
            batch_s = _best_of(database, sql, "batch", repeats)
            per_query[name] = {
                "row_ms": round(row_s * 1000, 3),
                "batch_ms": round(batch_s * 1000, 3),
                "row_rows_per_sec": round(rows / row_s),
                "batch_rows_per_sec": round(rows / batch_s),
                "speedup": round(row_s / batch_s, 2),
            }
        results[str(rows)] = {
            "queries": per_query,
            "columnar_stats": database.stats()["columnar"],
        }
    return {
        "benchmark": "columnar",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"sizes": sizes, "repeats": repeats},
        "results": results,
        # The CI gate reads this: smoke aggregate speedup must stay >= 2x.
        "smoke_aggregate_speedup": results[str(sizes[0])]["queries"][
            "full_aggregate"
        ]["speedup"],
    }


# -- pytest entry points -----------------------------------------------------


def test_columnar_report_shape_and_win(capsys) -> None:
    report = run_experiment(sizes=[20_000], repeats=3)
    size = report["results"]["20000"]
    assert set(size["queries"]) == {name for name, _ in QUERIES}
    for name, entry in size["queries"].items():
        assert entry["row_ms"] > 0 and entry["batch_ms"] > 0, name
    assert size["columnar_stats"]["batches_produced"] > 0
    assert size["columnar_stats"]["rows_filtered_by_pushdown"] > 0
    # The headline claim, with slack for noisy CI machines (the dedicated
    # CI gate checks >= 2x on the smoke run; the full run shows >= 3x).
    assert report["smoke_aggregate_speedup"] > 1.5
    with capsys.disabled():
        print("\n" + json.dumps(report, indent=2))


# -- standalone entry point --------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    from _cli import emit_report, parse_bench_args

    args = parse_bench_args(__doc__, "BENCH_columnar.json", argv)
    if args.smoke:
        sizes, repeats = [10_000], 5
    else:
        sizes, repeats = [10_000, 100_000, 1_000_000], 3
    report = run_experiment(sizes=sizes, repeats=repeats)
    emit_report(report, args.output)
    speedup = report["smoke_aggregate_speedup"]
    if speedup < 2.0:
        print(
            f"warning: batch full_aggregate speedup {speedup:.2f}x "
            "is below the 2x gate",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
