"""Replication: lag, read scaling across processes, and crash durability.

The experiment answers the questions WAL-shipping replication raises:

* how far behind is a replica — per-commit replication lag percentiles
  (p50/p99) from acknowledged write to replayed watermark;
* what do read replicas buy — aggregate read throughput of the TPC-W
  browsing mix against a single node vs the same mix routed across
  replicas, with every server *and* every load generator in its own
  process (one interpreter lock per node, the way a deployment runs);
* does a crash lose committed work — 20 seeded kill schedules crash the
  primary at varying points relative to the stream and promote a replica:
  a drained schedule must lose **zero** committed transactions, and every
  schedule (drained or not) must leave exactly a contiguous committed
  prefix.  ``lost_committed`` and ``prefix_violations`` in the report are
  the CI gate.

Read scaling needs real cores: on a single-CPU host the processes
time-share and the ratio degenerates to ~1x, so the report carries
``cpu_count`` and ``parallel_capable`` and the assertions only gate the
ratio when the host can actually run the nodes in parallel.

Two ways to run it:

* ``python benchmarks/bench_replication.py [--smoke] [--output PATH]`` —
  standalone: emits the machine-readable JSON document (written to
  ``BENCH_replication.json`` by default).  ``--smoke`` shrinks the
  workload for CI.
* ``python -m pytest benchmarks/bench_replication.py`` — as a test,
  asserting the report shape, the zero-loss gate and the prefix property.
"""

from __future__ import annotations

import json
import os
import random
import re
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without pytest
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import SqlError
from repro.netclient.client import RemoteDatabase, WireClient
from repro.replication.replica import ReplicaServer
from repro.server.server import SqlServer
from repro.sqlengine.durability import DurabilityOptions
from repro.sqlengine.engine import Database

_BENCH_DIR = Path(__file__).resolve().parent

#: Process-crash-safe durability with checkpoints disabled: replicas
#: bootstrap from the log alone, and a checkpoint would truncate it.
BENCH_DURABILITY = DurabilityOptions(fsync="off", checkpoint_log_bytes=None)

#: Minimum cores for the scaling measurement to mean anything: one for
#: the load generators plus one per server node.
MIN_SCALING_CORES = 4


def _percentile(sorted_samples: list[float], q: float) -> float:
    index = min(len(sorted_samples) - 1, int(q * len(sorted_samples)))
    return sorted_samples[index]


# -- replication lag ----------------------------------------------------------


def measure_replication_lag(writes: int, replicas: int) -> dict:
    """Per-commit lag: acknowledged write -> replayed on every replica.

    Each INSERT is acknowledged with the primary's log position; the lag
    sample is how long the slowest replica takes to replay up to it.
    """
    base = tempfile.mkdtemp(prefix="bench-repl-lag-")
    database = Database(
        data_dir=os.path.join(base, "db"), durability=BENCH_DURABILITY
    )
    server = SqlServer(database=database, port=0).start()
    nodes = [
        ReplicaServer(server.address, name=f"lag{i}").start()
        for i in range(replicas)
    ]
    samples: list[float] = []
    try:
        with RemoteDatabase(server.address).session() as session:
            session.execute("CREATE TABLE lag (id INT PRIMARY KEY, v INT)")
            for i in range(writes):
                session.execute(f"INSERT INTO lag VALUES ({i}, {i})")
                target = session.client.last_lsn
                started = time.perf_counter()
                for node in nodes:
                    assert node.wait_for(tuple(target), timeout=10.0)
                samples.append(time.perf_counter() - started)
        shipped = server.server_stats()["replication"]
        samples.sort()
        return {
            "writes": writes,
            "replicas": replicas,
            "lag_p50_ms": _percentile(samples, 0.50) * 1000,
            "lag_p99_ms": _percentile(samples, 0.99) * 1000,
            "lag_max_ms": samples[-1] * 1000,
            "wal_chunks_shipped": shipped["wal_chunks_shipped"],
            "wal_bytes_shipped": shipped["wal_bytes_shipped"],
        }
    finally:
        for node in nodes:
            node.kill()
        server.kill()
        database.close()
        shutil.rmtree(base, ignore_errors=True)


# -- read scaling across processes -------------------------------------------


def _spawn_node(args: list[str]) -> tuple[subprocess.Popen, tuple[str, int]]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_BENCH_DIR.parent / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.replication.serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.match(r"PORT (\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(
            f"node failed to start: {line!r}\n{proc.stderr.read()}"
        )
    return proc, ("127.0.0.1", int(match.group(1)))


def _run_client_fleet(
    primary: tuple[str, int],
    replicas: list[tuple[str, int]],
    *,
    clients: int,
    threads: int,
    interactions_per_thread: int,
    scale: str,
) -> dict:
    """Spawn load-generator processes, start them together, aggregate."""
    spec = json.dumps(
        {
            "primary": list(primary),
            "replicas": [list(address) for address in replicas],
            "threads": threads,
            "interactions_per_thread": interactions_per_thread,
            "scale": scale,
        }
    )
    fleet = [
        subprocess.Popen(
            [sys.executable, str(_BENCH_DIR / "_replication_client.py"), spec],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for _ in range(clients)
    ]
    try:
        for client in fleet:
            ready = client.stdout.readline().strip()
            if ready != "READY":
                raise RuntimeError(
                    f"client failed to start: {ready!r}\n{client.stderr.read()}"
                )
        started = time.perf_counter()
        for client in fleet:
            client.stdin.write("GO\n")
            client.stdin.flush()
        results = [json.loads(client.stdout.readline()) for client in fleet]
        span = time.perf_counter() - started
    finally:
        for client in fleet:
            client.kill()
    interactions = sum(result["interactions"] for result in results)
    return {
        "replicas": len(replicas),
        "clients": clients,
        "threads_per_client": threads,
        "interactions": interactions,
        "elapsed_s": span,
        "interactions_per_sec": interactions / span if span > 0 else 0.0,
        "reads_on_replicas": sum(r["reads_on_replicas"] for r in results),
        "reads_on_primary": sum(r["reads_on_primary"] for r in results),
        "wire_round_trips": sum(r["wire_round_trips"] for r in results),
    }


def measure_read_scaling(
    replica_counts: tuple[int, ...],
    *,
    clients: int,
    threads: int,
    interactions_per_thread: int,
    scale: str = "default",
) -> dict:
    """Aggregate browsing-mix throughput: single node vs N replicas.

    Every server node and every load generator is its own OS process;
    the routed runs send all reads to the replicas, the baseline sends
    everything to the primary.
    """
    base = tempfile.mkdtemp(prefix="bench-repl-scale-")
    procs: list[subprocess.Popen] = []
    entries: list[dict] = []
    try:
        primary_proc, primary = _spawn_node(
            ["tpcw-primary", "--data-dir", os.path.join(base, "db"),
             "--scale", scale]
        )
        procs.append(primary_proc)
        target = WireClient(*primary).wal_position()
        replicas: list[tuple[str, int]] = []
        for index in range(max(replica_counts)):
            proc, address = _spawn_node(
                ["replica", "--primary", f"{primary[0]}:{primary[1]}",
                 "--name", f"scale{index}"]
            )
            procs.append(proc)
            WireClient(*address).wait_lsn(tuple(target), timeout=120.0)
            replicas.append(address)
        # One throwaway run warms every node's caches and the fleet's
        # import cost before anything is measured.
        _run_client_fleet(
            primary, [], clients=clients, threads=threads,
            interactions_per_thread=max(1, interactions_per_thread // 4),
            scale=scale,
        )
        for count in replica_counts:
            entries.append(
                _run_client_fleet(
                    primary, replicas[:count], clients=clients,
                    threads=threads,
                    interactions_per_thread=interactions_per_thread,
                    scale=scale,
                )
            )
    finally:
        for proc in procs:
            proc.kill()
        shutil.rmtree(base, ignore_errors=True)
    baseline = next(e for e in entries if e["replicas"] == 0)
    cores = os.cpu_count() or 1
    return {
        "scale": scale,
        "cpu_count": cores,
        # Scaling across processes needs cores to run them on; below the
        # threshold the nodes time-share one CPU and the ratio is noise.
        "parallel_capable": cores >= MIN_SCALING_CORES,
        "entries": entries,
        "speedup_vs_single": {
            str(entry["replicas"]): (
                entry["interactions_per_sec"]
                / baseline["interactions_per_sec"]
                if baseline["interactions_per_sec"] > 0
                else 0.0
            )
            for entry in entries
            if entry["replicas"] > 0
        },
    }


# -- seeded kill schedules ----------------------------------------------------


def run_kill_schedule(seed: int, transactions: int, base_dir: str) -> dict:
    """One seeded crash: write, kill the primary, promote, audit.

    Even seeds drain first (the replica confirms the full log before the
    crash): promotion must lose nothing.  Odd seeds crash mid-stream at a
    seeded transaction count: whatever survived must be exactly a
    contiguous prefix of the acknowledged history.
    """
    rng = random.Random(seed)
    drained = seed % 2 == 0
    chunk_bytes = rng.choice([64, 256, 1024])
    kill_after = rng.randrange(1, max(2, transactions))
    data_dir = os.path.join(base_dir, f"schedule-{seed}")
    database = Database(data_dir=data_dir, durability=BENCH_DURABILITY)
    server = SqlServer(
        database=database, port=0, replication_chunk_bytes=chunk_bytes
    ).start()
    replica = ReplicaServer(
        server.address, name=f"kill{seed}", reconnect=False
    ).start()
    acked: list[int] = []
    try:
        session = RemoteDatabase(server.address).session()
        try:
            session.execute("CREATE TABLE work (id INT PRIMARY KEY)")
            for i in range(transactions):
                session.execute(f"INSERT INTO work VALUES ({i})")
                acked.append(i)
                if not drained and i == kill_after:
                    server.kill()
                    break
        except (OSError, SqlError):
            pass  # the crash severed this connection mid-write
        finally:
            try:
                session.close()
            except (OSError, SqlError):
                pass
        if drained:
            assert replica.wait_for(database.wal_position(), timeout=30.0), (
                f"schedule {seed}: replica never caught up"
            )
            server.kill()
        replica.promote()
        with RemoteDatabase(replica.address).session() as audit:
            ids = sorted(
                row[0] for row in audit.execute("SELECT id FROM work").rows
            )
        contiguous = ids == list(range(len(ids)))
        # A crash can land between the commit's log append and the wire
        # acknowledgement, so the replica may hold at most one trailing
        # transaction the client never saw confirmed — never fewer than
        # required, and a drained schedule must hold every acked one.
        lost = max(0, len(acked) - len(ids))
        return {
            "seed": seed,
            "drained": drained,
            "chunk_bytes": chunk_bytes,
            "acked": len(acked),
            "survived": len(ids),
            "contiguous_prefix": contiguous,
            "lost_committed": lost if drained else 0,
            "lost_acked": lost,
        }
    finally:
        replica.kill()
        server.kill()
        database.close()


def measure_kill_schedules(schedules: int, transactions: int) -> dict:
    base = tempfile.mkdtemp(prefix="bench-repl-kill-")
    try:
        entries = [
            run_kill_schedule(seed, transactions, base)
            for seed in range(schedules)
        ]
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return {
        "schedules": entries,
        # The CI gate: drained promotions lose nothing, and every
        # promotion — drained or not — serves a contiguous prefix.
        "lost_committed": sum(e["lost_committed"] for e in entries),
        "prefix_violations": sum(
            1 for e in entries if not e["contiguous_prefix"]
        ),
        "lost_acked_undrained": sum(
            e["lost_acked"] for e in entries if not e["drained"]
        ),
    }


# -- the experiment -----------------------------------------------------------


def run_experiment(
    *,
    lag_writes: int,
    lag_replicas: int,
    scaling_counts: tuple[int, ...],
    scaling_clients: int,
    scaling_threads: int,
    scaling_interactions: int,
    kill_schedules: int,
    kill_transactions: int,
) -> dict:
    return {
        "lag": measure_replication_lag(lag_writes, lag_replicas),
        "read_scaling": measure_read_scaling(
            scaling_counts,
            clients=scaling_clients,
            threads=scaling_threads,
            interactions_per_thread=scaling_interactions,
        ),
        "kill_schedules": measure_kill_schedules(
            kill_schedules, kill_transactions
        ),
    }


# -- pytest entry points ------------------------------------------------------


def test_replication_report_shape_and_invariants(capsys) -> None:
    report = run_experiment(
        lag_writes=40,
        lag_replicas=2,
        scaling_counts=(0, 2),
        scaling_clients=2,
        scaling_threads=4,
        scaling_interactions=25,
        kill_schedules=20,
        kill_transactions=30,
    )
    lag = report["lag"]
    assert 0 < lag["lag_p50_ms"] <= lag["lag_p99_ms"] <= lag["lag_max_ms"]
    assert lag["wal_chunks_shipped"] > 0

    scaling = report["read_scaling"]
    assert {entry["replicas"] for entry in scaling["entries"]} == {0, 2}
    for entry in scaling["entries"]:
        assert entry["interactions_per_sec"] > 0
        if entry["replicas"]:
            # Routing held: the replicas carried the browsing mix.
            assert entry["reads_on_replicas"] > 0
    if scaling["parallel_capable"]:
        assert scaling["speedup_vs_single"]["2"] >= 1.5

    kills = report["kill_schedules"]
    assert len(kills["schedules"]) == 20
    # The durability gate: no drained schedule lost a committed
    # transaction, and every promotion served a contiguous prefix.
    assert kills["lost_committed"] == 0
    assert kills["prefix_violations"] == 0
    with capsys.disabled():
        print("\n" + json.dumps(report, indent=2))


# -- standalone entry point ---------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    from _cli import emit_report, parse_bench_args

    args = parse_bench_args(__doc__, "BENCH_replication.json", argv)
    if args.smoke:
        report = run_experiment(
            lag_writes=60,
            lag_replicas=2,
            scaling_counts=(0, 2),
            scaling_clients=2,
            scaling_threads=4,
            scaling_interactions=40,
            kill_schedules=20,
            kill_transactions=40,
        )
    else:
        report = run_experiment(
            lag_writes=400,
            lag_replicas=3,
            scaling_counts=(0, 1, 2, 3),
            scaling_clients=3,
            scaling_threads=6,
            scaling_interactions=150,
            kill_schedules=20,
            kill_transactions=150,
        )
    emit_report(report, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
