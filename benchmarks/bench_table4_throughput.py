"""Reproduction of Table 4: TPC-W query throughput, Queryll vs hand-written.

Each pytest-benchmark case measures one cell of the paper's Table 4 (one
query, one implementation).  The paper's absolute numbers came from
PostgreSQL on 2006 hardware; what is expected to hold here is the *relative*
picture per query — see EXPERIMENTS.md for the measured comparison.

Set ``REPRO_TPCW_PROFILE=paper`` for the full-scale configuration.

Standalone, ``python benchmarks/bench_table4_throughput.py [--smoke]
[--output PATH]`` runs the harness's own Table 4 protocol once and emits a
machine-readable JSON report (``BENCH_table4.json`` by default) so the
latency trajectory accumulates across PRs like the other BENCH artifacts.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without pytest
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest


@pytest.mark.benchmark(group="Table4-getName")
def test_get_name_queryll(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_get_name_queryll)


@pytest.mark.benchmark(group="Table4-getName")
def test_get_name_handwritten(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_get_name_handwritten)


@pytest.mark.benchmark(group="Table4-getName")
def test_get_name_handwritten_with_extra_processing(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_get_name_extra)


@pytest.mark.benchmark(group="Table4-getCustomer")
def test_get_customer_queryll(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_get_customer_queryll)


@pytest.mark.benchmark(group="Table4-getCustomer")
def test_get_customer_handwritten(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_get_customer_handwritten)


@pytest.mark.benchmark(group="Table4-doSubjectSearch")
def test_do_subject_search_queryll(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_do_subject_search_queryll)


@pytest.mark.benchmark(group="Table4-doSubjectSearch")
def test_do_subject_search_handwritten(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_do_subject_search_handwritten)


@pytest.mark.benchmark(group="Table4-doSubjectSearch")
def test_do_subject_search_handwritten_modified_query(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_do_subject_search_modified)


@pytest.mark.benchmark(group="Table4-doGetRelated")
def test_do_get_related_queryll(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_do_get_related_queryll)


@pytest.mark.benchmark(group="Table4-doGetRelated")
def test_do_get_related_handwritten(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_do_get_related_handwritten)


# -- standalone entry point --------------------------------------------------


def _measurement_to_dict(measurement) -> dict[str, float]:
    return {
        "mean_ms": measurement.mean_ms,
        "stdev_ms": measurement.stdev_ms,
        "per_execution_us": measurement.per_execution_us,
    }


def run_report(config) -> dict:
    """The full Table 4 protocol as a JSON-serialisable dict."""
    from repro.tpcw.harness import TpcwBenchmark

    harness = TpcwBenchmark(config)
    queries = {}
    for result in harness.run_table4():
        entry = {
            "queryll": _measurement_to_dict(result.queryll),
            "handwritten": _measurement_to_dict(result.handwritten),
            "difference_ms": result.difference_ms,
            "ratio": result.ratio,
        }
        if result.extra_variant is not None:
            entry[result.extra_variant_label.replace(" ", "_")] = (
                _measurement_to_dict(result.extra_variant)
            )
        queries[result.query] = entry
    return {
        "benchmark": "table4",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "num_items": config.scale.num_items,
            "num_customers": config.scale.num_customers,
            "measured_executions": config.measured_executions,
            "runs": config.runs,
        },
        "queries": queries,
    }


def main(argv: list[str] | None = None) -> int:
    from _cli import emit_report, parse_bench_args
    from repro.tpcw.harness import BenchmarkConfig

    args = parse_bench_args(__doc__, "BENCH_table4.json", argv)
    config = (
        BenchmarkConfig.quick() if args.smoke else BenchmarkConfig.from_environment()
    )
    emit_report(run_report(config), args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
