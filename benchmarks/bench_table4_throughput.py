"""Reproduction of Table 4: TPC-W query throughput, Queryll vs hand-written.

Each pytest-benchmark case measures one cell of the paper's Table 4 (one
query, one implementation).  The paper's absolute numbers came from
PostgreSQL on 2006 hardware; what is expected to hold here is the *relative*
picture per query — see EXPERIMENTS.md for the measured comparison.

Set ``REPRO_TPCW_PROFILE=paper`` for the full-scale configuration.
"""

from __future__ import annotations

import pytest


@pytest.mark.benchmark(group="Table4-getName")
def test_get_name_queryll(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_get_name_queryll)


@pytest.mark.benchmark(group="Table4-getName")
def test_get_name_handwritten(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_get_name_handwritten)


@pytest.mark.benchmark(group="Table4-getName")
def test_get_name_handwritten_with_extra_processing(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_get_name_extra)


@pytest.mark.benchmark(group="Table4-getCustomer")
def test_get_customer_queryll(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_get_customer_queryll)


@pytest.mark.benchmark(group="Table4-getCustomer")
def test_get_customer_handwritten(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_get_customer_handwritten)


@pytest.mark.benchmark(group="Table4-doSubjectSearch")
def test_do_subject_search_queryll(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_do_subject_search_queryll)


@pytest.mark.benchmark(group="Table4-doSubjectSearch")
def test_do_subject_search_handwritten(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_do_subject_search_handwritten)


@pytest.mark.benchmark(group="Table4-doSubjectSearch")
def test_do_subject_search_handwritten_modified_query(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_do_subject_search_modified)


@pytest.mark.benchmark(group="Table4-doGetRelated")
def test_do_get_related_queryll(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_do_get_related_queryll)


@pytest.mark.benchmark(group="Table4-doGetRelated")
def test_do_get_related_handwritten(benchmark, tpcw_benchmark) -> None:
    benchmark(tpcw_benchmark.run_do_get_related_handwritten)
