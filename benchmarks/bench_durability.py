"""Durability benchmark: commit throughput per fsync policy, group-commit
batching under concurrency, and recovery time as a function of log length.

Two ways to run it:

* ``python benchmarks/bench_durability.py [--smoke] [--output PATH]`` —
  standalone: emits a machine-readable JSON document (written to
  ``BENCH_durability.json`` by default) so the durability cost/recovery
  trajectory accumulates across PRs.  ``--smoke`` shrinks the workload for
  CI.
* ``python -m pytest benchmarks/bench_durability.py`` — as a test,
  asserting the report shape, that group commit coalesces fsyncs under
  concurrency, and that recovery time grows with log length.

The experiment answers the three questions the durability design raises:
what does each fsync policy cost per commit (``always`` vs ``group`` vs
``off`` vs a purely in-memory engine), how much does group commit recover
under concurrent committers, and how long does restart take as the
write-ahead log grows (with and without a checkpoint).
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import sys
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without pytest
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sqlengine.durability import DurabilityOptions
from repro.sqlengine.engine import Database


SCHEMA = "CREATE TABLE events (id INTEGER PRIMARY KEY, thread INTEGER, payload VARCHAR)"
INSERT = "INSERT INTO events (id, thread, payload) VALUES (?, ?, ?)"
PAYLOAD = "x" * 48


def _open_database(data_dir: str | None, fsync: str) -> Database:
    if data_dir is None:
        return Database()
    return Database(
        data_dir=data_dir,
        # The benchmark wants to see log growth, not checkpoints.
        durability=DurabilityOptions(fsync=fsync, checkpoint_log_bytes=None),
    )


def measure_commit_throughput(
    fsync: str | None, threads: int, commits_per_thread: int
) -> dict[str, object]:
    """Commits/sec for one fsync policy (None = in-memory baseline).

    Every commit is a single-row INSERT in its own transaction, issued from
    ``threads`` concurrent sessions — the worst case for per-commit fsync
    and the best case for group commit.
    """
    with tempfile.TemporaryDirectory() as scratch:
        database = _open_database(None if fsync is None else scratch, fsync or "off")
        database.execute(SCHEMA)
        barrier = threading.Barrier(threads + 1)
        errors: list[BaseException] = []

        def worker(index: int) -> None:
            try:
                session = database.session(autocommit=False)
                barrier.wait()
                for i in range(commits_per_thread):
                    session.execute(
                        INSERT, (index * 1_000_000 + i, index, PAYLOAD)
                    )
                    session.commit()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=worker, args=(index,))
            for index in range(threads)
        ]
        for thread in workers:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in workers:
            thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        commits = threads * commits_per_thread
        info = database.durability_info()
        database.close()
        return {
            "fsync": fsync or "in-memory",
            "threads": threads,
            "commits": commits,
            "elapsed_s": elapsed,
            "commits_per_sec": commits / elapsed if elapsed > 0 else float("inf"),
            "syncs_issued": info.get("syncs_issued", 0),
            "log_bytes": info.get("log_bytes", 0),
        }


def measure_recovery(
    row_counts: list[int], checkpoint_last: bool = True
) -> list[dict[str, object]]:
    """Recovery time after a simulated crash, per log length.

    For each row count the database is populated with that many committed
    single-row transactions, "killed" (reopened without close/checkpoint)
    and the reopen timed.  The largest configuration is measured again
    after a CHECKPOINT to show what log truncation buys.
    """
    results: list[dict[str, object]] = []
    for rows in row_counts:
        with tempfile.TemporaryDirectory() as scratch:
            database = _open_database(scratch, "off")
            database.execute(SCHEMA)
            session = database.session(autocommit=False)
            for i in range(rows):
                session.execute(INSERT, (i, 0, PAYLOAD))
                if i % 16 == 15:
                    session.commit()
            session.commit()
            log_bytes = database.durability_info()["log_bytes"]
            started = time.perf_counter()
            recovered = _open_database(scratch, "off")
            elapsed = time.perf_counter() - started
            info = recovered.durability_info()
            assert recovered.row_count("events") == rows
            results.append(
                {
                    "rows": rows,
                    "wal_bytes": log_bytes,
                    "recover_s": elapsed,
                    "recovered_transactions": info["recovered_transactions"],
                    "checkpointed": False,
                }
            )
            if checkpoint_last and rows == max(row_counts):
                recovered.checkpoint()
                started = time.perf_counter()
                warm = _open_database(scratch, "off")
                elapsed = time.perf_counter() - started
                assert warm.row_count("events") == rows
                results.append(
                    {
                        "rows": rows,
                        "wal_bytes": warm.durability_info()["log_bytes"],
                        "recover_s": elapsed,
                        "recovered_transactions": warm.durability_info()[
                            "recovered_transactions"
                        ],
                        "checkpointed": True,
                    }
                )
    return results


def run_experiment(
    threads: int, commits_per_thread: int, recovery_rows: list[int]
) -> dict:
    """The full durability experiment as a JSON-serialisable dict."""
    policies = [None, "off", "group", "always"]
    throughput = [
        measure_commit_throughput(policy, threads, commits_per_thread)
        for policy in policies
    ]
    return {
        "benchmark": "durability",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "threads": threads,
            "commits_per_thread": commits_per_thread,
            "recovery_rows": recovery_rows,
        },
        "commit_throughput": throughput,
        "recovery": measure_recovery(recovery_rows),
    }


# -- pytest entry points -----------------------------------------------------


def test_durability_report_shape_and_invariants(capsys) -> None:
    report = run_experiment(
        threads=4, commits_per_thread=40, recovery_rows=[64, 256]
    )
    by_policy = {entry["fsync"]: entry for entry in report["commit_throughput"]}
    assert set(by_policy) == {"in-memory", "off", "group", "always"}
    for entry in by_policy.values():
        assert entry["commits_per_sec"] > 0
    # Group commit must coalesce: strictly fewer fsyncs than commits.
    group = by_policy["group"]
    assert 0 < group["syncs_issued"] < group["commits"]
    # ``always`` pays one fsync per commit batch (plus the close).
    always = by_policy["always"]
    assert always["syncs_issued"] >= always["commits"]
    # Recovery: more rows -> more log -> more replayed transactions, and a
    # checkpoint collapses the log to (almost) nothing.
    plain = [entry for entry in report["recovery"] if not entry["checkpointed"]]
    assert plain[0]["wal_bytes"] < plain[-1]["wal_bytes"]
    checkpointed = [entry for entry in report["recovery"] if entry["checkpointed"]]
    assert checkpointed and checkpointed[0]["wal_bytes"] < plain[-1]["wal_bytes"]
    assert checkpointed[0]["recovered_transactions"] == 0
    with capsys.disabled():
        print("\n" + json.dumps(report, indent=2))


# -- standalone entry point --------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    from _cli import emit_report, parse_bench_args

    args = parse_bench_args(__doc__, "BENCH_durability.json", argv)
    if args.smoke:
        report = run_experiment(
            threads=4, commits_per_thread=50, recovery_rows=[100, 400]
        )
    else:
        report = run_experiment(
            threads=8, commits_per_thread=250, recovery_rows=[1000, 4000, 16000]
        )
    emit_report(report, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
