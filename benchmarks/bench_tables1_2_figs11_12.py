"""Reproduction of the paper's analysis artefacts: Table 1 (paths), Table 2
(backward substitution), Fig. 11 (Jimple form) and Fig. 12 (generated SQL).

Each benchmark measures the corresponding pipeline stage on the paper's
running example (the Seattle/LA office query of Fig. 10) and prints the
regenerated artefact once so it can be compared with the paper by eye.
"""

from __future__ import annotations

from repro.core.analysis.foreach import find_foreach_queries
from repro.core.analysis.paths import enumerate_paths
from repro.core.analysis.substitution import analyze_path
from repro.core.cfg import build_cfg
from repro.core.expr.printer import to_text
from repro.core.pipeline import QueryllPipeline
from repro.core.tac.printer import format_method
from repro.jvm import method_to_tac

_printed: set[str] = set()


def _print_once(key: str, text: str) -> None:
    if key not in _printed:
        _printed.add(key)
        print(f"\n===== {key} =====\n{text}")


def test_fig11_jimple_conversion(benchmark, office_classfile) -> None:
    """Fig. 11: stack bytecode converted to three-address (Jimple-like) code."""
    method = office_classfile.method("westCoast")
    tac = benchmark(lambda: method_to_tac(method))
    listing = format_method(tac)
    assert "hasNext" in listing and "goto" in listing
    _print_once("Fig. 11 (three-address form of the Fig. 10 query)", listing)


def test_table1_path_enumeration(benchmark, office_classfile) -> None:
    """Table 1: the two control-flow paths that add to the destination."""
    method = method_to_tac(office_classfile.method("westCoast"))
    cfg = build_cfg(method)
    query = find_foreach_queries(method)[0]

    paths = benchmark(lambda: enumerate_paths(method, cfg, query))
    assert len(paths) == 2
    rendering = "\n".join(
        f"Path {index + 1}: instructions {path.instruction_indexes}"
        for index, path in enumerate(paths)
    )
    _print_once("Table 1 (paths through the loop)", rendering)


def test_table2_backward_substitution(benchmark, office_classfile) -> None:
    """Table 2: the backward substitution trace for the second path."""
    method = method_to_tac(office_classfile.method("westCoast"))
    cfg = build_cfg(method)
    query = find_foreach_queries(method)[0]
    paths = enumerate_paths(method, cfg, query)

    analysis = benchmark(
        lambda: analyze_path(method, query, paths[1], record_trace=True)
    )
    assert "Seattle" in to_text(analysis.condition)
    _print_once("Table 2 (backward substitution trace)", "\n".join(analysis.trace))


def test_fig12_sql_generation(benchmark, office_classfile, bank_mapping) -> None:
    """Fig. 12: the WHERE clause is the OR of the per-path conditions."""
    method = method_to_tac(office_classfile.method("westCoast"))
    pipeline = QueryllPipeline(bank_mapping)

    report = benchmark(lambda: pipeline.analyze_method(method))
    sql = report.queries[0].sql
    assert " OR " in sql and "'Seattle'" in sql and "'LA'" in sql
    _print_once("Fig. 12 (generated SQL)", sql)
