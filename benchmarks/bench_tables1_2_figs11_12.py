"""Reproduction of the paper's analysis artefacts: Table 1 (paths), Table 2
(backward substitution), Fig. 11 (Jimple form) and Fig. 12 (generated SQL).

Each benchmark measures the corresponding pipeline stage on the paper's
running example (the Seattle/LA office query of Fig. 10) and prints the
regenerated artefact once so it can be compared with the paper by eye.

Standalone, ``python benchmarks/bench_tables1_2_figs11_12.py [--smoke]
[--output PATH]`` times every stage and emits a machine-readable JSON
report (``BENCH_tables1_2.json`` by default) containing the per-stage
latencies and the regenerated artefacts, matching the other BENCH
artifacts' interface.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without pytest
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.analysis.foreach import find_foreach_queries
from repro.core.analysis.paths import enumerate_paths
from repro.core.analysis.substitution import analyze_path
from repro.core.cfg import build_cfg
from repro.core.expr.printer import to_text
from repro.core.pipeline import QueryllPipeline
from repro.core.tac.printer import format_method
from repro.jvm import method_to_tac

_printed: set[str] = set()


def _print_once(key: str, text: str) -> None:
    if key not in _printed:
        _printed.add(key)
        print(f"\n===== {key} =====\n{text}")


def test_fig11_jimple_conversion(benchmark, office_classfile) -> None:
    """Fig. 11: stack bytecode converted to three-address (Jimple-like) code."""
    method = office_classfile.method("westCoast")
    tac = benchmark(lambda: method_to_tac(method))
    listing = format_method(tac)
    assert "hasNext" in listing and "goto" in listing
    _print_once("Fig. 11 (three-address form of the Fig. 10 query)", listing)


def test_table1_path_enumeration(benchmark, office_classfile) -> None:
    """Table 1: the two control-flow paths that add to the destination."""
    method = method_to_tac(office_classfile.method("westCoast"))
    cfg = build_cfg(method)
    query = find_foreach_queries(method)[0]

    paths = benchmark(lambda: enumerate_paths(method, cfg, query))
    assert len(paths) == 2
    rendering = "\n".join(
        f"Path {index + 1}: instructions {path.instruction_indexes}"
        for index, path in enumerate(paths)
    )
    _print_once("Table 1 (paths through the loop)", rendering)


def test_table2_backward_substitution(benchmark, office_classfile) -> None:
    """Table 2: the backward substitution trace for the second path."""
    method = method_to_tac(office_classfile.method("westCoast"))
    cfg = build_cfg(method)
    query = find_foreach_queries(method)[0]
    paths = enumerate_paths(method, cfg, query)

    analysis = benchmark(
        lambda: analyze_path(method, query, paths[1], record_trace=True)
    )
    assert "Seattle" in to_text(analysis.condition)
    _print_once("Table 2 (backward substitution trace)", "\n".join(analysis.trace))


def test_fig12_sql_generation(benchmark, office_classfile, bank_mapping) -> None:
    """Fig. 12: the WHERE clause is the OR of the per-path conditions."""
    method = method_to_tac(office_classfile.method("westCoast"))
    pipeline = QueryllPipeline(bank_mapping)

    report = benchmark(lambda: pipeline.analyze_method(method))
    sql = report.queries[0].sql
    assert " OR " in sql and "'Seattle'" in sql and "'LA'" in sql
    _print_once("Fig. 12 (generated SQL)", sql)


# -- standalone entry point --------------------------------------------------


def _time_stage(operation, iterations: int) -> float:
    """Mean milliseconds per call over ``iterations`` calls (1 warm-up)."""
    operation()
    started = time.perf_counter()
    for _ in range(iterations):
        operation()
    return (time.perf_counter() - started) * 1000.0 / iterations


def run_report(iterations: int) -> dict:
    """Per-stage latencies + regenerated artefacts as a JSON-able dict."""
    from repro.minijava import compile_source
    from repro.testing import OFFICE_QUERY_SOURCE, make_bank_mapping

    classfile = compile_source(OFFICE_QUERY_SOURCE)
    raw_method = classfile.method("westCoast")
    method = method_to_tac(raw_method)
    cfg = build_cfg(method)
    query = find_foreach_queries(method)[0]
    paths = enumerate_paths(method, cfg, query)
    pipeline = QueryllPipeline(make_bank_mapping())
    sql = pipeline.analyze_method(method).queries[0].sql
    return {
        "benchmark": "tables1_2",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"iterations": iterations},
        "stages_ms": {
            "fig11_tac_conversion": _time_stage(
                lambda: method_to_tac(raw_method), iterations
            ),
            "table1_path_enumeration": _time_stage(
                lambda: enumerate_paths(method, cfg, query), iterations
            ),
            "table2_backward_substitution": _time_stage(
                lambda: analyze_path(method, query, paths[1], record_trace=True),
                iterations,
            ),
            "fig12_full_pipeline": _time_stage(
                lambda: pipeline.analyze_method(method), iterations
            ),
        },
        "artifacts": {
            "paths": [list(path.instruction_indexes) for path in paths],
            "generated_sql": sql,
        },
    }


def main(argv: list[str] | None = None) -> int:
    from _cli import emit_report, parse_bench_args

    args = parse_bench_args(__doc__, "BENCH_tables1_2.json", argv)
    emit_report(run_report(iterations=20 if args.smoke else 200), args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
