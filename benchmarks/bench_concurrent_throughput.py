"""Concurrent TPC-W throughput: interactions/sec vs driver thread count.

This experiment goes beyond the paper's single-threaded latency protocol
(Tables 4/5): it drives the paper's four interactions from N emulated
browsers at once and reports throughput per variant.  With the engine's
readers-writer lock, read-only interactions from different connections run
concurrently; the write mix exercises the transactional stock-transfer
path.

Run with ``python -m pytest benchmarks/bench_concurrent_throughput.py -s``
to see the throughput table.
"""

from __future__ import annotations

import pytest

from repro.tpcw.workload import ConcurrentDriver


@pytest.mark.parametrize("threads", [1, 2, 4, 8])
@pytest.mark.parametrize("variant", ["queryll", "handwritten"])
def test_throughput_scaling(tpcw_benchmark, capsys, threads, variant) -> None:
    driver = ConcurrentDriver(
        tpcw_benchmark.database,
        variant=variant,
        threads=threads,
        interactions_per_thread=max(
            1, tpcw_benchmark.config.measured_executions // threads
        ),
    )
    result = driver.run()
    assert result.interactions == driver.interactions_per_thread * threads
    with capsys.disabled():
        print(
            f"\n{variant:12s} threads={threads}: "
            f"{result.interactions_per_sec:10.0f} interactions/s "
            f"({result.interactions} interactions in {result.elapsed_s:.3f}s)"
        )


def test_rows_width_split(tpcw_benchmark, capsys) -> None:
    """Bytes-per-row / rows-width split of the queryll variant's queries:
    the projection-pruning half of the throughput story, machine-readable
    (the same report lands in ``BENCH_ablations.json`` in CI)."""
    report = tpcw_benchmark.run_projection_split()
    for name, entry in report.items():
        assert entry["optimized"]["columns"] <= entry["unoptimized"]["columns"], name
        assert entry["optimized"]["bytes_per_row"] <= entry["unoptimized"]["bytes_per_row"], name
        assert entry["optimized"]["rows"] == entry["unoptimized"]["rows"], name
    with capsys.disabled():
        print()
        for name, entry in report.items():
            optimized, unoptimized = entry["optimized"], entry["unoptimized"]
            print(
                f"{name:16s} width {unoptimized['columns']:3d} -> "
                f"{optimized['columns']:3d} columns, "
                f"{unoptimized['bytes_per_row']:8.1f} -> "
                f"{optimized['bytes_per_row']:8.1f} bytes/row "
                f"({entry['width_ratio']:.2f}x width)"
            )


def test_write_mix_is_consistent(tpcw_benchmark, capsys) -> None:
    database = tpcw_benchmark.database.database
    before = sum(row[0] for row in database.execute("SELECT i_stock FROM item").rows)
    result = ConcurrentDriver(
        tpcw_benchmark.database,
        variant="handwritten",
        threads=4,
        interactions_per_thread=100,
        write_fraction=0.2,
    ).run()
    after = sum(row[0] for row in database.execute("SELECT i_stock FROM item").rows)
    assert after == before
    with capsys.disabled():
        print(
            f"\nwrite mix    threads=4: {result.interactions_per_sec:10.0f} "
            f"interactions/s ({result.writes} writes, "
            f"{result.rollbacks} rollbacks, stock conserved)"
        )
