"""Concurrent TPC-W throughput: interactions/sec vs driver thread count.

This experiment goes beyond the paper's single-threaded latency protocol
(Tables 4/5): it drives the paper's four interactions from N emulated
browsers at once and reports throughput per variant.  Under the engine's
MVCC snapshot isolation, read-only interactions never block — there is no
reader/writer lock handoff at any thread count — and the write mix
exercises the transactional stock-transfer path including write-write
conflicts and client retries (reported per run, along with the engine's
concurrency counters).

The report carries two scaling curves: the read-only interaction mix and
the write mix, each across the full thread ladder, so regressions in
either path show up as a bend in its own curve.

Two ways to run it:

* ``python benchmarks/bench_concurrent_throughput.py [--smoke] [--output PATH]``
  — standalone: emits the machine-readable JSON document (written to
  ``BENCH_concurrent.json`` by default) so the throughput trajectory
  accumulates across PRs.  ``--smoke`` shrinks the workload for CI.
* ``python -m pytest benchmarks/bench_concurrent_throughput.py -s`` — as a
  test, printing the throughput table.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without pytest
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.tpcw.workload import ConcurrentDriver


@pytest.mark.parametrize("threads", [1, 2, 4, 8, 16])
@pytest.mark.parametrize("variant", ["queryll", "handwritten"])
def test_throughput_scaling(tpcw_benchmark, capsys, threads, variant) -> None:
    driver = ConcurrentDriver(
        tpcw_benchmark.database,
        variant=variant,
        threads=threads,
        interactions_per_thread=max(
            1, tpcw_benchmark.config.measured_executions // threads
        ),
    )
    result = driver.run()
    assert result.interactions == driver.interactions_per_thread * threads
    with capsys.disabled():
        print(
            f"\n{variant:12s} threads={threads}: "
            f"{result.interactions_per_sec:10.0f} interactions/s "
            f"({result.interactions} interactions in {result.elapsed_s:.3f}s)"
        )


def test_rows_width_split(tpcw_benchmark, capsys) -> None:
    """Bytes-per-row / rows-width split of the queryll variant's queries:
    the projection-pruning half of the throughput story, machine-readable
    (the same report lands in ``BENCH_ablations.json`` in CI)."""
    report = tpcw_benchmark.run_projection_split()
    for name, entry in report.items():
        assert entry["optimized"]["columns"] <= entry["unoptimized"]["columns"], name
        assert entry["optimized"]["bytes_per_row"] <= entry["unoptimized"]["bytes_per_row"], name
        assert entry["optimized"]["rows"] == entry["unoptimized"]["rows"], name
    with capsys.disabled():
        print()
        for name, entry in report.items():
            optimized, unoptimized = entry["optimized"], entry["unoptimized"]
            print(
                f"{name:16s} width {unoptimized['columns']:3d} -> "
                f"{optimized['columns']:3d} columns, "
                f"{unoptimized['bytes_per_row']:8.1f} -> "
                f"{optimized['bytes_per_row']:8.1f} bytes/row "
                f"({entry['width_ratio']:.2f}x width)"
            )


def run_experiment(
    thread_counts: list[int], interactions: int, write_fraction: float = 0.2
) -> dict:
    """Thread-scaling (read mix + write mix) as a JSON-serialisable dict."""
    from repro.tpcw import BenchmarkConfig, TpcwBenchmark

    benchmark = TpcwBenchmark(BenchmarkConfig.from_environment())
    scaling = []
    for variant in ("queryll", "handwritten"):
        for threads in thread_counts:
            driver = ConcurrentDriver(
                benchmark.database,
                variant=variant,
                threads=threads,
                interactions_per_thread=max(1, interactions // threads),
                shared_workload=True,
            )
            scaling.append(driver.run().as_dict())
    # Write mix as its own scaling curve: every point checks the stock-sum
    # invariant, so a lost update under conflict retries fails the run.
    database = benchmark.database.database
    write_scaling = []
    for threads in thread_counts:
        before = sum(
            row[0] for row in database.execute("SELECT i_stock FROM item").rows
        )
        write_result = ConcurrentDriver(
            benchmark.database,
            variant="handwritten",
            threads=threads,
            interactions_per_thread=max(1, interactions // threads),
            write_fraction=write_fraction,
            shared_workload=True,
        ).run()
        after = sum(
            row[0] for row in database.execute("SELECT i_stock FROM item").rows
        )
        write_scaling.append(
            {**write_result.as_dict(), "stock_conserved": after == before}
        )
    return {
        "benchmark": "concurrent_throughput",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "thread_counts": thread_counts,
            "interactions": interactions,
            "write_fraction": write_fraction,
            "items": benchmark.config.scale.num_items,
            "customers": benchmark.config.scale.num_customers,
            # Interpreting the curves needs the core count: on a single
            # CPU (or under the GIL for CPU-bound work) the honest
            # expectation is flat-with-noise, not linear speedup.
            "cpus": os.cpu_count(),
        },
        "scaling": scaling,
        "write_scaling": write_scaling,
        # Kept for cross-PR continuity: the max-thread-count write-mix point.
        "write_mix": write_scaling[-1],
        "mvcc": database.stats()["mvcc"],
    }


def test_write_mix_is_consistent(tpcw_benchmark, capsys) -> None:
    database = tpcw_benchmark.database.database
    before = sum(row[0] for row in database.execute("SELECT i_stock FROM item").rows)
    result = ConcurrentDriver(
        tpcw_benchmark.database,
        variant="handwritten",
        threads=4,
        interactions_per_thread=100,
        write_fraction=0.2,
    ).run()
    after = sum(row[0] for row in database.execute("SELECT i_stock FROM item").rows)
    assert after == before
    with capsys.disabled():
        print(
            f"\nwrite mix    threads=4: {result.interactions_per_sec:10.0f} "
            f"interactions/s ({result.writes} writes, "
            f"{result.rollbacks} rollbacks, stock conserved)"
        )


# -- standalone entry point --------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    from _cli import emit_report, parse_bench_args

    args = parse_bench_args(__doc__, "BENCH_concurrent.json", argv)
    if args.smoke:
        # Same 1 -> 16 ladder as the full run, tiny interaction budget: CI
        # still sees the whole curve (and the conflict-retry path) cheaply.
        report = run_experiment(thread_counts=[1, 2, 4, 8, 16], interactions=320)
    else:
        # 8000 interactions per point: enough for each browser thread's
        # EntityManager identity map to warm up even at 16 threads, so the
        # queryll curve measures the engine rather than per-thread cache
        # warm-up (which at 2000 interactions still costs ~10% at 4
        # threads).
        report = run_experiment(thread_counts=[1, 2, 4, 8, 16], interactions=8000)
    emit_report(report, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
