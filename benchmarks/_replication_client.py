"""Subprocess load generator for ``bench_replication.py``.

One invocation is one client *process* driving the TPC-W browsing mix
against an already-running primary (and optionally its replicas) — the
read-scaling measurement spawns several of these so the load generation
is not serialised behind a single interpreter lock, mirroring how the
servers themselves are spawned as separate processes.

Protocol (line-oriented, over stdio):

* argv[1] is a JSON spec: ``{"primary": [host, port], "replicas":
  [[host, port], ...], "threads": N, "interactions_per_thread": N,
  "scale": "tiny"|"default"|"paper", "seed": N}``.
* The client builds a local parameter-generation database, connects its
  pool, prints ``READY`` and blocks until the parent sends one line on
  stdin (the synchronised start).
* After the run it prints one JSON line with the counters the parent
  aggregates.

Not a benchmark entry point itself — the leading underscore keeps pytest
from collecting it.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main() -> int:
    from repro.tpcw.database import build_database
    from repro.tpcw.population import PopulationScale
    from repro.tpcw.workload import ConcurrentDriver

    spec = json.loads(sys.argv[1])
    scales = {
        "tiny": PopulationScale.tiny,
        "default": PopulationScale,
        "paper": PopulationScale.paper,
    }
    # Parameters only: queries run remotely, this database is never read
    # beyond its scale-derived key ranges.
    local = build_database(scales[spec.get("scale", "default")]())
    driver = ConcurrentDriver(
        local,
        threads=spec["threads"],
        interactions_per_thread=spec["interactions_per_thread"],
        write_fraction=0.0,
        seed=spec.get("seed", 7),
        address=tuple(spec["primary"]),
        replicas=[tuple(address) for address in spec["replicas"]],
        shared_workload=True,
    )
    print("READY", flush=True)
    sys.stdin.readline()
    result = driver.run()
    print(
        json.dumps(
            {
                "interactions": result.interactions,
                "elapsed_s": result.elapsed_s,
                "reads_on_replicas": result.reads_on_replicas,
                "reads_on_primary": result.reads_on_primary,
                "wire_round_trips": result.wire_round_trips,
            }
        ),
        flush=True,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
