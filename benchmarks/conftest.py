"""Shared fixtures for the benchmark suite.

Every benchmark corresponds to a table or figure of the paper (see the
experiment index in DESIGN.md).  The TPC-W database defaults to the "quick"
profile so the whole suite runs in seconds; set ``REPRO_TPCW_PROFILE=paper``
to use the paper's full parameters (10 000 items, 100 EBs, 2000 executions).

The bank example builders are imported from :mod:`repro.testing` (shared
with the tier-1 tests) instead of reaching into ``tests/conftest.py``, which
used to self-import circularly and abort collection.
"""

from __future__ import annotations

import pytest

from repro.minijava import compile_source
from repro.testing import OFFICE_QUERY_SOURCE, make_bank_db, make_bank_mapping
from repro.tpcw import BenchmarkConfig, TpcwBenchmark


@pytest.fixture(scope="session")
def bank_mapping():
    """The Client/Account/Office mapping of the paper's figures."""
    return make_bank_mapping()


@pytest.fixture(scope="session")
def bank_db():
    """A small populated bank database."""
    return make_bank_db()


@pytest.fixture(scope="session")
def office_classfile():
    """The paper's Fig. 10 query compiled to mini-JVM bytecode."""
    return compile_source(OFFICE_QUERY_SOURCE)


@pytest.fixture(scope="session")
def tpcw_benchmark():
    """A TPC-W database + harness built once for the whole benchmark run."""
    return TpcwBenchmark(BenchmarkConfig.from_environment())
