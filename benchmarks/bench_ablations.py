"""Ablation benchmarks for the design choices called out in DESIGN.md.

* expression simplification on/off — the cost of the redundant-comparison
  clean-up and the effect of shipping unsimplified WHERE clauses;
* planner access paths — what the benchmark queries cost when indexes or the
  index-OR join are disabled (the paper's PostgreSQL had all of them);
* rewriting on/off — the headline claim: executing a query as the plain loop
  the programmer wrote versus the rewritten SQL.
"""

from __future__ import annotations

import pytest

from repro.core.analysis.simplify import simplify
from repro.core.expr import nodes
from repro.pyfrontend.disassembler import lower_function
from repro.sqlengine.planner import PlannerOptions
from repro.tpcw import queries_queryll, queries_sql
from repro.tpcw.database import build_database
from repro.tpcw.population import PopulationScale


def _redundant_comparison_chain(depth: int) -> nodes.Expression:
    expression: nodes.Expression = nodes.BinOp(
        "==", nodes.GetField(nodes.Var("entry"), "Name"), nodes.Constant("LA")
    )
    for _ in range(depth):
        expression = nodes.BinOp("!=", expression, nodes.Constant(0))
    return expression


@pytest.mark.benchmark(group="ablation-simplify")
def test_simplify_redundant_comparisons(benchmark) -> None:
    expression = _redundant_comparison_chain(depth=12)
    result = benchmark(lambda: simplify(expression))
    assert result == nodes.BinOp(
        "==", nodes.GetField(nodes.Var("entry"), "Name"), nodes.Constant("LA")
    )


@pytest.mark.benchmark(group="ablation-lowering")
def test_python_bytecode_lowering(benchmark) -> None:
    benchmark(lambda: lower_function(queries_queryll.get_customer_loop.original))


@pytest.fixture(scope="module")
def small_scale() -> PopulationScale:
    return PopulationScale(num_items=200, num_ebs=1, customers_per_eb=400)


@pytest.mark.benchmark(group="ablation-planner")
def test_handwritten_get_related_with_or_index_join(benchmark, small_scale) -> None:
    database = build_database(small_scale)
    connection = database.connection()
    benchmark(lambda: queries_sql.do_get_related(connection, 17))


@pytest.mark.benchmark(group="ablation-planner")
def test_handwritten_get_related_without_indexes(benchmark, small_scale) -> None:
    database = build_database(
        small_scale, planner_options=PlannerOptions(use_indexes=False)
    )
    connection = database.connection()
    benchmark(lambda: queries_sql.do_get_related(connection, 17))


@pytest.mark.benchmark(group="ablation-rewrite")
def test_get_name_rewritten(benchmark, small_scale) -> None:
    database = build_database(small_scale)
    em = database.entity_manager()
    benchmark(lambda: queries_queryll.get_name(em, 123))


@pytest.mark.benchmark(group="ablation-rewrite")
def test_get_name_unrewritten_full_scan(benchmark, small_scale) -> None:
    """The same loop executed as written (no rewriting): a full table scan
    through the ORM per call — the cost the paper's rewriter removes."""
    database = build_database(small_scale)
    em = database.entity_manager()
    benchmark(lambda: queries_queryll.get_name_loop.original(em, 123).to_list())
