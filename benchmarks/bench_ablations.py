"""Ablation benchmarks for the design choices called out in DESIGN.md.

* expression simplification on/off — the cost of the redundant-comparison
  clean-up and the effect of shipping unsimplified WHERE clauses;
* planner access paths — what the benchmark queries cost when indexes or the
  index-OR join are disabled (the paper's PostgreSQL had all of them);
* rewriting on/off — the headline claim: executing a query as the plain loop
  the programmer wrote versus the rewritten SQL;
* the logical optimizer on/off — latency and row-width of the four TPC-W
  queries with ``OptimizerOptions(optimize=False)`` vs the full rule set.

Two ways to run it (the same split as ``bench_plan_cache.py``):

* ``python benchmarks/bench_ablations.py [--smoke] [--output PATH]`` —
  standalone: emits a machine-readable JSON document (default
  ``BENCH_ablations.json``, uploaded as a CI artifact) so the ablation
  trajectory accumulates across PRs.
* ``python -m pytest benchmarks/bench_ablations.py`` — pytest-benchmark
  variants of the same experiments, for statistically careful local runs.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without pytest
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.core.analysis.simplify import simplify
from repro.core.expr import nodes
from repro.pyfrontend.disassembler import lower_function
from repro.sqlengine.planner import PlannerOptions
from repro.tpcw import queries_queryll, queries_sql
from repro.tpcw.database import build_database
from repro.tpcw.harness import BenchmarkConfig, TpcwBenchmark
from repro.tpcw.population import PopulationScale


def _redundant_comparison_chain(depth: int) -> nodes.Expression:
    expression: nodes.Expression = nodes.BinOp(
        "==", nodes.GetField(nodes.Var("entry"), "Name"), nodes.Constant("LA")
    )
    for _ in range(depth):
        expression = nodes.BinOp("!=", expression, nodes.Constant(0))
    return expression


@pytest.mark.benchmark(group="ablation-simplify")
def test_simplify_redundant_comparisons(benchmark) -> None:
    expression = _redundant_comparison_chain(depth=12)
    result = benchmark(lambda: simplify(expression))
    assert result == nodes.BinOp(
        "==", nodes.GetField(nodes.Var("entry"), "Name"), nodes.Constant("LA")
    )


@pytest.mark.benchmark(group="ablation-lowering")
def test_python_bytecode_lowering(benchmark) -> None:
    benchmark(lambda: lower_function(queries_queryll.get_customer_loop.original))


@pytest.fixture(scope="module")
def small_scale() -> PopulationScale:
    return PopulationScale(num_items=200, num_ebs=1, customers_per_eb=400)


@pytest.mark.benchmark(group="ablation-planner")
def test_handwritten_get_related_with_or_index_join(benchmark, small_scale) -> None:
    database = build_database(small_scale)
    connection = database.connection()
    benchmark(lambda: queries_sql.do_get_related(connection, 17))


@pytest.mark.benchmark(group="ablation-planner")
def test_handwritten_get_related_without_indexes(benchmark, small_scale) -> None:
    database = build_database(
        small_scale, planner_options=PlannerOptions(use_indexes=False)
    )
    connection = database.connection()
    benchmark(lambda: queries_sql.do_get_related(connection, 17))


@pytest.mark.benchmark(group="ablation-rewrite")
def test_get_name_rewritten(benchmark, small_scale) -> None:
    database = build_database(small_scale)
    em = database.entity_manager()
    benchmark(lambda: queries_queryll.get_name(em, 123))


@pytest.mark.benchmark(group="ablation-rewrite")
def test_get_name_unrewritten_full_scan(benchmark, small_scale) -> None:
    """The same loop executed as written (no rewriting): a full table scan
    through the ORM per call — the cost the paper's rewriter removes."""
    database = build_database(small_scale)
    em = database.entity_manager()
    benchmark(lambda: queries_queryll.get_name_loop.original(em, 123).to_list())


@pytest.mark.benchmark(group="ablation-optimizer")
def test_projection_split_report(benchmark) -> None:
    """The optimizer ablation: narrow vs full-width rows, machine-readable."""
    harness = TpcwBenchmark(BenchmarkConfig.quick())
    report = benchmark.pedantic(harness.run_projection_split, rounds=1, iterations=1)
    for name, entry in report.items():
        assert entry["optimized"]["columns"] <= entry["unoptimized"]["columns"], name
        assert entry["optimized"]["rows"] == entry["unoptimized"]["rows"], name


# -- standalone JSON entry point ---------------------------------------------


def _mean_ms(operation, executions: int, warmup: int = 3) -> float:
    """Mean wall-clock milliseconds per call of ``operation``."""
    for _ in range(warmup):
        operation()
    started = time.perf_counter()
    for _ in range(executions):
        operation()
    return (time.perf_counter() - started) * 1000.0 / executions


def run_experiment(config: BenchmarkConfig, executions: int) -> dict:
    """Every ablation as one JSON-serialisable report."""
    scale = config.scale

    # 1. Simplification: the redundant-comparison clean-up itself.
    chain = _redundant_comparison_chain(depth=12)
    simplify_ms = _mean_ms(lambda: simplify(chain), executions)

    # 2. Planner access paths: hand-written doGetRelated with and without
    #    index access paths.
    planner: dict[str, float] = {}
    for label, options in (
        ("indexes_enabled", None),
        ("indexes_disabled", PlannerOptions(use_indexes=False)),
    ):
        database = build_database(scale, planner_options=options)
        connection = database.connection()
        planner[label] = _mean_ms(
            lambda: queries_sql.do_get_related(connection, 17), executions
        )

    # 3. Rewriting on/off: the same getName loop as generated SQL vs the
    #    full ORM scan the programmer wrote.
    database = build_database(scale)
    em = database.entity_manager()
    rewrite = {
        "rewritten_ms": _mean_ms(
            lambda: queries_queryll.get_name(em, 123), executions
        ),
        "unrewritten_full_scan_ms": _mean_ms(
            lambda: queries_queryll.get_name_loop.original(em, 123).to_list(),
            max(1, executions // 10),
        ),
    }

    # 4. The logical optimizer: latency + row width, optimized vs not.
    harness = TpcwBenchmark(config)
    projection = harness.run_projection_split()
    session = harness.database.database.session()
    parameters = {name: draw for name, draw in TpcwBenchmark.PROJECTION_QUERIES}
    optimizer: dict[str, dict[str, float]] = {}
    for name, entry in projection.items():
        value = getattr(harness._parameters, parameters[name])()
        timing: dict[str, float] = {}
        for variant in ("optimized", "unoptimized"):
            sql = entry[variant]["sql"]
            params = tuple(value for _ in range(sql.count("?")))
            timing[f"{variant}_ms"] = _mean_ms(
                lambda: session.execute(sql, params), executions
            )
        optimizer[name] = timing

    return {
        "benchmark": "ablations",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "num_items": scale.num_items,
            "num_customers": scale.num_customers,
            "executions": executions,
        },
        "simplify": {"redundant_chain_ms": simplify_ms},
        "planner": planner,
        "rewrite": rewrite,
        "optimizer": {"latency": optimizer, "projection": projection},
    }


def main(argv: list[str] | None = None) -> int:
    from _cli import emit_report, parse_bench_args

    args = parse_bench_args(__doc__, "BENCH_ablations.json", argv)
    if args.smoke:
        config = BenchmarkConfig.quick()
        executions = 30
    else:
        config = BenchmarkConfig.from_environment()
        executions = 300
    emit_report(run_experiment(config, executions), args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
