"""Plan-cache ablation: repeated-statement latency and TPC-W throughput
with the shared statement/plan cache enabled vs disabled.

Two ways to run it:

* ``python benchmarks/bench_plan_cache.py [--smoke] [--output PATH]`` —
  standalone: emits a machine-readable JSON document (also written to
  ``BENCH_plan_cache.json`` by default) with the per-query plan+execute
  latency split and interactions/sec, so the perf trajectory can accumulate
  across PRs.  ``--smoke`` shrinks the workload for CI.
* ``python -m pytest benchmarks/bench_plan_cache.py`` — as a test, asserting
  the cache actually gets hit and the report has the expected shape.

The experiment demonstrates both halves of the acceptance criterion: the
parse+plan cost that every execution pays without the cache (``execute_cold``
vs ``execute_warm``), and the end-to-end interactions/sec effect on the
concurrent TPC-W driver.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without pytest
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.tpcw.harness import BenchmarkConfig, TpcwBenchmark
from repro.tpcw.workload import ConcurrentDriver


def run_experiment(
    benchmark: TpcwBenchmark,
    executions: int,
    driver_interactions: int,
    threads: int = 4,
) -> dict:
    """The full plan-cache experiment as a JSON-serialisable dict."""
    database = benchmark.database.database
    split = benchmark.run_plan_cache_split(executions=executions)

    throughput: dict[str, dict[str, float]] = {}
    cache_size = database.statement_cache_info()["size"]
    for label, size in (("cache_enabled", cache_size), ("cache_disabled", 0)):
        database.set_statement_cache_size(size)
        try:
            driver = ConcurrentDriver(
                benchmark.database,
                variant="handwritten",
                threads=threads,
                interactions_per_thread=max(1, driver_interactions // threads),
            )
            result = driver.run()
        finally:
            database.set_statement_cache_size(cache_size)
        throughput[label] = {
            "interactions_per_sec": result.interactions_per_sec,
            "interactions": result.interactions,
            "threads": result.threads,
            "elapsed_s": result.elapsed_s,
        }

    return {
        "benchmark": "plan_cache",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "num_items": benchmark.config.scale.num_items,
            "num_customers": benchmark.config.scale.num_customers,
            "executions": executions,
            "driver_interactions": driver_interactions,
            "threads": threads,
        },
        "queries": split,
        "throughput": throughput,
        "cache": database.statement_cache_info(),
    }


# -- pytest entry points -----------------------------------------------------


def test_plan_cache_split_and_throughput(tpcw_benchmark, capsys) -> None:
    report = run_experiment(
        tpcw_benchmark, executions=50, driver_interactions=200
    )
    assert set(report["queries"]) == {
        "getName", "getCustomer", "doSubjectSearch", "doGetRelated"
    }
    for name, split in report["queries"].items():
        assert split["plan_ms"] > 0, name
        assert split["execute_warm_ms"] > 0, name
        assert split["execute_cold_ms"] > 0, name
    assert report["cache"]["hits"] > 0
    assert report["throughput"]["cache_enabled"]["interactions"] > 0
    assert report["throughput"]["cache_disabled"]["interactions"] > 0
    with capsys.disabled():
        print("\n" + json.dumps(report, indent=2))


# -- standalone entry point --------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    from _cli import emit_report, parse_bench_args

    args = parse_bench_args(__doc__, "BENCH_plan_cache.json", argv)
    if args.smoke:
        config = BenchmarkConfig.quick()
        executions, interactions = 50, 200
    else:
        config = BenchmarkConfig.from_environment()
        executions, interactions = 500, 2000
    benchmark = TpcwBenchmark(config)
    report = run_experiment(
        benchmark, executions=executions, driver_interactions=interactions
    )
    emit_report(report, args.output)
    warm = sum(q["execute_warm_ms"] for q in report["queries"].values())
    cold = sum(q["execute_cold_ms"] for q in report["queries"].values())
    if warm >= cold:
        print(
            f"warning: warm latency ({warm:.3f} ms) did not beat cold "
            f"({cold:.3f} ms)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
