"""Shared scaffolding for the standalone ``bench_*.py`` entry points.

Every benchmark main speaks the same contract: ``--smoke`` shrinks the
workload for CI, ``--output PATH`` names the ``BENCH_<name>.json`` artifact
(``-`` for stdout only), and the JSON report is always printed.  The
helpers here keep that contract in one place so a change to it (say, a new
common report field) is a single edit.

The module name starts with an underscore so pytest's ``bench_*.py``
collection rule never picks it up as a test module.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def parse_bench_args(
    description: str | None, default_output: str, argv: list[str] | None = None
) -> argparse.Namespace:
    """The standard ``--smoke`` / ``--output`` benchmark argument parser."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload for CI smoke runs",
    )
    parser.add_argument(
        "--output", default=default_output,
        help="where to write the JSON report ('-' for stdout only)",
    )
    return parser.parse_args(argv)


def emit_report(report: dict, output: str) -> None:
    """Print the report and write it to ``output`` (unless ``-``)."""
    text = json.dumps(report, indent=2)
    print(text)
    if output != "-":
        Path(output).write_text(text + "\n")
