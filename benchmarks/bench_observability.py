"""Measure the cost of the observability layer on the statement hot path.

The contract the engine makes (ROADMAP: observability) is that a node with
tracing and the slow-query log disabled pays only one gate check per
statement — ``trace is None and not database._observed`` — before falling
into the exact pre-observability code path.  This benchmark pins that
promise to a number: it times the same point-query workload four ways and
reports each variant's throughput relative to the ungated baseline.

Variants::

    baseline    session._execute_statement(...)  (the code behind the gate)
    gated_off   session.execute(...) with tracing + slow log disabled
    tracing_on  session.execute(...) with every statement traced
    slowlog_on  session.execute(...) with a high slow-query threshold

``gated_off`` is the gated number: the report's ``gate`` block fails when
its overhead ratio (baseline time / gated time, inverted to >= 1.0 means
slower) exceeds 1.05.  ``tracing_on`` and ``slowlog_on`` are informational
— tracing every statement is *supposed* to cost something; the contract is
only that you don't pay for it while it's off.

Each variant runs ``repeats`` times in interleaved rounds (so drift in
machine load hits every variant equally) and the best round is kept —
minimum time is the standard noise-robust estimator for microbenchmarks.
"""

from __future__ import annotations

import time

from _cli import emit_report, parse_bench_args

from repro.obs.trace import TracingOptions
from repro.sqlengine.engine import Database

GATE_THRESHOLD = 1.05


def _build_database(**obs_kwargs) -> Database:
    database = Database(**obs_kwargs)
    database.execute("CREATE TABLE kv (id INT PRIMARY KEY, v INT)")
    for index in range(100):
        database.execute(f"INSERT INTO kv VALUES ({index}, {index})")
    return database


def _time_round(session, iterations: int, *, gated: bool) -> float:
    sql = "SELECT v FROM kv WHERE id = 7"
    if gated:
        run = session.execute
    else:
        # The exact call the hot-path gate dispatches to when nothing is
        # observed: this is the pre-observability statement path.
        run = lambda s: session._execute_statement(s, (), None)  # noqa: E731
    start = time.perf_counter()
    for _ in range(iterations):
        run(sql)
    return time.perf_counter() - start


def run_experiment(iterations: int, repeats: int) -> dict:
    variants = {
        "baseline": (_build_database(), False),
        "gated_off": (_build_database(), True),
        "tracing_on": (
            _build_database(tracing=TracingOptions(enabled=True)),
            True,
        ),
        "slowlog_on": (_build_database(slow_query_ms=10_000.0), True),
    }
    sessions = {
        name: database.session() for name, (database, _) in variants.items()
    }
    best: dict[str, float] = {}
    for _ in range(repeats + 1):  # one extra interleaved round as warm-up
        for name, (_, gated) in variants.items():
            elapsed = _time_round(sessions[name], iterations, gated=gated)
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
    for name, (database, _) in variants.items():
        sessions[name].close()
        database.close()

    throughput = {
        name: round(iterations / elapsed, 1) for name, elapsed in best.items()
    }
    overhead = {
        name: round(best[name] / best["baseline"], 4)
        for name in ("gated_off", "tracing_on", "slowlog_on")
    }
    return {
        "benchmark": "observability_overhead",
        "iterations": iterations,
        "repeats": repeats,
        "statements_per_second": throughput,
        "overhead_ratio": overhead,
        "gate": {
            "metric": "overhead_ratio.gated_off",
            "threshold": GATE_THRESHOLD,
            "value": overhead["gated_off"],
            "passed": overhead["gated_off"] <= GATE_THRESHOLD,
        },
    }


def main(argv: list[str] | None = None) -> int:
    args = parse_bench_args(__doc__, "BENCH_observability.json", argv)
    iterations = 2_000 if args.smoke else 20_000
    repeats = 3 if args.smoke else 5
    report = run_experiment(iterations, repeats)
    report["smoke"] = args.smoke
    emit_report(report, args.output)
    return 0 if report["gate"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
