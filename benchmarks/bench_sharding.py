"""Sharding: write scaling, fan-out latency, 2PC overhead, kill schedules.

The experiment answers the questions hash-partitioned sharding raises:

* does a second (and fourth) shard buy write throughput — keyed
  single-shard writes through the coordinator against 1/2/4 shard
  processes, every server in its own process (one interpreter lock per
  node, the way a deployment runs);
* what does a fan-out cost — latency percentiles for single-shard routed
  lookups vs scatter-gather aggregates vs ordered k-way merges over the
  same population;
* what does two-phase commit cost — commit latency of a cross-shard
  transfer (PREPARE + journaled decision + COMMIT_PREPARED on two
  participants) against the same transfer pinned to one shard;
* does a shard crash lose money — 10 seeded kill schedules run randomised
  cross-shard transfers, kill a shard node mid-run, restart it, let the
  coordinator resolve in-doubt transactions from its decision journal and
  audit: the account total is exactly conserved, every applied transfer
  is atomic (balances replay from the transfer ledger), and every
  acknowledged transfer survived.  ``stock_sum_violations``,
  ``torn_transfers`` and ``lost_acked`` in the report are the CI gate.

Write scaling needs real cores: the report carries ``cpu_count`` and
``parallel_capable`` and the scaling ratio is only meaningful where the
host can actually run the shard processes in parallel.

Two ways to run it:

* ``python benchmarks/bench_sharding.py [--smoke] [--output PATH]`` —
  standalone: emits the machine-readable JSON document (written to
  ``BENCH_sharding.json`` by default).  ``--smoke`` shrinks the workload
  for CI.
* ``python -m pytest benchmarks/bench_sharding.py`` — as a test,
  asserting the report shape and the zero-loss gates.
"""

from __future__ import annotations

import json
import os
import random
import re
import shutil
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without pytest
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import SqlError
from repro.netclient.client import RemoteDatabase
from repro.netclient.pool import ConnectionPool
from repro.server.server import SqlServer
from repro.sharding import ShardMap, ShardedDatabase
from repro.sqlengine.engine import Database

_BENCH_DIR = Path(__file__).resolve().parent


# -- process-per-node topology ------------------------------------------------


def _spawn_node(args: list[str]) -> tuple[subprocess.Popen, tuple[str, int]]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_BENCH_DIR.parent / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.replication.serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.match(r"PORT (\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(
            f"node failed to start: {line!r}\n{proc.stderr.read()}"
        )
    return proc, ("127.0.0.1", int(match.group(1)))


class ProcessCluster:
    """N shard-primary processes behind one coordinator process."""

    def __init__(self, num_shards: int, base_dir: str):
        self.procs: list[subprocess.Popen] = []
        shard_args: list[str] = []
        for index in range(num_shards):
            proc, address = _spawn_node(
                ["primary", "--data-dir", os.path.join(base_dir, f"s{index}")]
            )
            self.procs.append(proc)
            shard_args.extend(["--shard", f"{address[0]}:{address[1]}"])
        proc, self.address = _spawn_node(
            [
                "coordinator",
                *shard_args,
                "--table",
                "bench=id",
                "--data-dir",
                os.path.join(base_dir, "coord"),
            ]
        )
        self.procs.append(proc)

    def stop(self) -> None:
        for proc in self.procs:
            proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


# -- write scaling ------------------------------------------------------------


def _write_worker(
    address: tuple[str, int], start: int, count: int, barrier: threading.Barrier
) -> None:
    with RemoteDatabase(address).session() as session:
        barrier.wait()
        for i in range(start, start + count):
            session.execute(
                "INSERT INTO bench (id, v) VALUES (?, ?)", (i, i)
            )


def measure_write_scaling(
    shard_counts: tuple[int, ...], *, clients: int, writes_per_client: int
) -> dict:
    entries = []
    for num_shards in shard_counts:
        base = tempfile.mkdtemp(prefix=f"bench-shard-{num_shards}-")
        cluster = ProcessCluster(num_shards, base)
        try:
            with RemoteDatabase(cluster.address).session() as session:
                session.execute(
                    "CREATE TABLE bench (id INT PRIMARY KEY, v INT)"
                )
            barrier = threading.Barrier(clients + 1)
            workers = [
                threading.Thread(
                    target=_write_worker,
                    args=(
                        cluster.address,
                        client * writes_per_client,
                        writes_per_client,
                        barrier,
                    ),
                )
                for client in range(clients)
            ]
            for worker in workers:
                worker.start()
            barrier.wait()
            started = time.perf_counter()
            for worker in workers:
                worker.join()
            elapsed = time.perf_counter() - started
            total = clients * writes_per_client
            with RemoteDatabase(cluster.address).session() as session:
                landed = session.execute("SELECT COUNT(*) FROM bench").rows[0][0]
            assert landed == total, f"{landed} of {total} writes landed"
            entries.append(
                {
                    "shards": num_shards,
                    "writes": total,
                    "elapsed_s": round(elapsed, 4),
                    "writes_per_sec": round(total / elapsed, 1),
                }
            )
        finally:
            cluster.stop()
            shutil.rmtree(base, ignore_errors=True)
    single = next(
        (e["writes_per_sec"] for e in entries if e["shards"] == 1), None
    )
    cpu_count = os.cpu_count() or 1
    return {
        "entries": entries,
        "speedup_vs_single": {
            str(e["shards"]): round(e["writes_per_sec"] / single, 2)
            for e in entries
            if single
        },
        "cpu_count": cpu_count,
        # Each shard process plus the coordinator needs a core to scale.
        "parallel_capable": cpu_count >= max(shard_counts) + 2,
    }


# -- fan-out latency and 2PC overhead -----------------------------------------


def _percentiles(samples: list[float]) -> dict:
    ordered = sorted(samples)
    return {
        "p50_ms": round(statistics.median(ordered) * 1000, 3),
        "p99_ms": round(ordered[int(len(ordered) * 0.99) - 1] * 1000, 3),
        "mean_ms": round(statistics.fmean(ordered) * 1000, 3),
    }


def measure_fanout_latency(rows: int, queries: int) -> dict:
    base = tempfile.mkdtemp(prefix="bench-shard-fanout-")
    cluster = ProcessCluster(2, base)
    try:
        with RemoteDatabase(cluster.address).session() as session:
            session.execute("CREATE TABLE bench (id INT PRIMARY KEY, v INT)")
            for start in range(0, rows, 100):
                values = ", ".join(
                    f"({i}, {i % 97})" for i in range(start, min(start + 100, rows))
                )
                session.execute(f"INSERT INTO bench VALUES {values}")
            shapes = {
                "single_shard_lookup": lambda i: session.execute(
                    "SELECT v FROM bench WHERE id = ?", (i % rows,)
                ),
                "fanout_aggregate": lambda i: session.execute(
                    "SELECT COUNT(*), SUM(v) FROM bench"
                ),
                "fanout_ordered_merge": lambda i: session.execute(
                    "SELECT id FROM bench ORDER BY v, id LIMIT 20"
                ),
            }
            report = {}
            for name, run in shapes.items():
                run(0)  # warm the plan caches on every node
                samples = []
                for i in range(queries):
                    started = time.perf_counter()
                    run(i)
                    samples.append(time.perf_counter() - started)
                report[name] = _percentiles(samples)
        return report
    finally:
        cluster.stop()
        shutil.rmtree(base, ignore_errors=True)


def measure_2pc_overhead(accounts: int, transfers: int) -> dict:
    base = tempfile.mkdtemp(prefix="bench-shard-2pc-")
    cluster = ProcessCluster(2, base)
    try:
        with RemoteDatabase(cluster.address).session() as session:
            session.execute(
                "CREATE TABLE bench (id INT PRIMARY KEY, v INT)"
            )
            for i in range(accounts):
                session.execute(
                    "INSERT INTO bench VALUES (?, ?)", (i, 1000)
                )

        def transfer(source: int, destination: int) -> float:
            with RemoteDatabase(cluster.address).session(
                autocommit=False
            ) as txn:
                txn.execute(
                    "UPDATE bench SET v = v - 1 WHERE id = ?", (source,)
                )
                txn.execute(
                    "UPDATE bench SET v = v + 1 WHERE id = ?", (destination,)
                )
                started = time.perf_counter()
                txn.commit()
                return time.perf_counter() - started

        # ids 0/2 share shard 0, 1/3 share shard 1: same statement count,
        # the only difference is how many participants the commit drives.
        single = [transfer(0, 2) for _ in range(transfers)]
        cross = [transfer(0, 1) for _ in range(transfers)]
        report = {
            "single_shard_commit": _percentiles(single),
            "cross_shard_2pc_commit": _percentiles(cross),
            "overhead_ratio": round(
                statistics.fmean(cross) / statistics.fmean(single), 2
            ),
        }
        with RemoteDatabase(cluster.address).session() as session:
            total = session.execute("SELECT SUM(v) FROM bench").rows[0][0]
        assert total == accounts * 1000, "transfers must conserve the total"
        return report
    finally:
        cluster.stop()
        shutil.rmtree(base, ignore_errors=True)


# -- seeded shard-kill schedules ----------------------------------------------

ACCOUNTS = 20
INITIAL_BALANCE = 1000


def run_kill_schedule(seed: int, transfers: int, base_dir: str) -> dict:
    """One seeded crash: transfer, kill a shard mid-run, recover, audit.

    Shard servers run in-process (their engines survive the server kill,
    exactly like a process whose sockets die before its state is lost to
    the audit) and the coordinator journals 2PC decisions on disk.  After
    the crash window the shard is restarted, a fresh coordinator replays
    the journal, and three properties are audited:

    * conservation — SUM(balance) over both shards is exactly the initial
      total (the stock-sum gate);
    * atomicity — replaying the transfer ledger from the initial state
      reproduces the balances exactly (no torn transfer: each ledger row
      commits atomically with its two balance updates);
    * durability — every transfer acknowledged to the client is in the
      ledger (2PC never loses a committed transaction).
    """
    rng = random.Random(seed)
    shard_map = ShardMap(
        version=1, num_shards=2, tables={"acct": "id", "xfer": "id"}
    )
    journal_dir = os.path.join(base_dir, f"schedule-{seed}", "coord")
    databases = [Database(), Database()]
    servers = [
        SqlServer(database=database, max_connections=16).start()
        for database in databases
    ]
    pools = [
        ConnectionPool(server.address[0], server.address[1], max_size=4)
        for server in servers
    ]
    coordinator = ShardedDatabase(shard_map, pools, data_dir=journal_dir)
    coordinator.execute("CREATE TABLE acct (id INT PRIMARY KEY, balance INT)")
    coordinator.execute(
        "CREATE TABLE xfer (id INT PRIMARY KEY, src INT, dst INT, amount INT)"
    )
    for i in range(ACCOUNTS):
        coordinator.execute(
            "INSERT INTO acct VALUES (?, ?)", (i, INITIAL_BALANCE)
        )

    kill_after = rng.randrange(1, transfers)
    victim = rng.randrange(2)
    # The kill fires from its own thread after a seeded jitter, so across
    # the schedules it lands everywhere in the transfer loop — including
    # inside the window between PREPARE and COMMIT_PREPARED.
    kill_delay = rng.random() * 0.002
    kill_armed = threading.Event()
    killed = threading.Event()

    def _killer() -> None:
        kill_armed.wait()
        time.sleep(kill_delay)
        servers[victim].kill()
        killed.set()

    killer = threading.Thread(target=_killer, daemon=True)
    killer.start()
    acked: list[int] = []
    attempted = 0
    for transfer_id in range(transfers):
        if transfer_id == kill_after:
            kill_armed.set()
        source = rng.randrange(ACCOUNTS)
        destination = (source + rng.randrange(1, ACCOUNTS)) % ACCOUNTS
        amount = rng.randint(1, 9)
        attempted += 1
        try:
            with coordinator.session(autocommit=False) as txn:
                txn.execute(
                    "UPDATE acct SET balance = balance - ? WHERE id = ?",
                    (amount, source),
                )
                txn.execute(
                    "UPDATE acct SET balance = balance + ? WHERE id = ?",
                    (amount, destination),
                )
                txn.execute(
                    "INSERT INTO xfer VALUES (?, ?, ?, ?)",
                    (transfer_id, source, destination, amount),
                )
                txn.commit()
            acked.append(transfer_id)
        except (SqlError, OSError):
            continue  # the dead shard vetoed or the commit went in doubt
    kill_armed.set()
    killer.join(timeout=10)
    coordinator.close()
    for pool in pools:
        pool.close()

    # Restart the dead node's server over its surviving engine, then a
    # fresh coordinator: its constructor replays the decision journal and
    # resolves every in-doubt prepared batch.
    servers[victim] = SqlServer(
        database=databases[victim], max_connections=16
    ).start()
    pools = [
        ConnectionPool(server.address[0], server.address[1], max_size=4)
        for server in servers
    ]
    recovered = ShardedDatabase(shard_map, pools, data_dir=journal_dir)
    recovered.register_table("acct", ("id", "balance"))
    recovered.register_table("xfer", ("id", "src", "dst", "amount"))
    try:
        resolution = recovered.stats()
        total = recovered.execute("SELECT SUM(balance) FROM acct").rows[0][0]
        balances = dict(
            recovered.execute("SELECT id, balance FROM acct").rows
        )
        ledger = recovered.execute(
            "SELECT id, src, dst, amount FROM xfer"
        ).rows
        replayed = {i: INITIAL_BALANCE for i in range(ACCOUNTS)}
        for _xfer_id, source, destination, amount in ledger:
            replayed[source] -= amount
            replayed[destination] += amount
        ledger_ids = {row[0] for row in ledger}
        lost_acked = len([t for t in acked if t not in ledger_ids])
        return {
            "seed": seed,
            "kill_after": kill_after,
            "victim_shard": victim,
            "attempted": attempted,
            "acked": len(acked),
            "applied": len(ledger_ids),
            "in_doubt_committed": resolution["in_doubt_committed"],
            "in_doubt_aborted": resolution["in_doubt_aborted"],
            "stock_sum_ok": total == ACCOUNTS * INITIAL_BALANCE,
            "torn": replayed != balances,
            "lost_acked": lost_acked,
        }
    finally:
        recovered.close()
        for pool in pools:
            pool.close()
        for server in servers:
            server.kill()
        for database in databases:
            database.close()


def measure_kill_schedules(schedules: int, transfers: int) -> dict:
    base = tempfile.mkdtemp(prefix="bench-shard-kill-")
    try:
        entries = [
            run_kill_schedule(seed, transfers, base)
            for seed in range(schedules)
        ]
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return {
        "schedules": entries,
        # The CI gate: money is conserved, transfers are atomic, and no
        # acknowledged transfer vanished.
        "stock_sum_violations": sum(
            1 for e in entries if not e["stock_sum_ok"]
        ),
        "torn_transfers": sum(1 for e in entries if e["torn"]),
        "lost_acked": sum(e["lost_acked"] for e in entries),
    }


# -- the experiment -----------------------------------------------------------


def run_experiment(
    *,
    shard_counts: tuple[int, ...],
    clients: int,
    writes_per_client: int,
    fanout_rows: int,
    fanout_queries: int,
    twopc_transfers: int,
    kill_schedules: int,
    kill_transfers: int,
) -> dict:
    return {
        "write_scaling": measure_write_scaling(
            shard_counts, clients=clients, writes_per_client=writes_per_client
        ),
        "fanout_latency": measure_fanout_latency(fanout_rows, fanout_queries),
        "twopc_overhead": measure_2pc_overhead(
            accounts=8, transfers=twopc_transfers
        ),
        "kill_schedules": measure_kill_schedules(
            kill_schedules, kill_transfers
        ),
    }


# -- pytest entry point -------------------------------------------------------


def test_sharding_report_shape_and_invariants(capsys) -> None:
    report = run_experiment(
        shard_counts=(1, 2),
        clients=4,
        writes_per_client=40,
        fanout_rows=400,
        fanout_queries=40,
        twopc_transfers=40,
        kill_schedules=10,
        kill_transfers=25,
    )
    scaling = report["write_scaling"]
    assert {entry["shards"] for entry in scaling["entries"]} == {1, 2}
    for entry in scaling["entries"]:
        assert entry["writes_per_sec"] > 0

    latency = report["fanout_latency"]
    for shape in (
        "single_shard_lookup",
        "fanout_aggregate",
        "fanout_ordered_merge",
    ):
        assert latency[shape]["p50_ms"] > 0

    overhead = report["twopc_overhead"]
    assert overhead["cross_shard_2pc_commit"]["p50_ms"] > 0
    # A 2PC commit does strictly more work than a one-shard commit.
    assert overhead["overhead_ratio"] > 0.5

    kills = report["kill_schedules"]
    assert len(kills["schedules"]) == 10
    assert kills["stock_sum_violations"] == 0
    assert kills["torn_transfers"] == 0
    assert kills["lost_acked"] == 0
    with capsys.disabled():
        print("\n" + json.dumps(report, indent=2))


# -- standalone entry point ---------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    from _cli import emit_report, parse_bench_args

    args = parse_bench_args(__doc__, "BENCH_sharding.json", argv)
    if args.smoke:
        report = run_experiment(
            shard_counts=(1, 2, 4),
            clients=4,
            writes_per_client=60,
            fanout_rows=600,
            fanout_queries=60,
            twopc_transfers=60,
            kill_schedules=10,
            kill_transfers=30,
        )
    else:
        report = run_experiment(
            shard_counts=(1, 2, 4),
            clients=8,
            writes_per_client=250,
            fanout_rows=5000,
            fanout_queries=200,
            twopc_transfers=300,
            kill_schedules=10,
            kill_transfers=100,
        )
    emit_report(report, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
