"""Network throughput: the TPC-W workload over the wire vs in-process.

The experiment answers the questions the network subsystem raises:

* what does the wire cost — interactions/sec and round trips for the same
  emulated-browser workload driven in-process vs through pooled network
  connections against a spawned :class:`~repro.server.SqlServer`;
* what does cursor batching buy — draining a multi-row result with one
  FETCH batch per round trip vs row-at-a-time (``batch_rows=1``);
* what do remote interactions cost individually — client-observed latency
  percentiles (p50/p95/p99) per TPC-W interaction;
* does the transactional write mix stay correct over the network — the
  stock-sum invariant after concurrent remote stock transfers.

Two ways to run it:

* ``python benchmarks/bench_network_throughput.py [--smoke] [--output PATH]``
  — standalone: emits the machine-readable JSON document (written to
  ``BENCH_network.json`` by default).  ``--smoke`` shrinks the workload
  for CI.
* ``python -m pytest benchmarks/bench_network_throughput.py`` — as a test,
  asserting the report shape, that batched FETCH beats row-at-a-time, and
  that the remote write mix conserves stock.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without pytest
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.netclient import ConnectionPool
from repro.server import SqlServer
from repro.tpcw import queries_sql
from repro.tpcw.workload import ConcurrentDriver, ParameterGenerator


def measure_throughput(database, threads: int, interactions: int) -> list[dict]:
    """In-process vs remote driver runs at matched scale, per variant."""
    entries = []
    for variant in ("handwritten", "queryll"):
        for remote in (False, True):
            driver = ConcurrentDriver(
                database,
                variant=variant,
                threads=threads,
                interactions_per_thread=max(1, interactions // threads),
                remote=remote,
            )
            entries.append(driver.run().as_dict())
    return entries


def measure_write_mix(database, threads: int, interactions: int) -> dict:
    """The remote transactional write mix + the stock-sum invariant."""
    engine = database.database
    before = sum(row[0] for row in engine.execute("SELECT i_stock FROM item").rows)
    result = ConcurrentDriver(
        database,
        variant="handwritten",
        threads=threads,
        interactions_per_thread=max(1, interactions // threads),
        write_fraction=0.2,
        remote=True,
    ).run()
    after = sum(row[0] for row in engine.execute("SELECT i_stock FROM item").rows)
    return {**result.as_dict(), "stock_conserved": after == before}


def measure_fetch_batching(database, repetitions: int) -> dict:
    """Batched FETCH vs row-at-a-time for one wide scan.

    Both variants drain ``SELECT i_id, i_title FROM item`` through a
    server-side cursor; the batched run ships rows in protocol-default
    batches (one round trip each), the other one row per round trip —
    the driver-level cost the paper attributes to chatty result access.
    """
    from repro.netclient import DEFAULT_BATCH_ROWS, RemoteDatabase

    sql = "SELECT i_id, i_title FROM item"
    report: dict[str, object] = {"sql": sql, "repetitions": repetitions}
    with SqlServer(database=database.database) as server:
        for label, batch_rows in (
            ("batched", DEFAULT_BATCH_ROWS),
            ("row_at_a_time", 1),
        ):
            remote = RemoteDatabase(server.address, batch_rows=batch_rows)
            session = remote.session()
            rows = 0
            started = time.perf_counter()
            for _ in range(repetitions):
                rows += len(session.execute(sql).rows)
            elapsed = time.perf_counter() - started
            round_trips = session.client.round_trips
            session.close()
            report[label] = {
                "batch_rows": batch_rows,
                "rows": rows,
                "elapsed_s": elapsed,
                "rows_per_sec": rows / elapsed if elapsed > 0 else float("inf"),
                "round_trips": round_trips,
            }
    report["speedup"] = (
        report["row_at_a_time"]["elapsed_s"] / report["batched"]["elapsed_s"]
        if report["batched"]["elapsed_s"] > 0
        else float("inf")
    )
    return report


def _percentile(sorted_samples: list[float], q: float) -> float:
    index = min(len(sorted_samples) - 1, int(q * len(sorted_samples)))
    return sorted_samples[index]


def measure_latency_percentiles(database, executions: int) -> dict:
    """Client-observed latency percentiles per remote TPC-W interaction."""
    interactions = (
        ("getName", queries_sql.get_name, "customer_id"),
        ("getCustomer", queries_sql.get_customer, "customer_username"),
        ("doSubjectSearch", queries_sql.do_subject_search, "subject"),
        ("doGetRelated", queries_sql.do_get_related, "item_id"),
    )
    report: dict[str, object] = {}
    with SqlServer(database=database.database) as server:
        with ConnectionPool(server.address, min_size=1, max_size=2) as pool:
            for name, function, parameter in interactions:
                parameters = ParameterGenerator(database.scale)
                draw = getattr(parameters, parameter)
                samples: list[float] = []
                for _ in range(executions):
                    with pool.connection() as connection:
                        value = draw()
                        started = time.perf_counter()
                        function(connection, value)
                        samples.append((time.perf_counter() - started) * 1000.0)
                samples.sort()
                report[name] = {
                    "executions": executions,
                    "p50_ms": _percentile(samples, 0.50),
                    "p95_ms": _percentile(samples, 0.95),
                    "p99_ms": _percentile(samples, 0.99),
                    "mean_ms": sum(samples) / len(samples),
                }
        stats = None
        session = None
        try:
            from repro.netclient import RemoteDatabase

            session = RemoteDatabase(server.address).session()
            stats = session.server_stats()
        finally:
            if session is not None:
                session.close()
    report["server_stats"] = stats
    return report


def run_experiment(
    threads: int,
    interactions: int,
    fetch_repetitions: int,
    latency_executions: int,
) -> dict:
    """The full network experiment as a JSON-serialisable dict."""
    from repro.tpcw import BenchmarkConfig, TpcwBenchmark

    benchmark = TpcwBenchmark(BenchmarkConfig.from_environment())
    database = benchmark.database
    throughput = measure_throughput(database, threads, interactions)
    remote_best = max(
        (entry for entry in throughput if entry["mode"] == "remote"),
        key=lambda entry: entry["interactions_per_sec"],
    )
    return {
        "benchmark": "network_throughput",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "threads": threads,
            "interactions": interactions,
            "fetch_repetitions": fetch_repetitions,
            "latency_executions": latency_executions,
            "items": benchmark.config.scale.num_items,
            "customers": benchmark.config.scale.num_customers,
        },
        "throughput": throughput,
        "remote_interactions_per_sec": remote_best["interactions_per_sec"],
        "write_mix": measure_write_mix(database, threads, interactions // 2),
        "fetch": measure_fetch_batching(database, fetch_repetitions),
        "latency_percentiles": measure_latency_percentiles(
            database, latency_executions
        ),
    }


# -- pytest entry points -----------------------------------------------------


def test_network_report_shape_and_invariants(capsys) -> None:
    import json

    report = run_experiment(
        threads=4, interactions=600, fetch_repetitions=3, latency_executions=30
    )
    modes = {(entry["variant"], entry["mode"]) for entry in report["throughput"]}
    assert modes == {
        ("handwritten", "in-process"), ("handwritten", "remote"),
        ("queryll", "in-process"), ("queryll", "remote"),
    }
    for entry in report["throughput"]:
        assert entry["interactions_per_sec"] > 0
        if entry["mode"] == "remote":
            assert entry["wire_round_trips"] > 0
    # Batched FETCH must beat row-at-a-time streaming by a wide margin.
    assert report["fetch"]["speedup"] >= 2.0
    assert (
        report["fetch"]["row_at_a_time"]["round_trips"]
        > report["fetch"]["batched"]["round_trips"]
    )
    # The remote transactional mix conserves stock.
    assert report["write_mix"]["stock_conserved"] is True
    for name in ("getName", "getCustomer", "doSubjectSearch", "doGetRelated"):
        entry = report["latency_percentiles"][name]
        assert 0 < entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
    with capsys.disabled():
        print("\n" + json.dumps(report, indent=2))


# -- standalone entry point --------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    from _cli import emit_report, parse_bench_args

    args = parse_bench_args(__doc__, "BENCH_network.json", argv)
    if args.smoke:
        report = run_experiment(
            threads=4, interactions=1600, fetch_repetitions=5,
            latency_executions=100,
        )
    else:
        report = run_experiment(
            threads=8, interactions=8000, fetch_repetitions=20,
            latency_executions=500,
        )
    emit_report(report, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
