"""Quickstart: write a database query as a plain Python loop, run it as SQL.

This walks through the minimal Queryll workflow:

1. describe the object-relational mapping,
2. create and populate a database,
3. write a query as an ordinary for-loop decorated with ``@query``,
4. inspect the SQL the bytecode analysis generates,
5. run the query (it executes the SQL, not the loop).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.orm import (
    EntityMapping,
    FieldMapping,
    OrmMapping,
    QueryllDatabase,
    QuerySet,
    RelationshipMapping,
)
from repro.pyfrontend import query
from repro.sqlengine.catalog import SqlType


def build_mapping() -> OrmMapping:
    """A two-table schema: products belong to categories."""
    return OrmMapping(
        [
            EntityMapping(
                "Category",
                "category",
                fields=[
                    FieldMapping("categoryId", "cat_id", SqlType.INTEGER, primary_key=True),
                    FieldMapping("name", "cat_name", SqlType.TEXT),
                ],
            ),
            EntityMapping(
                "Product",
                "product",
                fields=[
                    FieldMapping("productId", "p_id", SqlType.INTEGER, primary_key=True),
                    FieldMapping("name", "p_name", SqlType.TEXT),
                    FieldMapping("price", "p_price", SqlType.DOUBLE),
                    FieldMapping("categoryId", "p_cat_id", SqlType.INTEGER),
                ],
                relationships=[
                    RelationshipMapping("category", "Category", "p_cat_id", "cat_id", "to_one"),
                ],
            ),
        ]
    )


@query
def affordable_products(em, category_name, budget):
    """Products of one category costing at most ``budget``.

    This is ordinary Python: executed as written it would scan the whole
    product table.  The @query decorator analyses its compiled bytecode and
    runs the equivalent SQL instead.
    """
    result = QuerySet()
    for p in em.all("Product"):
        if p.category.name == category_name and p.price <= budget:
            result.add((p.name, p.price))
    return result


def main() -> None:
    db = QueryllDatabase(build_mapping())
    db.database.insert_rows("category", [(1, "Books"), (2, "Games")])
    db.database.insert_rows(
        "product",
        [
            (1, "Middleware 2006 proceedings", 59.0, 1),
            (2, "Compilers textbook", 89.0, 1),
            (3, "Relational algebra puzzles", 19.0, 2),
            (4, "Pocket SQL reference", 9.0, 1),
        ],
    )

    em = db.begin_transaction()

    print("Generated SQL:")
    print(" ", affordable_products.generated_sql(em))
    print()

    print("Affordable books (budget 60):")
    for name, price in affordable_products(em, "Books", 60.0):
        print(f"  {name:35s} {price:6.2f}")

    # The un-rewritten loop gives the same answer (just touching every row).
    plain = affordable_products.original(em, "Books", 60.0)
    rewritten = affordable_products(em, "Books", 60.0)
    assert sorted(plain.to_list()) == sorted(rewritten.to_list())
    print()
    print(f"rewritten calls: {affordable_products.rewritten_calls}, "
          f"fallback calls: {affordable_products.fallback_calls}")


if __name__ == "__main__":
    main()
