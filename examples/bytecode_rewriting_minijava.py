"""The full bytecode-rewriting pipeline of the paper's Fig. 9.

A query is written in MiniJava (a small Java-like language), compiled to
stack bytecode, serialised to a classfile, run unmodified on the mini-JVM
(slow: it scans the whole table), then fed through the Queryll bytecode
rewriter and run again (fast: one SQL query), with identical results.

Run with:  python examples/bytecode_rewriting_minijava.py
"""

from __future__ import annotations

from repro.jvm import BytecodeRewriter, ClassFile, Interpreter
from repro.jvm.instructions import format_instructions
from repro.jvm.runtime import standard_runtime
from repro.minijava import compile_source
from repro.orm import (
    EntityMapping,
    FieldMapping,
    OrmMapping,
    QueryllDatabase,
    RelationshipMapping,
)
from repro.sqlengine.catalog import SqlType

SOURCE = """
class OfficeQueries {
    @Query
    QuerySet<String> canadians(EntityManager em, String country) {
        QuerySet<String> result = new QuerySet<String>();
        for (Client c : em.allClient()) {
            if (c.getCountry().equals(country))
                result.add(c.getName());
        }
        return result;
    }

    @Query
    QuerySet<Office> westCoast(EntityManager em, QuerySet<Office> westcoast) {
        for (Office of : em.allOffice()) {
            if (of.getName().equals("Seattle"))
                westcoast.add(of);
            else if (of.getName().equals("LA"))
                westcoast.add(of);
        }
        return westcoast;
    }
}
"""


def build_mapping() -> OrmMapping:
    return OrmMapping(
        [
            EntityMapping(
                "Client",
                "Client",
                fields=[
                    FieldMapping("clientId", "ClientID", SqlType.INTEGER, primary_key=True),
                    FieldMapping("name", "Name", SqlType.TEXT),
                    FieldMapping("country", "Country", SqlType.TEXT),
                ],
                relationships=[
                    RelationshipMapping("accounts", "Account", "ClientID", "ClientID", "to_many"),
                ],
            ),
            EntityMapping(
                "Account",
                "Account",
                fields=[
                    FieldMapping("accountId", "AccountID", SqlType.INTEGER, primary_key=True),
                    FieldMapping("clientId", "ClientID", SqlType.INTEGER),
                    FieldMapping("balance", "Balance", SqlType.DOUBLE),
                ],
                relationships=[
                    RelationshipMapping("holder", "Client", "ClientID", "ClientID", "to_one"),
                ],
            ),
            EntityMapping(
                "Office",
                "Office",
                fields=[
                    FieldMapping("officeId", "OfficeID", SqlType.INTEGER, primary_key=True),
                    FieldMapping("name", "Name", SqlType.TEXT),
                ],
            ),
        ]
    )


def main() -> None:
    mapping = build_mapping()
    db = QueryllDatabase(mapping)
    db.database.insert_rows(
        "Client",
        [(1, "Alice", "Canada"), (2, "Bob", "Switzerland"), (3, "Carol", "Canada")],
    )
    db.database.insert_rows("Account", [(1, 1, 500.0), (2, 2, 900.0)])
    db.database.insert_rows(
        "Office", [(1, "Seattle"), (2, "LA"), (3, "Geneva"), (4, "Toronto")]
    )

    from repro.orm import QuerySet

    # 1. Compile MiniJava to bytecode and serialise the classfile.
    classfile = compile_source(SOURCE)
    blob = classfile.to_bytes()
    print(f"compiled classfile: {len(blob)} bytes, methods: {sorted(classfile.methods)}")
    print()
    print("bytecode of canadians() BEFORE rewriting:")
    print(format_instructions(classfile.method("canadians").instructions))
    print()

    # 2. Run the unmodified bytecode: correct, but scans the whole table.
    interpreter = Interpreter(standard_runtime())
    em = db.begin_transaction()
    slow = interpreter.run_class_method(
        ClassFile.from_bytes(blob), "canadians", {"em": em, "country": "Canada"}
    )
    print("unrewritten result:", sorted(slow.to_list()))
    print()

    # 3. Rewrite the classfile: @Query loops become SQL.
    rewriter = BytecodeRewriter(mapping)
    result = rewriter.rewrite_classfile(ClassFile.from_bytes(blob))
    print("rewritten methods:", sorted(result.rewritten_method_names))
    for name in ("canadians", "westCoast"):
        for sql in result.generated_sql(name):
            print(f"  {name}: {sql}")
    print()
    print("bytecode of canadians() AFTER rewriting:")
    print(format_instructions(result.classfile.method("canadians").instructions))
    print()

    # 4. Run the rewritten bytecode: same answer, one SQL query.
    em2 = db.begin_transaction()
    fast = interpreter.run_class_method(
        result.classfile, "canadians", {"em": em2, "country": "Canada"}
    )
    print("rewritten result:  ", sorted(fast.to_list()))
    assert sorted(slow.to_list()) == sorted(fast.to_list())

    west = interpreter.run_class_method(
        result.classfile, "westCoast", {"em": em2, "westcoast": QuerySet()}
    )
    print("west-coast offices:", sorted(office.name for office in west))


if __name__ == "__main__":
    main()
