"""The paper's bank example (Figs. 2-8): selection, projection, join,
ordering and limit, written as plain Python loops and rewritten to SQL.

Run with:  python examples/bank_accounts.py
"""

from __future__ import annotations

from repro.orm import (
    DoubleSorter,
    EntityMapping,
    FieldMapping,
    OrmMapping,
    Pair,
    QueryllDatabase,
    QuerySet,
    RelationshipMapping,
)
from repro.pyfrontend import query
from repro.sqlengine.catalog import SqlType


def bank_mapping() -> OrmMapping:
    """Fig. 2/3: the Client and Account tables and their relationship."""
    return OrmMapping(
        [
            EntityMapping(
                "Client",
                "Client",
                fields=[
                    FieldMapping("clientId", "ClientID", SqlType.INTEGER, primary_key=True),
                    FieldMapping("name", "Name", SqlType.TEXT),
                    FieldMapping("address", "Address", SqlType.TEXT),
                    FieldMapping("country", "Country", SqlType.TEXT),
                    FieldMapping("postalCode", "PostalCode", SqlType.TEXT),
                ],
                relationships=[
                    RelationshipMapping("accounts", "Account", "ClientID", "ClientID", "to_many"),
                ],
            ),
            EntityMapping(
                "Account",
                "Account",
                fields=[
                    FieldMapping("accountId", "AccountID", SqlType.INTEGER, primary_key=True),
                    FieldMapping("clientId", "ClientID", SqlType.INTEGER),
                    FieldMapping("balance", "Balance", SqlType.DOUBLE),
                    FieldMapping("minBalance", "MinBalance", SqlType.DOUBLE),
                ],
                relationships=[
                    RelationshipMapping("holder", "Client", "ClientID", "ClientID", "to_one"),
                ],
            ),
        ]
    )


# Fig. 5: a simple selection — clients from Canada.
@query
def canadian_clients(em, country):
    canadian = QuerySet()
    for c in em.all("Client"):
        if c.country == country:
            canadian.add(c.name)
    return canadian


# Fig. 6: projection with Pair — overdrawn accounts and their penalty.
@query
def overdrawn_accounts(em):
    overdrawn = QuerySet()
    for a in em.all("Account"):
        if a.balance < a.minBalance:
            penalty = (a.minBalance - a.balance) * 0.001
            overdrawn.add(Pair(a, penalty))
    return overdrawn


# Fig. 7: a join through relationship navigation — Swiss clients' accounts.
@query
def swiss_accounts(em):
    swiss = QuerySet()
    for a in em.all("Account"):
        if a.holder.country == "Switzerland":
            swiss.add(Pair(a.holder, a))
    return swiss


class BalanceSorter(DoubleSorter):
    """Fig. 8: the sorter describing which field to order by."""

    def value(self, val):
        return val.getBalance()


def main() -> None:
    db = QueryllDatabase(bank_mapping())
    db.database.insert_rows(
        "Client",
        [
            (1000, "Alice", "1 Main Street", "Canada", "K1A"),
            (1001, "Bob", "2 Rue du Lac", "Switzerland", "1015"),
            (1002, "Carol", "3 Elm Avenue", "Canada", "V5K"),
        ],
    )
    db.database.insert_rows(
        "Account",
        [
            (1, 1000, 500.0, 100.0),
            (2, 1000, 50.0, 100.0),
            (3, 1001, 900.0, 0.0),
            (4, 1001, -25.0, 50.0),
            (5, 1002, 10.0, 20.0),
        ],
    )

    em = db.begin_transaction()

    # Fig. 4: entities can be navigated like ordinary objects.
    client = em.find("Client", 1000)
    print(f"Client 1000 lives at {client.getAddress()}")
    print(f"Client 1000 has {client.getAccounts().size()} accounts")
    print()

    print("Fig. 5 — Canadian clients")
    print("  SQL:", canadian_clients.generated_sql(em))
    print("  ->", sorted(canadian_clients(em, "Canada").to_list()))
    print()

    print("Fig. 6 — overdrawn accounts and penalties (projection via Pair)")
    print("  SQL:", overdrawn_accounts.generated_sql(em))
    for pair in overdrawn_accounts(em):
        print(f"  account {pair.first.accountId}: penalty {pair.second:.4f}")
    print()

    print("Fig. 7 — Swiss clients joined to their accounts")
    print("  SQL:", swiss_accounts.generated_sql(em))
    for pair in swiss_accounts(em):
        print(f"  {pair.first.name} owns account {pair.second.accountId}")
    print()

    print("Fig. 8 — top accounts by balance (ordering + limit fold into SQL)")
    top_accounts = em.all("Account")
    top_accounts = top_accounts.sortedByDoubleDescending(BalanceSorter())
    top_accounts = top_accounts.firstN(2)
    print("  SQL:", top_accounts.describe_sql())
    for account in top_accounts:
        print(f"  account {account.accountId}: balance {account.balance}")


if __name__ == "__main__":
    main()
