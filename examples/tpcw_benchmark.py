"""Run the paper's TPC-W microbenchmark and print Tables 4 and 5.

By default a scaled-down database is used so the script finishes quickly;
select the full paper protocol (10 000 items, 100 EBs, 100 warm-up + 2000
measured executions) with::

    REPRO_TPCW_PROFILE=paper python examples/tpcw_benchmark.py

Run with:  python examples/tpcw_benchmark.py
"""

from __future__ import annotations

import time

from repro.tpcw import BenchmarkConfig, TpcwBenchmark


def main() -> None:
    config = BenchmarkConfig.from_environment()
    print(
        f"building TPC-W database: items={config.scale.num_items}, "
        f"customers={config.scale.num_customers} ..."
    )
    started = time.perf_counter()
    benchmark = TpcwBenchmark(config)
    print(f"  populated in {time.perf_counter() - started:.1f}s "
          f"({benchmark.database.summary})")
    print()

    print(benchmark.format_table5())
    print()

    print(
        f"measuring: {config.warmup_executions} warm-up + "
        f"{config.measured_executions} measured executions per run, "
        f"{config.runs} runs"
    )
    results = benchmark.run_table4()
    print()
    print(benchmark.format_table4(results))
    print()
    for result in results:
        print(
            f"{result.query:16s} Queryll/hand-written ratio: {result.ratio:5.2f}x "
            f"(paper: getName 1.64x, getCustomer 1.49x, doSubjectSearch 0.96x, "
            f"doGetRelated 2.49x)"
        )


if __name__ == "__main__":
    main()
