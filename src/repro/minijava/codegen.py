"""Bytecode generation for MiniJava.

The code generator deliberately mimics javac's patterns so the Queryll
rewriter sees realistic input: for-each loops compile to the
``iterator()/hasNext()/next()`` shape of the paper's Fig. 11 (including the
``goto`` to the condition at the bottom), and boolean conditions are
evaluated to an int followed by an ``IFEQ`` — the source of the redundant
comparisons the simplifier later removes.
"""

from __future__ import annotations

import itertools

from repro.errors import CompileError
from repro.jvm.assembler import MethodAssembler
from repro.jvm.classfile import MethodInfo
from repro.jvm.instructions import Opcode
from repro.minijava import ast_nodes as ast

_ARITHMETIC = {"+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL, "/": Opcode.DIV, "%": Opcode.REM}
_COMPARISONS = {
    "==": Opcode.CMPEQ,
    "!=": Opcode.CMPNE,
    "<": Opcode.CMPLT,
    "<=": Opcode.CMPLE,
    ">": Opcode.CMPGT,
    ">=": Opcode.CMPGE,
}


class MethodCodeGenerator:
    """Generates bytecode for one method."""

    def __init__(self, method: ast.MethodDecl) -> None:
        self._method = method
        self._assembler = MethodAssembler(
            name=method.name,
            parameters=[parameter.name for parameter in method.parameters],
            annotations=set(method.annotations),
            return_type=method.return_type,
        )
        self._label_counter = itertools.count(1)
        self._declared: set[str] = {parameter.name for parameter in method.parameters}

    def generate(self) -> MethodInfo:
        """Generate bytecode for the whole method body."""
        self._gen_block(self._method.body)
        # Guarantee the method cannot fall off the end.
        self._assembler.return_void()
        return self._assembler.finish()

    # -- statements -----------------------------------------------------------------------

    def _gen_statement(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.Block):
            self._gen_block(statement)
        elif isinstance(statement, ast.VarDecl):
            self._declared.add(statement.name)
            if statement.initializer is not None:
                self._gen_expression(statement.initializer)
                self._assembler.store(statement.name)
            else:
                self._assembler.emit(Opcode.ACONST_NULL)
                self._assembler.store(statement.name)
        elif isinstance(statement, ast.Assignment):
            if statement.name not in self._declared:
                raise CompileError(
                    f"assignment to undeclared variable {statement.name!r} "
                    f"in method {self._method.name!r}"
                )
            self._gen_expression(statement.expression)
            self._assembler.store(statement.name)
        elif isinstance(statement, ast.ExpressionStatement):
            self._gen_expression(statement.expression)
            self._assembler.emit(Opcode.POP)
        elif isinstance(statement, ast.IfStatement):
            self._gen_if(statement)
        elif isinstance(statement, ast.ForEach):
            self._gen_foreach(statement)
        elif isinstance(statement, ast.ReturnStatement):
            if statement.expression is None:
                self._assembler.return_void()
            else:
                self._gen_expression(statement.expression)
                self._assembler.areturn()
        else:  # pragma: no cover - defensive
            raise CompileError(f"cannot generate code for {statement!r}")

    def _gen_block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self._gen_statement(statement)

    def _gen_if(self, statement: ast.IfStatement) -> None:
        else_label = self._new_label("else")
        end_label = self._new_label("endif")
        self._gen_expression(statement.condition)
        self._assembler.ifeq(else_label if statement.else_branch else end_label)
        self._gen_statement(statement.then_branch)
        if statement.else_branch is not None:
            self._assembler.goto(end_label)
            self._assembler.label(else_label)
            self._gen_statement(statement.else_branch)
        self._assembler.label(end_label)

    def _gen_foreach(self, statement: ast.ForEach) -> None:
        iterator_local = f"$iter_{statement.name}"
        body_label = self._new_label("loop_body")
        condition_label = self._new_label("loop_cond")

        self._gen_expression(statement.collection)
        self._assembler.invokevirtual("iterator", 0)
        self._assembler.store(iterator_local)
        self._assembler.goto(condition_label)

        self._assembler.label(body_label)
        self._assembler.load(iterator_local)
        self._assembler.invokeinterface("next", 0)
        self._assembler.checkcast(statement.element_type)
        self._declared.add(statement.name)
        self._assembler.store(statement.name)
        self._gen_statement(statement.body)

        self._assembler.label(condition_label)
        self._assembler.load(iterator_local)
        self._assembler.invokeinterface("hasNext", 0)
        self._assembler.ifne(body_label)

    # -- expressions -------------------------------------------------------------------------

    def _gen_expression(self, expression: ast.Expression) -> None:
        assembler = self._assembler
        if isinstance(expression, ast.Literal):
            if expression.value is None:
                assembler.emit(Opcode.ACONST_NULL)
            elif isinstance(expression.value, bool):
                assembler.ldc(1 if expression.value else 0)
            else:
                assembler.ldc(expression.value)
        elif isinstance(expression, ast.Name):
            if expression.identifier not in self._declared:
                raise CompileError(
                    f"use of undeclared variable {expression.identifier!r} "
                    f"in method {self._method.name!r}"
                )
            assembler.load(expression.identifier)
        elif isinstance(expression, ast.MethodCall):
            self._gen_expression(expression.receiver)
            for argument in expression.arguments:
                self._gen_expression(argument)
            assembler.invokevirtual(expression.method, len(expression.arguments))
        elif isinstance(expression, ast.StaticCall):
            for argument in expression.arguments:
                self._gen_expression(argument)
            assembler.invokestatic(
                f"{expression.class_name}.{expression.method}", len(expression.arguments)
            )
        elif isinstance(expression, ast.FieldAccess):
            self._gen_expression(expression.receiver)
            assembler.emit(Opcode.GETFIELD, expression.field)
        elif isinstance(expression, ast.NewObject):
            for argument in expression.arguments:
                self._gen_expression(argument)
            assembler.newobj(expression.class_name, len(expression.arguments))
        elif isinstance(expression, ast.Unary):
            self._gen_expression(expression.operand)
            if expression.op == "-":
                assembler.emit(Opcode.NEG)
            else:
                assembler.ldc(0)
                assembler.emit(Opcode.CMPEQ)
        elif isinstance(expression, ast.Binary):
            self._gen_expression(expression.left)
            self._gen_expression(expression.right)
            op = expression.op
            if op in _ARITHMETIC:
                assembler.emit(_ARITHMETIC[op])
            elif op in _COMPARISONS:
                assembler.emit(_COMPARISONS[op])
            elif op == "&&":
                assembler.emit(Opcode.IAND)
            elif op == "||":
                assembler.emit(Opcode.IOR)
            else:  # pragma: no cover - defensive
                raise CompileError(f"unknown operator {op!r}")
        else:  # pragma: no cover - defensive
            raise CompileError(f"cannot generate code for {expression!r}")

    # -- helpers ---------------------------------------------------------------------------------

    def _new_label(self, prefix: str) -> str:
        return f"{prefix}_{next(self._label_counter)}"
