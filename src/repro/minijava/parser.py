"""Recursive-descent parser for MiniJava."""

from __future__ import annotations

from typing import Optional

from repro.errors import CompileError
from repro.minijava import ast_nodes as ast
from repro.minijava.lexer import MiniJavaLexer, Token, TokenKind


class MiniJavaParser:
    """Parses MiniJava source into an AST."""

    def __init__(self, source: str) -> None:
        self._tokens = MiniJavaLexer(source).tokenize()
        self._index = 0

    # -- public API ----------------------------------------------------------------------

    def parse_class(self) -> ast.ClassDecl:
        """Parse a single class declaration."""
        self._expect_keyword("class")
        name = self._expect_ident()
        self._expect_symbol("{")
        methods: list[ast.MethodDecl] = []
        while not self._peek().is_symbol("}"):
            methods.append(self._parse_method())
        self._expect_symbol("}")
        if self._peek().kind is not TokenKind.EOF:
            raise self._error("unexpected tokens after the class body")
        return ast.ClassDecl(name=name, methods=methods)

    # -- declarations ----------------------------------------------------------------------

    def _parse_method(self) -> ast.MethodDecl:
        annotations: list[str] = []
        while self._peek().is_symbol("@"):
            self._advance()
            annotations.append(self._expect_ident())
        return_type = self._parse_type()
        name = self._expect_ident()
        self._expect_symbol("(")
        parameters: list[ast.Parameter] = []
        if not self._peek().is_symbol(")"):
            parameters.append(self._parse_parameter())
            while self._peek().is_symbol(","):
                self._advance()
                parameters.append(self._parse_parameter())
        self._expect_symbol(")")
        body = self._parse_block()
        return ast.MethodDecl(
            name=name,
            return_type=return_type,
            parameters=parameters,
            body=body,
            annotations=annotations,
        )

    def _parse_parameter(self) -> ast.Parameter:
        type_name = self._parse_type()
        name = self._expect_ident()
        return ast.Parameter(type_name=type_name, name=name)

    def _parse_type(self) -> str:
        if self._peek().is_keyword("void"):
            self._advance()
            return "void"
        name = self._expect_ident()
        if self._peek().is_symbol("<"):
            depth = 0
            while True:
                token = self._advance()
                if token.is_symbol("<"):
                    depth += 1
                elif token.is_symbol(">"):
                    depth -= 1
                    if depth == 0:
                        break
                elif token.kind is TokenKind.EOF:
                    raise self._error("unterminated generic type")
        return name

    # -- statements ------------------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        self._expect_symbol("{")
        statements: list[ast.Statement] = []
        while not self._peek().is_symbol("}"):
            statements.append(self._parse_statement())
        self._expect_symbol("}")
        return ast.Block(statements=statements)

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_symbol("{"):
            return self._parse_block()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("for"):
            return self._parse_foreach()
        if token.is_keyword("return"):
            self._advance()
            if self._peek().is_symbol(";"):
                self._advance()
                return ast.ReturnStatement(None)
            expression = self._parse_expression()
            self._expect_symbol(";")
            return ast.ReturnStatement(expression)
        if self._looks_like_declaration():
            return self._parse_var_decl()
        # Assignment or expression statement.
        if (
            token.kind is TokenKind.IDENT
            and self._peek(1).is_symbol("=")
            and not self._peek(2).is_symbol("=")
        ):
            name = self._expect_ident()
            self._expect_symbol("=")
            expression = self._parse_expression()
            self._expect_symbol(";")
            return ast.Assignment(name=name, expression=expression)
        expression = self._parse_expression()
        self._expect_symbol(";")
        return ast.ExpressionStatement(expression)

    def _looks_like_declaration(self) -> bool:
        """A declaration starts with ``Type name`` where Type is an
        identifier optionally followed by a generic argument list."""
        if self._peek().kind is not TokenKind.IDENT:
            return False
        offset = 1
        if self._peek(offset).is_symbol("<"):
            depth = 0
            while True:
                token = self._peek(offset)
                if token.is_symbol("<"):
                    depth += 1
                elif token.is_symbol(">"):
                    depth -= 1
                    if depth == 0:
                        offset += 1
                        break
                elif token.kind is TokenKind.EOF:
                    return False
                offset += 1
        return self._peek(offset).kind is TokenKind.IDENT

    def _parse_var_decl(self) -> ast.VarDecl:
        type_name = self._parse_type()
        name = self._expect_ident()
        initializer: Optional[ast.Expression] = None
        if self._peek().is_symbol("="):
            self._advance()
            initializer = self._parse_expression()
        self._expect_symbol(";")
        return ast.VarDecl(type_name=type_name, name=name, initializer=initializer)

    def _parse_if(self) -> ast.IfStatement:
        self._expect_keyword("if")
        self._expect_symbol("(")
        condition = self._parse_expression()
        self._expect_symbol(")")
        then_branch = self._parse_statement()
        else_branch: Optional[ast.Statement] = None
        if self._peek().is_keyword("else"):
            self._advance()
            else_branch = self._parse_statement()
        return ast.IfStatement(condition, then_branch, else_branch)

    def _parse_foreach(self) -> ast.ForEach:
        self._expect_keyword("for")
        self._expect_symbol("(")
        element_type = self._parse_type()
        name = self._expect_ident()
        self._expect_symbol(":")
        collection = self._parse_expression()
        self._expect_symbol(")")
        body = self._parse_statement()
        return ast.ForEach(
            element_type=element_type, name=name, collection=collection, body=body
        )

    # -- expressions ------------------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._peek().is_symbol("||"):
            self._advance()
            left = ast.Binary("||", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_equality()
        while self._peek().is_symbol("&&"):
            self._advance()
            left = ast.Binary("&&", left, self._parse_equality())
        return left

    def _parse_equality(self) -> ast.Expression:
        left = self._parse_relational()
        while self._peek().is_symbol("==", "!="):
            op = self._advance().text
            left = ast.Binary(op, left, self._parse_relational())
        return left

    def _parse_relational(self) -> ast.Expression:
        left = self._parse_additive()
        while self._peek().is_symbol("<", "<=", ">", ">="):
            op = self._advance().text
            left = ast.Binary(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._peek().is_symbol("+", "-"):
            op = self._advance().text
            left = ast.Binary(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self._peek().is_symbol("*", "/", "%"):
            op = self._advance().text
            left = ast.Binary(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.is_symbol("!"):
            self._advance()
            return ast.Unary("!", self._parse_unary())
        if token.is_symbol("-"):
            self._advance()
            return ast.Unary("-", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_primary()
        while self._peek().is_symbol("."):
            self._advance()
            member = self._expect_ident()
            if self._peek().is_symbol("("):
                arguments = self._parse_arguments()
                if isinstance(expression, ast.Name) and expression.identifier[0].isupper():
                    expression = ast.StaticCall(
                        class_name=expression.identifier,
                        method=member,
                        arguments=arguments,
                    )
                else:
                    expression = ast.MethodCall(
                        receiver=expression, method=member, arguments=arguments
                    )
            else:
                expression = ast.FieldAccess(receiver=expression, field=member)
        return expression

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.Literal(int(token.text))
        if token.kind is TokenKind.DOUBLE:
            self._advance()
            return ast.Literal(float(token.text))
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.is_keyword("true"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("null"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("new"):
            self._advance()
            class_name = self._parse_type()
            arguments = self._parse_arguments()
            return ast.NewObject(class_name=class_name, arguments=arguments)
        if token.is_symbol("("):
            self._advance()
            expression = self._parse_expression()
            self._expect_symbol(")")
            return expression
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.Name(token.text)
        raise self._error(f"unexpected token {token.text!r}")

    def _parse_arguments(self) -> tuple[ast.Expression, ...]:
        self._expect_symbol("(")
        arguments: list[ast.Expression] = []
        if not self._peek().is_symbol(")"):
            arguments.append(self._parse_expression())
            while self._peek().is_symbol(","):
                self._advance()
                arguments.append(self._parse_expression())
        self._expect_symbol(")")
        return tuple(arguments)

    # -- token helpers ---------------------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _expect_symbol(self, symbol: str) -> None:
        token = self._peek()
        if not token.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}, got {token.text!r}")
        self._advance()

    def _expect_keyword(self, keyword: str) -> None:
        token = self._peek()
        if not token.is_keyword(keyword):
            raise self._error(f"expected {keyword!r}, got {token.text!r}")
        self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise self._error(f"expected an identifier, got {token.text!r}")
        self._advance()
        return token.text

    def _error(self, message: str) -> CompileError:
        return CompileError(f"line {self._peek().line}: {message}")
