"""Tokenizer for MiniJava."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import CompileError

KEYWORDS = frozenset(
    {
        "class", "new", "for", "if", "else", "return", "true", "false", "null",
        "while", "void",
    }
)

_TWO_CHAR = {"==", "!=", "<=", ">=", "&&", "||"}
_SINGLE = set("{}()[]<>.,;:+-*/%!=@&|")


class TokenKind(Enum):
    """Lexical categories."""

    IDENT = auto()
    KEYWORD = auto()
    INT = auto()
    DOUBLE = auto()
    STRING = auto()
    SYMBOL = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    """One MiniJava token with its line number (for error messages)."""

    kind: TokenKind
    text: str
    line: int

    def is_symbol(self, *symbols: str) -> bool:
        """True if this token is one of the given symbols."""
        return self.kind is TokenKind.SYMBOL and self.text in symbols

    def is_keyword(self, *keywords: str) -> bool:
        """True if this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.text in keywords


class MiniJavaLexer:
    """Tokenizes MiniJava source text."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._position = 0
        self._line = 1

    def tokenize(self) -> list[Token]:
        """Produce the full token list, ending with EOF."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._position >= len(self._source):
                tokens.append(Token(TokenKind.EOF, "", self._line))
                return tokens
            tokens.append(self._next_token())

    # -- internals ----------------------------------------------------------------

    def _skip_whitespace_and_comments(self) -> None:
        source = self._source
        while self._position < len(source):
            ch = source[self._position]
            if ch == "\n":
                self._line += 1
                self._position += 1
            elif ch.isspace():
                self._position += 1
            elif source.startswith("//", self._position):
                end = source.find("\n", self._position)
                self._position = len(source) if end == -1 else end
            elif source.startswith("/*", self._position):
                end = source.find("*/", self._position + 2)
                if end == -1:
                    raise CompileError(f"line {self._line}: unterminated comment")
                self._line += source.count("\n", self._position, end)
                self._position = end + 2
            else:
                return

    def _next_token(self) -> Token:
        source = self._source
        start = self._position
        ch = source[start]
        line = self._line

        if ch == '"':
            return self._lex_string(line)
        if ch.isdigit():
            return self._lex_number(line)
        if ch.isalpha() or ch == "_":
            position = start
            while position < len(source) and (source[position].isalnum() or source[position] == "_"):
                position += 1
            self._position = position
            text = source[start:position]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return Token(kind, text, line)
        two = source[start : start + 2]
        if two in _TWO_CHAR:
            self._position += 2
            return Token(TokenKind.SYMBOL, two, line)
        if ch in _SINGLE:
            self._position += 1
            return Token(TokenKind.SYMBOL, ch, line)
        raise CompileError(f"line {line}: unexpected character {ch!r}")

    def _lex_string(self, line: int) -> Token:
        source = self._source
        position = self._position + 1
        chars: list[str] = []
        while position < len(source):
            ch = source[position]
            if ch == '"':
                self._position = position + 1
                return Token(TokenKind.STRING, "".join(chars), line)
            if ch == "\\" and position + 1 < len(source):
                escape = source[position + 1]
                chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape, escape))
                position += 2
                continue
            chars.append(ch)
            position += 1
        raise CompileError(f"line {line}: unterminated string literal")

    def _lex_number(self, line: int) -> Token:
        source = self._source
        position = self._position
        seen_dot = False
        while position < len(source):
            ch = source[position]
            if ch.isdigit():
                position += 1
            elif ch == "." and not seen_dot and position + 1 < len(source) and source[position + 1].isdigit():
                seen_dot = True
                position += 1
            else:
                break
        text = source[self._position : position]
        self._position = position
        return Token(TokenKind.DOUBLE if seen_dot else TokenKind.INT, text, line)
