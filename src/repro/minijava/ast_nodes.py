"""AST node definitions for MiniJava."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# -- expressions ---------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """Integer, double, string, boolean or null literal."""

    value: Union[int, float, str, bool, None]


@dataclass(frozen=True)
class Name:
    """A reference to a local variable or parameter."""

    identifier: str


@dataclass(frozen=True)
class MethodCall:
    """``receiver.method(args...)``."""

    receiver: "Expression"
    method: str
    arguments: tuple["Expression", ...] = ()


@dataclass(frozen=True)
class StaticCall:
    """``ClassName.method(args...)`` (e.g. ``Pair.PairCollection(...)``)."""

    class_name: str
    method: str
    arguments: tuple["Expression", ...] = ()


@dataclass(frozen=True)
class FieldAccess:
    """``receiver.field`` (without a call)."""

    receiver: "Expression"
    field: str


@dataclass(frozen=True)
class NewObject:
    """``new ClassName<...>(args...)``."""

    class_name: str
    arguments: tuple["Expression", ...] = ()


@dataclass(frozen=True)
class Binary:
    """Binary operator expression."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Unary:
    """Unary operator expression (``!`` or ``-``)."""

    op: str
    operand: "Expression"


Expression = Union[
    Literal, Name, MethodCall, StaticCall, FieldAccess, NewObject, Binary, Unary
]


# -- statements ------------------------------------------------------------------------


@dataclass
class Block:
    """``{ statements }``."""

    statements: list["Statement"] = field(default_factory=list)


@dataclass
class VarDecl:
    """``Type name = initializer;``."""

    type_name: str
    name: str
    initializer: Optional[Expression] = None


@dataclass
class Assignment:
    """``name = expression;``."""

    name: str
    expression: Expression


@dataclass
class ExpressionStatement:
    """``expression;`` evaluated for its side effects."""

    expression: Expression


@dataclass
class IfStatement:
    """``if (condition) then else otherwise``."""

    condition: Expression
    then_branch: "Statement"
    else_branch: Optional["Statement"] = None


@dataclass
class ForEach:
    """``for (Type name : collection) body``."""

    element_type: str
    name: str
    collection: Expression
    body: "Statement"


@dataclass
class ReturnStatement:
    """``return expression;`` or ``return;``."""

    expression: Optional[Expression] = None


Statement = Union[
    Block, VarDecl, Assignment, ExpressionStatement, IfStatement, ForEach, ReturnStatement
]


# -- declarations ---------------------------------------------------------------------------


@dataclass
class Parameter:
    """One formal parameter."""

    type_name: str
    name: str


@dataclass
class MethodDecl:
    """One method of a class."""

    name: str
    return_type: str
    parameters: list[Parameter]
    body: Block
    annotations: list[str] = field(default_factory=list)


@dataclass
class ClassDecl:
    """A class: a name plus its methods."""

    name: str
    methods: list[MethodDecl] = field(default_factory=list)
