"""Compiler facade: MiniJava source to mini-JVM classfiles."""

from __future__ import annotations

from repro.jvm.classfile import ClassFile
from repro.jvm.verifier import verify_method
from repro.minijava.codegen import MethodCodeGenerator
from repro.minijava.parser import MiniJavaParser
from repro.minijava.semantic import check_class


class MiniJavaCompiler:
    """Compiles MiniJava source text into classfiles."""

    def __init__(self, verify: bool = True) -> None:
        self._verify = verify

    def compile(self, source: str) -> ClassFile:
        """Compile one class declaration."""
        declaration = MiniJavaParser(source).parse_class()
        check_class(declaration)
        classfile = ClassFile(name=declaration.name)
        for method in declaration.methods:
            method_info = MethodCodeGenerator(method).generate()
            if self._verify:
                verify_method(method_info)
            classfile.add_method(method_info)
        return classfile

    def compile_to_bytes(self, source: str) -> bytes:
        """Compile and serialise a class."""
        return self.compile(source).to_bytes()


def compile_source(source: str) -> ClassFile:
    """Convenience wrapper around :class:`MiniJavaCompiler`."""
    return MiniJavaCompiler().compile(source)
