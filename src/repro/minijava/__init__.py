"""MiniJava: a small Java-like language compiled to mini-JVM bytecode.

This plays the role of "Java compiler" in the paper's Fig. 9 pipeline: the
query examples of the paper (Figs. 5-8 and 10) can be written in a syntax
that is essentially Java, compiled to stack bytecode, and then fed to the
Queryll bytecode rewriter.  The language supports exactly what query methods
need: classes with annotated methods, local variables, for-each loops,
if/else, method calls, object construction and the usual operators.
"""

from __future__ import annotations

from repro.minijava.compiler import MiniJavaCompiler, compile_source
from repro.minijava.lexer import MiniJavaLexer
from repro.minijava.parser import MiniJavaParser

__all__ = ["MiniJavaCompiler", "MiniJavaLexer", "MiniJavaParser", "compile_source"]
