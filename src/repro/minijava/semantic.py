"""Light semantic checks for MiniJava.

The paper leans on Java's static type system to catch query mistakes at
compile time; Python cannot reproduce that fully, but this pass catches the
structural errors that would otherwise only surface at run time: duplicate
method or parameter names, duplicate local declarations in the same scope,
use of undeclared variables, and ``return``-less non-void methods.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.minijava import ast_nodes as ast


def check_class(declaration: ast.ClassDecl) -> None:
    """Check a whole class declaration."""
    seen_methods: set[str] = set()
    for method in declaration.methods:
        if method.name in seen_methods:
            raise CompileError(f"duplicate method {method.name!r}")
        seen_methods.add(method.name)
        check_method(method)


def check_method(method: ast.MethodDecl) -> None:
    """Check one method declaration."""
    names = [parameter.name for parameter in method.parameters]
    if len(names) != len(set(names)):
        raise CompileError(f"method {method.name!r} has duplicate parameter names")
    scope = set(names)
    _check_statement(method, method.body, scope)
    if method.return_type != "void" and not _always_returns(method.body):
        raise CompileError(
            f"method {method.name!r} declares return type {method.return_type!r} "
            "but may finish without returning a value"
        )


# -- statements --------------------------------------------------------------------------


def _check_statement(method: ast.MethodDecl, statement: ast.Statement, scope: set[str]) -> None:
    if isinstance(statement, ast.Block):
        inner = set(scope)
        for child in statement.statements:
            _check_statement(method, child, inner)
        return
    if isinstance(statement, ast.VarDecl):
        if statement.name in scope:
            raise CompileError(
                f"variable {statement.name!r} is already declared in method "
                f"{method.name!r}"
            )
        if statement.initializer is not None:
            _check_expression(method, statement.initializer, scope)
        scope.add(statement.name)
        return
    if isinstance(statement, ast.Assignment):
        if statement.name not in scope:
            raise CompileError(
                f"assignment to undeclared variable {statement.name!r} "
                f"in method {method.name!r}"
            )
        _check_expression(method, statement.expression, scope)
        return
    if isinstance(statement, ast.ExpressionStatement):
        _check_expression(method, statement.expression, scope)
        return
    if isinstance(statement, ast.IfStatement):
        _check_expression(method, statement.condition, scope)
        _check_statement(method, statement.then_branch, set(scope))
        if statement.else_branch is not None:
            _check_statement(method, statement.else_branch, set(scope))
        return
    if isinstance(statement, ast.ForEach):
        _check_expression(method, statement.collection, scope)
        inner = set(scope)
        inner.add(statement.name)
        _check_statement(method, statement.body, inner)
        return
    if isinstance(statement, ast.ReturnStatement):
        if statement.expression is not None:
            _check_expression(method, statement.expression, scope)
        return
    raise CompileError(f"unknown statement {statement!r}")


def _check_expression(method: ast.MethodDecl, expression: ast.Expression, scope: set[str]) -> None:
    if isinstance(expression, ast.Literal):
        return
    if isinstance(expression, ast.Name):
        if expression.identifier not in scope and not expression.identifier[0].isupper():
            raise CompileError(
                f"use of undeclared variable {expression.identifier!r} "
                f"in method {method.name!r}"
            )
        return
    if isinstance(expression, ast.MethodCall):
        _check_expression(method, expression.receiver, scope)
        for argument in expression.arguments:
            _check_expression(method, argument, scope)
        return
    if isinstance(expression, ast.StaticCall):
        for argument in expression.arguments:
            _check_expression(method, argument, scope)
        return
    if isinstance(expression, ast.FieldAccess):
        _check_expression(method, expression.receiver, scope)
        return
    if isinstance(expression, ast.NewObject):
        for argument in expression.arguments:
            _check_expression(method, argument, scope)
        return
    if isinstance(expression, ast.Binary):
        _check_expression(method, expression.left, scope)
        _check_expression(method, expression.right, scope)
        return
    if isinstance(expression, ast.Unary):
        _check_expression(method, expression.operand, scope)
        return
    raise CompileError(f"unknown expression {expression!r}")


def _always_returns(statement: ast.Statement) -> bool:
    if isinstance(statement, ast.ReturnStatement):
        return True
    if isinstance(statement, ast.Block):
        return any(_always_returns(child) for child in statement.statements)
    if isinstance(statement, ast.IfStatement):
        return (
            statement.else_branch is not None
            and _always_returns(statement.then_branch)
            and _always_returns(statement.else_branch)
        )
    return False
