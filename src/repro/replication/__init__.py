"""Streaming primary -> replica replication over the wire protocol.

The primary ships raw write-ahead-log frames (the exact bytes on disk —
checksummed, epoch-chained) to followers over a dedicated ``REPLICATE``
protocol stream; each follower replays committed transactions continuously
through the crash-recovery apply path and tracks a replayed-LSN watermark.
An LSN is the pair ``(epoch, offset)`` — offsets restart at zero in every
epoch file, so LSNs compare lexicographically.

Pieces:

* :class:`~repro.replication.tailer.WalTailer` — reads complete frames
  from the primary's log chain at an arbitrary position, following epoch
  rollover (the server's stream loop drives one per replica connection).
* :class:`~repro.replication.apply.ReplicaApplier` — buffers records per
  transaction and applies each COMMIT atomically to an in-memory engine,
  advancing the watermark.
* :class:`~repro.replication.replica.ReplicaServer` — a read-only
  :class:`~repro.server.SqlServer` plus the streaming client thread;
  ``promote()`` turns it into a writable primary after draining.

The client-side half — replica-aware routing, read-your-writes waits and
failover — lives in :class:`repro.netclient.ReplicatedConnectionPool`.
"""

from repro.replication.apply import ReplicaApplier
from repro.replication.replica import ReplicaServer
from repro.replication.tailer import DEFAULT_CHUNK_BYTES, WalTailer
from repro.sqlengine.errors import ReplicationError

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "ReplicaApplier",
    "ReplicaServer",
    "ReplicationError",
    "WalTailer",
]
