"""Tailing the primary's write-ahead log for the replication stream.

A :class:`WalTailer` reads *complete* frames from the log chain starting at
an arbitrary ``(epoch, offset)`` position.  It never decodes records — the
stream ships the on-disk bytes verbatim, checksums and all, so a replica
validates them with the same :func:`~repro.sqlengine.durability.wal.read_frames`
scanner recovery uses.

Rollover: a checkpoint closes the old epoch file (flushing it completely)
*before* creating the next one, so once a higher epoch exists on disk the
old file is final — when a read at the current offset yields no complete
frame and a later epoch exists, the tailer hops to it at offset zero.  A
torn tail on a rolled-over epoch is therefore on-disk corruption and raises
:class:`~repro.sqlengine.errors.ReplicationError`; a torn tail on the live
epoch just means the writer is mid-append and the tailer reports "caught
up".  The open file handle keeps a checkpoint's ``os.remove`` from pulling
the file out from under a slow reader (POSIX unlink semantics).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.sqlengine.durability.recovery import list_wal_epochs, wal_path
from repro.sqlengine.durability.wal import read_frames
from repro.sqlengine.errors import ReplicationError

#: Default upper bound on one stream chunk.  Chunks always end on a frame
#: boundary; a single frame larger than the limit grows it transparently.
DEFAULT_CHUNK_BYTES = 256 * 1024


class WalTailer:
    """A cursor over one database's log chain, yielding raw frame runs."""

    def __init__(self, data_dir: str, epoch: int = 0, offset: int = 0) -> None:
        self.data_dir = data_dir
        if epoch <= 0:
            # (0, 0): start from the oldest frame still on disk.
            epochs = list_wal_epochs(data_dir)
            epoch, offset = (epochs[0], 0) if epochs else (1, 0)
        self.epoch = epoch
        self.offset = offset
        self._handle = None

    def next_chunk(
        self, max_bytes: Optional[int] = None
    ) -> Optional[tuple[int, int, int, bytes]]:
        """The next run of complete frames, as ``(epoch, start, end, data)``.

        Returns None when caught up with the live log.  Follows epoch
        rollover transparently; raises :class:`ReplicationError` when the
        requested epoch was checkpointed away or a closed epoch is torn.
        """
        if max_bytes is None:
            max_bytes = DEFAULT_CHUNK_BYTES
        while True:
            handle = self._open_epoch()
            if handle is None:
                return None
            limit = max_bytes
            while True:
                handle.seek(self.offset)
                data = handle.read(limit)
                consumed = 0
                for _payload, end in read_frames(data):
                    consumed = end
                if consumed:
                    start = self.offset
                    self.offset += consumed
                    return (self.epoch, start, self.offset, data[:consumed])
                if len(data) >= limit:
                    # One frame larger than the read window; widen it.
                    limit *= 2
                    continue
                break
            # No complete frame here: live tail, or the epoch rolled over.
            later = [e for e in list_wal_epochs(self.data_dir) if e > self.epoch]
            if not later:
                return None
            if data:
                raise ReplicationError(
                    f"epoch {self.epoch} rolled over with a torn tail at "
                    f"offset {self.offset} — the log chain is corrupt"
                )
            handle.close()
            self._handle = None
            self.epoch = later[0]
            self.offset = 0

    def _open_epoch(self):
        """The current epoch's file handle; None when not yet created."""
        if self._handle is None:
            path = wal_path(self.data_dir, self.epoch)
            try:
                self._handle = open(path, "rb")
            except FileNotFoundError:
                if any(e > self.epoch for e in list_wal_epochs(self.data_dir)):
                    raise ReplicationError(
                        f"wal epoch {self.epoch} has been checkpointed away; "
                        "the replica is too far behind and must re-bootstrap"
                    ) from None
                return None
        return self._handle

    def close(self) -> None:
        """Release the open file handle."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WalTailer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
