"""Launch replication nodes as standalone processes.

The in-process :class:`~repro.replication.replica.ReplicaServer` is what
the tests use, but an interpreter-based engine shares one GIL across every
in-process node — a read-scaling measurement over in-process replicas
would only measure lock contention.  This module is the subprocess face of
the same components: each invocation starts exactly one node, prints
``PORT <n>`` on stdout once it is accepting connections, and serves until
the process is terminated.

Three node kinds::

    python -m repro.replication.serve primary --data-dir DIR
    python -m repro.replication.serve tpcw-primary --data-dir DIR --scale tiny
    python -m repro.replication.serve replica --primary HOST:PORT

``primary`` serves an existing (or empty) durable database directory;
``tpcw-primary`` first populates the directory with the TPC-W dataset so a
benchmark can spawn a loaded primary in one step; ``replica`` bootstraps
over the REPLICATE stream and serves reads.  Every fault a test can
inject in-process (kill -9, severed stream) works on these processes too.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import Optional


def _address(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    return (host, int(port))


def _durability(fsync: str):
    from repro.sqlengine.durability import DurabilityOptions

    # No automatic checkpoints: replicas bootstrap from the log alone, and
    # a checkpoint would truncate the history they need.
    return DurabilityOptions(fsync=fsync, checkpoint_log_bytes=None)


def _announce(address: tuple[str, int]) -> None:
    """The machine-readable readiness line the spawner waits for."""
    print(f"PORT {address[1]}", flush=True)


def _serve_forever() -> None:
    # All the work happens on the server's own threads; park the main
    # thread until SIGTERM/SIGINT tears the process down.
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass


def _run_primary(args: argparse.Namespace) -> int:
    from repro.server.server import SqlServer
    from repro.sqlengine.engine import Database

    database = Database(
        data_dir=args.data_dir, durability=_durability(args.fsync)
    )
    server = SqlServer(
        database=database,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        replication_chunk_bytes=args.chunk_bytes,
    ).start()
    _announce(server.address)
    _serve_forever()
    server.kill()
    database.close()
    return 0


def _run_tpcw_primary(args: argparse.Namespace) -> int:
    from repro.server.server import SqlServer
    from repro.tpcw.database import build_database
    from repro.tpcw.population import PopulationScale

    scales = {
        "tiny": PopulationScale.tiny,
        "default": PopulationScale,
        "paper": PopulationScale.paper,
    }
    tpcw = build_database(
        scales[args.scale](),
        data_dir=args.data_dir,
        durability=_durability(args.fsync),
    )
    server = SqlServer(
        database=tpcw.database,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        replication_chunk_bytes=args.chunk_bytes,
    ).start()
    _announce(server.address)
    _serve_forever()
    server.kill()
    tpcw.close()
    return 0


def _run_replica(args: argparse.Namespace) -> int:
    from repro.replication.replica import ReplicaServer

    replica = ReplicaServer(
        args.primary,
        host=args.host,
        port=args.port,
        name=args.name,
        max_connections=args.max_connections,
    ).start()
    _announce(replica.address)
    _serve_forever()
    replica.kill()
    return 0


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--max-connections", type=int, default=128)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.replication.serve", description=__doc__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    primary = commands.add_parser(
        "primary", help="serve a durable database directory"
    )
    primary.add_argument("--data-dir", required=True)
    primary.add_argument("--fsync", default="off", choices=["off", "group", "always"])
    primary.add_argument("--chunk-bytes", type=int, default=None)
    _common(primary)
    primary.set_defaults(run=_run_primary)

    tpcw = commands.add_parser(
        "tpcw-primary", help="populate a TPC-W dataset, then serve it"
    )
    tpcw.add_argument("--data-dir", required=True)
    tpcw.add_argument("--scale", default="tiny", choices=["tiny", "default", "paper"])
    tpcw.add_argument("--fsync", default="off", choices=["off", "group", "always"])
    tpcw.add_argument("--chunk-bytes", type=int, default=None)
    _common(tpcw)
    tpcw.set_defaults(run=_run_tpcw_primary)

    replica = commands.add_parser(
        "replica", help="follow a primary's REPLICATE stream, serve reads"
    )
    replica.add_argument("--primary", type=_address, required=True)
    replica.add_argument("--name", default="replica")
    _common(replica)
    replica.set_defaults(run=_run_replica)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    raise SystemExit(main())
