"""Launch replication nodes as standalone processes.

The in-process :class:`~repro.replication.replica.ReplicaServer` is what
the tests use, but an interpreter-based engine shares one GIL across every
in-process node — a read-scaling measurement over in-process replicas
would only measure lock contention.  This module is the subprocess face of
the same components: each invocation starts exactly one node, prints
``PORT <n>`` on stdout once it is accepting connections, and serves until
the process is terminated.

Four node kinds::

    python -m repro.replication.serve primary --data-dir DIR
    python -m repro.replication.serve tpcw-primary --data-dir DIR --scale tiny
    python -m repro.replication.serve replica --primary HOST:PORT
    python -m repro.replication.serve coordinator \
        --shard HOST:PORT[,HOST:PORT...] --shard ... --table item=i_id

``primary`` serves an existing (or empty) durable database directory;
``tpcw-primary`` first populates the directory with the TPC-W dataset so a
benchmark can spawn a loaded primary in one step; ``replica`` bootstraps
over the REPLICATE stream and serves reads; ``coordinator`` fronts a fleet
of shard processes with a :class:`~repro.sharding.ShardedDatabase` —
each ``--shard`` names one shard's primary (and optionally its replicas,
comma-separated), each ``--table`` declares a hash-partitioned table, and
``--data-dir`` keeps the two-phase-commit decision journal.  Every fault a
test can inject in-process (kill -9, severed stream) works on these
processes too.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import Optional


def _address(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    return (host, int(port))


def _durability(fsync: str):
    from repro.sqlengine.durability import DurabilityOptions

    # No automatic checkpoints: replicas bootstrap from the log alone, and
    # a checkpoint would truncate the history they need.
    return DurabilityOptions(fsync=fsync, checkpoint_log_bytes=None)


def _announce(address: tuple[str, int]) -> None:
    """The machine-readable readiness line the spawner waits for."""
    print(f"PORT {address[1]}", flush=True)


def _maybe_metrics(args: argparse.Namespace, render):
    """Start the Prometheus scrape endpoint when ``--metrics-port`` asks
    for one; announce its port the same way the SQL port is announced."""
    if args.metrics_port is None:
        return None
    from repro.obs.metrics import start_metrics_http_server

    server = start_metrics_http_server(
        render, host=args.host, port=args.metrics_port
    )
    print(f"METRICS_PORT {server.server_address[1]}", flush=True)
    return server


def _serve_forever() -> None:
    # All the work happens on the server's own threads; park the main
    # thread until SIGTERM/SIGINT tears the process down.
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass


def _run_primary(args: argparse.Namespace) -> int:
    from repro.server.server import SqlServer
    from repro.sqlengine.engine import Database

    database = Database(
        data_dir=args.data_dir, durability=_durability(args.fsync)
    )
    server = SqlServer(
        database=database,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        replication_chunk_bytes=args.chunk_bytes,
    ).start()
    _announce(server.address)
    metrics = _maybe_metrics(args, database.render_metrics)
    _serve_forever()
    if metrics is not None:
        metrics.shutdown()
    server.kill()
    database.close()
    return 0


def _run_tpcw_primary(args: argparse.Namespace) -> int:
    from repro.server.server import SqlServer
    from repro.tpcw.database import build_database
    from repro.tpcw.population import PopulationScale

    scales = {
        "tiny": PopulationScale.tiny,
        "default": PopulationScale,
        "paper": PopulationScale.paper,
    }
    tpcw = build_database(
        scales[args.scale](),
        data_dir=args.data_dir,
        durability=_durability(args.fsync),
    )
    server = SqlServer(
        database=tpcw.database,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        replication_chunk_bytes=args.chunk_bytes,
    ).start()
    _announce(server.address)
    metrics = _maybe_metrics(args, tpcw.database.render_metrics)
    _serve_forever()
    if metrics is not None:
        metrics.shutdown()
    server.kill()
    tpcw.close()
    return 0


def _run_replica(args: argparse.Namespace) -> int:
    from repro.replication.replica import ReplicaServer

    replica = ReplicaServer(
        args.primary,
        host=args.host,
        port=args.port,
        name=args.name,
        max_connections=args.max_connections,
    ).start()
    _announce(replica.address)
    metrics = _maybe_metrics(args, replica.database.render_metrics)
    _serve_forever()
    if metrics is not None:
        metrics.shutdown()
    replica.kill()
    return 0


def _shard_spec(text: str) -> list[tuple[str, int]]:
    """One shard: ``primary[,replica...]`` as HOST:PORT addresses."""
    return [_address(part) for part in text.split(",") if part]


def _table_spec(text: str) -> tuple[str, str]:
    table, sep, key = text.partition("=")
    if not sep or not table or not key:
        raise argparse.ArgumentTypeError(
            f"expected TABLE=PARTITION_KEY, got {text!r}"
        )
    return (table, key)


def _run_coordinator(args: argparse.Namespace) -> int:
    from repro.netclient.pool import ConnectionPool, ReplicatedConnectionPool
    from repro.server.server import SqlServer
    from repro.sharding import ShardMap, ShardedDatabase

    pools = []
    for spec in args.shard:
        primary, replicas = spec[0], spec[1:]
        if replicas:
            pools.append(ReplicatedConnectionPool(primary, replicas))
        else:
            pools.append(
                ConnectionPool(primary[0], primary[1], max_size=args.pool_size)
            )
    shard_map = ShardMap(
        version=args.map_version,
        num_shards=len(pools),
        tables=dict(args.table or ()),
    )
    coordinator = ShardedDatabase(
        shard_map, pools, data_dir=args.data_dir, name=args.name
    )
    server = SqlServer(
        database=coordinator,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
    ).start()
    _announce(server.address)
    metrics = _maybe_metrics(args, coordinator.render_metrics)
    _serve_forever()
    if metrics is not None:
        metrics.shutdown()
    server.kill()
    coordinator.close()
    return 0


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--max-connections", type=int, default=128)
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus metrics over HTTP (0 picks a free port, "
        "announced as 'METRICS_PORT <n>')",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.replication.serve", description=__doc__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    primary = commands.add_parser(
        "primary", help="serve a durable database directory"
    )
    primary.add_argument("--data-dir", required=True)
    primary.add_argument("--fsync", default="off", choices=["off", "group", "always"])
    primary.add_argument("--chunk-bytes", type=int, default=None)
    _common(primary)
    primary.set_defaults(run=_run_primary)

    tpcw = commands.add_parser(
        "tpcw-primary", help="populate a TPC-W dataset, then serve it"
    )
    tpcw.add_argument("--data-dir", required=True)
    tpcw.add_argument("--scale", default="tiny", choices=["tiny", "default", "paper"])
    tpcw.add_argument("--fsync", default="off", choices=["off", "group", "always"])
    tpcw.add_argument("--chunk-bytes", type=int, default=None)
    _common(tpcw)
    tpcw.set_defaults(run=_run_tpcw_primary)

    replica = commands.add_parser(
        "replica", help="follow a primary's REPLICATE stream, serve reads"
    )
    replica.add_argument("--primary", type=_address, required=True)
    replica.add_argument("--name", default="replica")
    _common(replica)
    replica.set_defaults(run=_run_replica)

    coordinator = commands.add_parser(
        "coordinator", help="route a sharded fleet behind one wire endpoint"
    )
    coordinator.add_argument(
        "--shard",
        type=_shard_spec,
        action="append",
        required=True,
        metavar="PRIMARY[,REPLICA...]",
        help="one shard's primary (and optional replicas), repeatable",
    )
    coordinator.add_argument(
        "--table",
        type=_table_spec,
        action="append",
        metavar="TABLE=KEY",
        help="hash-partitioned table and its partition key, repeatable",
    )
    coordinator.add_argument("--data-dir", default=None)
    coordinator.add_argument("--map-version", type=int, default=1)
    coordinator.add_argument("--pool-size", type=int, default=8)
    coordinator.add_argument("--name", default="coordinator")
    _common(coordinator)
    coordinator.set_defaults(run=_run_coordinator)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    raise SystemExit(main())
