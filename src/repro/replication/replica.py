"""A follower node: read-only SQL server + the WAL streaming client.

A :class:`ReplicaServer` owns an in-memory engine, a
:class:`~repro.replication.apply.ReplicaApplier` and a read-only
:class:`~repro.server.SqlServer`, plus one background thread that keeps a
``REPLICATE`` stream open to the primary.  The stream is one-way: after
the handshake the replica only receives, so instead of the blocking
file-object reader the request/response client uses, the thread runs its
own recv loop with a short socket timeout — it notices a stop request (or
a promotion) within one tick while still draining every complete frame
the primary managed to send before dying.

Promotion (:meth:`promote`) is the failover path: stop reconnecting, let
the stream thread drain whatever the socket still holds, discard
transactions whose COMMIT never arrived (exactly recovery's torn-tail
rule), then flip the server writable.  The node then *is* a primary — in
memory only, like any freshly promoted cache of the log — and the routing
pool re-points writes at it.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Optional
from zlib import crc32

from repro.errors import SqlError
from repro.replication.apply import ReplicaApplier
from repro.server import protocol
from repro.server.server import SqlServer
from repro.sqlengine.durability.snapshot import parse_snapshot
from repro.sqlengine.engine import Database
from repro.sqlengine.errors import ReplicationError

_U32 = struct.Struct("<I")


class _FrameBuffer:
    """Incremental parser for the length-prefixed checksummed framing."""

    def __init__(self) -> None:
        self._data = bytearray()

    def feed(self, data: bytes) -> None:
        self._data.extend(data)

    def next_payload(self) -> Optional[bytes]:
        """One complete frame payload, or None until more bytes arrive."""
        buffer = self._data
        if len(buffer) < 4:
            return None
        (length,) = _U32.unpack_from(buffer, 0)
        if length > protocol.MAX_MESSAGE:
            raise protocol.ProtocolError(
                f"frame of {length} bytes exceeds the protocol maximum"
            )
        total = 4 + length + 4
        if len(buffer) < total:
            return None
        payload = bytes(buffer[4:4 + length])
        (expected,) = _U32.unpack_from(buffer, 4 + length)
        if crc32(payload) != expected:
            raise protocol.ProtocolError("frame checksum mismatch")
        del buffer[:total]
        return payload


class ReplicaServer:
    """One follower: in-memory engine, read-only server, stream thread."""

    def __init__(
        self,
        primary_address: tuple[str, int],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str = "replica",
        max_connections: int = 64,
        reconnect: bool = True,
        reconnect_delay: float = 0.05,
    ) -> None:
        self.primary_address = (primary_address[0], int(primary_address[1]))
        self.name = name
        self.database = Database()
        self.applier = ReplicaApplier(self.database)
        self.server = SqlServer(
            database=self.database,
            host=host,
            port=port,
            max_connections=max_connections,
            read_only=True,
            banner=f"repro-replica/{name}",
        )
        self.server.replica = self
        self.reconnect = reconnect
        self.reconnect_delay = reconnect_delay
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._sock_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._role = "replica"
        #: Stream reconnect attempts after the initial connection.
        self.reconnects = 0
        #: Stream attempts that ended in a transport or protocol error.
        self.stream_errors = 0
        #: WAL chunks / raw bytes received over the stream's lifetime.
        self.chunks_received = 0
        self.bytes_received = 0
        #: Snapshot bootstraps completed and their streamed byte volume.
        self.snapshots_bootstrapped = 0
        self.snapshot_bytes_received = 0
        self.last_error: Optional[str] = None
        #: The primary's end-of-log position at the last stream handshake.
        self.primary_position = (0, 0)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ReplicaServer":
        """Start the SQL server and the streaming thread."""
        self.server.start()
        self._thread = threading.Thread(
            target=self._stream_loop, name=f"replica-stream-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The read endpoint clients connect to."""
        return self.server.address

    @property
    def role(self) -> str:
        """``"replica"`` until :meth:`promote`, then ``"primary"``."""
        return self._role

    @property
    def watermark(self) -> tuple[int, int]:
        """The replayed-LSN watermark."""
        return self.applier.watermark

    def wait_for(self, lsn: tuple[int, int], timeout: float) -> bool:
        """Block until the watermark reaches ``lsn``; False on timeout."""
        return self.applier.wait_for(lsn, timeout)

    def promote(
        self, drain_timeout: float = 5.0, data_dir: Optional[str] = None
    ) -> None:
        """Turn this replica into a writable primary.

        Stops the stream after draining every complete frame already
        received, discards transactions without a COMMIT (the committed-
        prefix rule) and clears the server's read-only flag.  Idempotent.

        With ``data_dir`` the promoted engine becomes durable there first
        (empty-directory checkpoint + fresh write-ahead log), so the new
        primary's committed prefix survives its own crashes.  Prepared
        (in-doubt) two-phase-commit batches from the stream are adopted
        either way — re-logged when durable — so the coordinator's retried
        decision still lands on this node.
        """
        if self._role == "primary":
            return
        self.reconnect = False
        self._stop_stream(drain_timeout)
        self.applier.discard_pending()
        if data_dir is not None:
            self.database.make_durable(data_dir)
        # Adopt AFTER make_durable: adoption re-logs each batch into the
        # fresh log, where the empty-directory checkpoint cannot strand it.
        for gid, records in self.applier.take_prepared().items():
            self.database.adopt_recovered_prepared(gid, records)
        self._role = "primary"
        self.server.read_only = False

    def shutdown(self) -> None:
        """Graceful stop: stream first, then the server drain."""
        self._stop_stream(1.0)
        self.server.shutdown()

    def kill(self) -> None:
        """Crash-style stop for fault-injection tests."""
        self._stop.set()
        self._close_stream_socket()
        self.server.kill()

    def _stop_stream(self, drain_timeout: float) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(drain_timeout)
            if thread.is_alive():
                self._close_stream_socket()
                thread.join(drain_timeout)

    def _close_stream_socket(self) -> None:
        with self._sock_lock:
            sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ReplicaServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- the stream thread ---------------------------------------------------

    def _stream_loop(self) -> None:
        first = True
        while not self._stop.is_set():
            if not first:
                if not self.reconnect:
                    return
                self.reconnects += 1
                if self._stop.wait(self.reconnect_delay):
                    return
            first = False
            try:
                self._stream_once()
            except ReplicationError as error:
                # Unrecoverable from this position (epoch checkpointed
                # away, corrupt chain): reconnecting would fail forever.
                self.stream_errors += 1
                self.last_error = str(error)
                return
            except (OSError, SqlError, EOFError) as error:
                self.stream_errors += 1
                self.last_error = str(error)

    def _stream_once(self) -> None:
        sock = socket.create_connection(self.primary_address, timeout=10.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._sock_lock:
            if self._stop.is_set():
                sock.close()
                return
            self._sock = sock
        try:
            sock.settimeout(0.2)
            buffer = _FrameBuffer()
            sock.sendall(
                protocol.frame(
                    protocol.encode_hello(client_name=f"replica-stream/{self.name}")
                )
            )
            reply = self._next_message(sock, buffer)
            if reply is None:
                raise EOFError("primary closed during the stream handshake")
            if reply.op == protocol.ERROR:
                protocol.raise_remote_error(reply.error_class, reply.message)
            epoch, offset = self.applier.watermark
            if (epoch, offset) == (0, 0):
                # Fresh replica: pull the primary's snapshot (if any) before
                # tailing the log, so attaching after checkpoints works.
                epoch, offset = self._bootstrap(sock, buffer)
            sock.sendall(
                protocol.frame(protocol.encode_replicate(epoch, offset, self.name))
            )
            while True:
                message = self._next_message(sock, buffer)
                if message is None:
                    return  # primary went away, or stop requested and drained
                if message.op == protocol.ERROR:
                    protocol.raise_remote_error(message.error_class, message.message)
                elif message.op == protocol.LSN:
                    self.primary_position = message.lsn
                elif message.op == protocol.WAL_CHUNK:
                    self.applier.apply_chunk(
                        message.lsn[0],
                        message.chunk_start,
                        message.lsn[1],
                        message.chunk,
                    )
                    self.chunks_received += 1
                    self.bytes_received += len(message.chunk)
        finally:
            with self._sock_lock:
                self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    def _bootstrap(self, sock, buffer: _FrameBuffer) -> tuple[int, int]:
        """Ask the primary for its snapshot; returns the replication start.

        Collects SNAPSHOT_CHUNK frames until the terminating LSN, installs
        the decoded snapshot into the (empty) engine and advances the
        watermark to the position the snapshot covers.  A bare LSN
        ``(0, 0)`` with no chunks means the primary has no snapshot yet and
        log replication starts from the beginning.
        """
        sock.sendall(protocol.frame(protocol.encode_simple(protocol.BOOTSTRAP)))
        chunks: list[bytes] = []
        while True:
            message = self._next_message(sock, buffer)
            if message is None:
                raise EOFError("primary closed during the bootstrap stream")
            if message.op == protocol.ERROR:
                protocol.raise_remote_error(message.error_class, message.message)
            if message.op == protocol.SNAPSHOT_CHUNK:
                chunks.append(message.chunk)
                self.snapshot_bytes_received += len(message.chunk)
                continue
            if message.op == protocol.LSN:
                position = message.lsn
                break
            raise protocol.ProtocolError(
                f"unexpected {message.op_name} frame in a bootstrap stream"
            )
        if not chunks and position == (0, 0):
            return (0, 0)
        snapshot = parse_snapshot(b"".join(chunks), source="bootstrap stream")
        database = self.database
        with database._mvcc.exclusive():
            for schema in snapshot.schemas:
                if not database.catalog.has_table(schema.name):
                    database.catalog.create_table(schema)
            database._tables.update(snapshot.tables)
            for data in snapshot.tables.values():
                data.attach_mvcc(database._mvcc)
            database._invalidate_cache()
        self.applier.advance_watermark(position)
        self.snapshots_bootstrapped += 1
        return position

    def _next_message(self, sock, buffer: _FrameBuffer):
        """The next decoded server message; None on EOF, or after a stop
        request once every frame already received has been drained (so a
        promotion applies the full committed prefix the primary shipped).
        A recv timeout just re-checks the stop flag."""
        while True:
            payload = buffer.next_payload()
            if payload is not None:
                return protocol.decode_server_message(payload)
            if self._stop.is_set():
                # Drain: pull whatever the kernel already buffered without
                # blocking, hand back any complete frame, then finish.
                try:
                    sock.settimeout(0.0)
                    while True:
                        data = sock.recv(1 << 16)
                        if not data:
                            break
                        buffer.feed(data)
                except OSError:
                    pass
                payload = buffer.next_payload()
                if payload is not None:
                    return protocol.decode_server_message(payload)
                return None
            try:
                data = sock.recv(1 << 16)
            except socket.timeout:
                continue
            if not data:
                return None
            buffer.feed(data)

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """The SERVER_STATS ``replication`` section for this node."""
        with self._sock_lock:
            connected = self._sock is not None
        stats = {
            "role": self._role,
            "name": self.name,
            "primary": list(self.primary_address),
            "connected": connected,
            "reconnects": self.reconnects,
            "stream_errors": self.stream_errors,
            "chunks_received": self.chunks_received,
            "bytes_received": self.bytes_received,
            "snapshots_bootstrapped": self.snapshots_bootstrapped,
            "snapshot_bytes_received": self.snapshot_bytes_received,
            "primary_position": list(self.primary_position),
        }
        if self.last_error:
            stats["last_error"] = self.last_error
        stats.update(self.applier.stats())
        return stats
