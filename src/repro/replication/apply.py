"""Continuous replay of shipped WAL chunks into a replica's engine.

The applier is the streaming twin of crash recovery's per-epoch replay:
row records are buffered per transaction and applied only when that
transaction's COMMIT frame arrives, so the replica's tables always hold
exactly a committed prefix of the primary's history — whatever instant the
stream is cut.  Unlike recovery (which runs on a cold engine) the replica
is serving reads while applying, so each commit is installed under the
MVCC exclusive gate: in-flight read statements drain first, and a commit's
rows become visible atomically.  Replicas have no local write
transactions, so the raw (unversioned) ``TableData`` operations recovery
uses are safe here too — applied rows carry no version chains and take the
reader fast path.
"""

from __future__ import annotations

import threading
import time

from repro.sqlengine.durability import wal
from repro.sqlengine.durability.recovery import _apply, _apply_ddl


class ReplicaApplier:
    """Applies raw WAL chunks to one in-memory Database, tracking an LSN
    watermark ``(epoch, offset)`` that advances after each whole chunk
    (chunks end on frame boundaries, so the watermark is always a valid
    position to resume streaming from)."""

    def __init__(self, database) -> None:
        self._database = database
        self._pending: dict[int, list[wal.WalRecord]] = {}
        #: Two-phase commit: prepared batches keyed by gid.  Unlike
        #: ``_pending`` these ARE durable on the primary (a PREPARE frame is
        #: synced before the coordinator proceeds), so a promotion must not
        #: drop them — it adopts them into the engine so the coordinator's
        #: retried decision still lands.
        self._prepared: dict[str, list[wal.WalRecord]] = {}
        self._watermark_cond = threading.Condition()
        self._watermark = (0, 0)
        #: Committed transactions applied (replica-side observability).
        self.transactions_applied = 0
        #: Row records applied inside those transactions.
        self.records_applied = 0
        #: DDL statements applied.
        self.ddl_applied = 0
        #: Transactions discarded by an ABORT frame.
        self.transactions_discarded = 0

    @property
    def watermark(self) -> tuple[int, int]:
        """The replayed-LSN watermark."""
        with self._watermark_cond:
            return self._watermark

    @property
    def pending_transactions(self) -> int:
        """Transactions seen but not yet committed or aborted."""
        return len(self._pending)

    @property
    def prepared_transactions(self) -> int:
        """Prepared (in-doubt) batches awaiting a coordinator decision."""
        return len(self._prepared)

    def take_prepared(self) -> dict[str, list[wal.WalRecord]]:
        """Hand the prepared batches to a promotion (clears the buffer)."""
        prepared = self._prepared
        self._prepared = {}
        return prepared

    def apply_chunk(self, epoch: int, start: int, end: int, data: bytes) -> None:
        """Replay one shipped chunk and advance the watermark to its end."""
        for payload, _end in wal.read_frames(data):
            self._apply_record(wal.decode_record(payload))
        with self._watermark_cond:
            if (epoch, end) > self._watermark:
                self._watermark = (epoch, end)
                self._watermark_cond.notify_all()

    def advance_watermark(self, lsn: tuple[int, int]) -> None:
        """Jump the watermark forward (snapshot bootstrap: the installed
        image already covers everything below ``lsn``)."""
        with self._watermark_cond:
            if lsn > self._watermark:
                self._watermark = lsn
                self._watermark_cond.notify_all()

    def wait_for(self, lsn: tuple[int, int], timeout: float) -> bool:
        """Block until the watermark reaches ``lsn``; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._watermark_cond:
            while self._watermark < lsn:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._watermark_cond.wait(remaining)
            return True

    def discard_pending(self) -> int:
        """Drop in-flight transaction buffers (promotion: an uncommitted
        suffix must vanish exactly like recovery discards it)."""
        dropped = len(self._pending)
        self._pending.clear()
        return dropped

    # -- record dispatch -----------------------------------------------------

    def _apply_record(self, record: wal.WalRecord) -> None:
        kind = record.kind
        if kind == wal.BEGIN:
            self._pending[record.txn] = []
        elif kind in (wal.INSERT, wal.UPDATE, wal.DELETE):
            self._pending.setdefault(record.txn, []).append(record)
        elif kind == wal.COMMIT:
            operations = self._pending.pop(record.txn, [])
            self._apply_transaction(operations)
        elif kind == wal.ABORT:
            if self._pending.pop(record.txn, None) is not None:
                self.transactions_discarded += 1
        elif kind == wal.PREPARE:
            self._prepared[record.gid] = self._pending.pop(record.txn, [])
        elif kind == wal.COMMIT_PREPARED:
            operations = self._prepared.pop(record.gid, None)
            if operations is not None:
                self._apply_transaction(operations)
        elif kind == wal.ABORT_PREPARED:
            if self._prepared.pop(record.gid, None) is not None:
                self.transactions_discarded += 1
        elif kind == wal.DDL:
            self._apply_ddl(record.payload or {})
        # CHECKPOINT markers only label the epoch.

    def _apply_transaction(self, operations: list[wal.WalRecord]) -> None:
        database = self._database
        with database._mvcc.exclusive():
            for operation in operations:
                _apply(operation, database._tables)
        self.records_applied += len(operations)
        self.transactions_applied += 1

    def _apply_ddl(self, payload: dict) -> None:
        database = self._database
        with database._mvcc.exclusive():
            _apply_ddl(payload, database.catalog, database._tables)
            if payload.get("kind") == "create_table":
                # Recovery leaves new tables unversioned (the cold path);
                # a live replica must wire them into its MVCC controller.
                name = payload["schema"]["name"].lower()
                data = database._tables.get(name)
                if data is not None:
                    data.attach_mvcc(database._mvcc)
            database._invalidate_cache()
        self.ddl_applied += 1

    def stats(self) -> dict[str, object]:
        """Counters for SERVER_STATS and tests."""
        return {
            "watermark": list(self.watermark),
            "transactions_applied": self.transactions_applied,
            "records_applied": self.records_applied,
            "ddl_applied": self.ddl_applied,
            "transactions_discarded": self.transactions_discarded,
            "pending_transactions": self.pending_transactions,
            "prepared_transactions": self.prepared_transactions,
        }
