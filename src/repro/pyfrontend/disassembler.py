"""Lowering of CPython bytecode into Queryll three-address code.

The lowering performs abstract interpretation of the operand stack (the same
job Soot's Jimple conversion does for Java bytecode, see
:mod:`repro.jvm.stack_to_tac` for the mini-JVM equivalent): each CPython
instruction either pushes a symbolic expression, pops operands to build a
bigger expression, or emits a three-address instruction.

For-loops are normalised into the Java iterator shape the analysis expects::

    GET_ITER            ->  $itN = <collection>.iterator()
    FOR_ITER <exit>     ->  $hasN = $itN.hasNext()
                            if ($hasN == 0) goto <exit>
                            $elemN = $itN.next()

Only the bytecode subset produced by straightforward query functions is
supported; anything else raises :class:`UnsupportedQueryError`, and the
``@query`` decorator falls back to executing the original function (which is
always semantically correct, as the paper requires).
"""

from __future__ import annotations

import dis
import sys
from dataclasses import dataclass
from types import FunctionType
from typing import Optional

from repro.core.expr import nodes
from repro.core.tac.instructions import (
    Assign,
    ExprStatement,
    Goto,
    IfGoto,
    Return,
)
from repro.core.tac.method import TacMethod
from repro.errors import UnsupportedQueryError

_SUPPORTED_CONSTANT_TYPES = (int, float, str, bool, type(None))

_BINARY_OP_NAMES = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
    "//": "/",
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
}

_COMPARISON_NAMES = {"==", "!=", "<", "<=", ">", ">="}


@dataclass
class _MethodRef:
    """Marker for a bound method pushed by LOAD_METHOD."""

    receiver: nodes.Expression
    name: str


class _NullMarker:
    """Marker for the NULL pushed by PUSH_NULL."""


class PythonBytecodeLowering:
    """Lowers one Python function's bytecode to a :class:`TacMethod`."""

    def __init__(self, function: FunctionType) -> None:
        self._function = function
        self._code = function.__code__
        self._instructions: list = []  # TAC instructions
        self._stack: list[object] = []
        self._tac_index_at_offset: dict[int, int] = {}
        self._pending_stacks: dict[int, list[object]] = {}
        self._temp_counter = 0

    # -- public API ------------------------------------------------------------------

    def lower(self) -> TacMethod:
        """Lower the function to three-address code."""
        code = self._code
        parameters = list(code.co_varnames[: code.co_argcount + code.co_kwonlyargcount])
        bytecode = list(dis.get_instructions(self._function))
        previous_falls_through = True
        for instruction in bytecode:
            offset = instruction.offset
            self._tac_index_at_offset[offset] = len(self._instructions)
            if instruction.is_jump_target and not previous_falls_through:
                if offset in self._pending_stacks:
                    self._stack = list(self._pending_stacks[offset])
                else:
                    self._stack = []
            previous_falls_through = self._lower_instruction(instruction)

        method = TacMethod(
            name=self._function.__name__,
            parameters=parameters,
            instructions=self._instructions,
            source_name=f"{self._function.__module__}.{self._function.__qualname__}",
        )
        self._resolve_jump_targets(method)
        method.validate()
        return method

    # -- instruction dispatch ------------------------------------------------------------

    def _lower_instruction(self, instruction: dis.Instruction) -> bool:
        """Lower one bytecode instruction.  Returns whether control can fall
        through to the next instruction."""
        name = instruction.opname
        handler = getattr(self, f"_op_{name.lower()}", None)
        if handler is None:
            raise UnsupportedQueryError(
                f"unsupported Python bytecode instruction {name} "
                f"in {self._function.__qualname__}"
            )
        result = handler(instruction)
        return True if result is None else bool(result)

    # -- stack helpers ----------------------------------------------------------------------

    def _push(self, value: object) -> None:
        self._stack.append(value)

    def _pop(self) -> object:
        if not self._stack:
            raise UnsupportedQueryError("operand stack underflow during lowering")
        return self._stack.pop()

    def _pop_expression(self) -> nodes.Expression:
        value = self._pop()
        if isinstance(value, (_MethodRef, _NullMarker)):
            raise UnsupportedQueryError("unexpected method/null marker on the stack")
        return value  # type: ignore[return-value]

    def _new_temp(self, prefix: str) -> str:
        self._temp_counter += 1
        return f"${prefix}{self._temp_counter}"

    def _emit(self, instruction) -> None:
        self._instructions.append(instruction)

    def _remember_branch_stack(self, target_offset: int) -> None:
        existing = self._pending_stacks.get(target_offset)
        if existing is None:
            self._pending_stacks[target_offset] = list(self._stack)
        elif len(existing) != len(self._stack):
            raise UnsupportedQueryError(
                "inconsistent stack depth at a branch target during lowering"
            )

    def _resolve_jump_targets(self, method: TacMethod) -> None:
        end = len(method.instructions)
        for instruction in method.instructions:
            if isinstance(instruction, (Goto, IfGoto)):
                offset = instruction.target
                if offset in self._tac_index_at_offset:
                    instruction.target = self._tac_index_at_offset[offset]
                else:
                    instruction.target = end

    # -- no-ops -----------------------------------------------------------------------------------

    def _op_resume(self, instruction: dis.Instruction) -> None:
        return None

    def _op_nop(self, instruction: dis.Instruction) -> None:
        return None

    def _op_cache(self, instruction: dis.Instruction) -> None:
        return None

    def _op_precall(self, instruction: dis.Instruction) -> None:
        return None

    def _op_push_null(self, instruction: dis.Instruction) -> None:
        self._push(_NullMarker())

    def _op_copy_free_vars(self, instruction: dis.Instruction) -> None:
        return None

    def _op_make_cell(self, instruction: dis.Instruction) -> None:
        return None

    # -- loads and stores ----------------------------------------------------------------------------

    def _op_load_const(self, instruction: dis.Instruction) -> None:
        value = instruction.argval
        if not isinstance(value, _SUPPORTED_CONSTANT_TYPES):
            raise UnsupportedQueryError(
                f"unsupported constant {value!r} in a query function"
            )
        self._push(nodes.Constant(value))

    def _op_load_fast(self, instruction: dis.Instruction) -> None:
        self._push(nodes.Var(str(instruction.argval)))

    # 3.13 variants
    _op_load_fast_borrow = _op_load_fast
    _op_load_fast_check = _op_load_fast

    def _op_load_global(self, instruction: dis.Instruction) -> None:
        self._push(nodes.Var(str(instruction.argval)))

    def _op_load_deref(self, instruction: dis.Instruction) -> None:
        self._push(nodes.Var(str(instruction.argval)))

    def _op_store_fast(self, instruction: dis.Instruction) -> None:
        value = self._pop_expression()
        self._emit(Assign(str(instruction.argval), value))

    def _op_load_attr(self, instruction: dis.Instruction) -> None:
        receiver = self._pop_expression()
        name = str(instruction.argval)
        if sys.version_info >= (3, 12) and instruction.arg is not None and instruction.arg & 1:
            # In 3.12+ LOAD_ATTR with the low bit set replaces LOAD_METHOD.
            self._push(_MethodRef(receiver, name))
            return
        self._push(nodes.GetField(receiver, name))

    def _op_load_method(self, instruction: dis.Instruction) -> None:
        receiver = self._pop_expression()
        self._push(_MethodRef(receiver, str(instruction.argval)))

    def _op_pop_top(self, instruction: dis.Instruction) -> None:
        value = self._pop()
        if isinstance(value, (nodes.Call, nodes.New)):
            self._emit(ExprStatement(value))

    def _op_swap(self, instruction: dis.Instruction) -> None:
        depth = instruction.arg or 2
        if len(self._stack) < depth:
            raise UnsupportedQueryError("SWAP beyond stack depth")
        self._stack[-1], self._stack[-depth] = self._stack[-depth], self._stack[-1]

    def _op_copy(self, instruction: dis.Instruction) -> None:
        depth = instruction.arg or 1
        if len(self._stack) < depth:
            raise UnsupportedQueryError("COPY beyond stack depth")
        self._push(self._stack[-depth])

    # -- operators ---------------------------------------------------------------------------------------

    def _op_compare_op(self, instruction: dis.Instruction) -> None:
        op = str(instruction.argval)
        # Python 3.13 renders comparisons as e.g. "bool(<)"; normalise.
        for candidate in _COMPARISON_NAMES:
            if candidate in op:
                op = candidate
                break
        if op not in _COMPARISON_NAMES:
            raise UnsupportedQueryError(f"unsupported comparison {op!r}")
        right = self._pop_expression()
        left = self._pop_expression()
        self._push(nodes.BinOp(op, left, right))

    def _op_binary_op(self, instruction: dis.Instruction) -> None:
        op_text = instruction.argrepr or str(instruction.argval)
        if op_text not in _BINARY_OP_NAMES:
            raise UnsupportedQueryError(f"unsupported binary operator {op_text!r}")
        right = self._pop_expression()
        left = self._pop_expression()
        self._push(nodes.BinOp(_BINARY_OP_NAMES[op_text], left, right))

    def _op_unary_not(self, instruction: dis.Instruction) -> None:
        self._push(nodes.UnaryOp("!", self._pop_expression()))

    def _op_unary_negative(self, instruction: dis.Instruction) -> None:
        self._push(nodes.UnaryOp("neg", self._pop_expression()))

    def _op_build_tuple(self, instruction: dis.Instruction) -> None:
        count = instruction.arg or 0
        args = [self._pop_expression() for _ in range(count)]
        args.reverse()
        self._push(nodes.New("tuple", tuple(args)))

    # -- calls ----------------------------------------------------------------------------------------------

    def _op_call(self, instruction: dis.Instruction) -> None:
        argc = instruction.arg or 0
        args = [self._pop_expression() for _ in range(argc)]
        args.reverse()
        callee = self._pop()
        expression = self._make_call(callee, tuple(args))
        if self._stack and isinstance(self._stack[-1], _NullMarker):
            self._stack.pop()
        self._push(expression)

    # 3.12+ emits CALL_KW / CALL_FUNCTION_EX for keyword calls: unsupported.

    def _op_kw_names(self, instruction: dis.Instruction) -> None:
        raise UnsupportedQueryError("keyword arguments are not supported in queries")

    def _make_call(
        self, callee: object, args: tuple[nodes.Expression, ...]
    ) -> nodes.Expression:
        if isinstance(callee, _MethodRef):
            return nodes.Call(callee.receiver, callee.name, args)
        if isinstance(callee, nodes.GetField):
            return nodes.Call(callee.receiver, callee.field, args)
        if isinstance(callee, nodes.Var):
            name = callee.name
            if name and name[0].isupper():
                # Calling a capitalised global constructs an object
                # (QuerySet(), Pair(a, b), ...).
                return nodes.New(name, args)
            return nodes.Call(None, name, args)
        raise UnsupportedQueryError(f"cannot lower call to {callee!r}")

    # -- iteration -----------------------------------------------------------------------------------------------

    def _op_get_iter(self, instruction: dis.Instruction) -> None:
        collection = self._pop_expression()
        iterator_temp = self._new_temp("it")
        self._emit(Assign(iterator_temp, nodes.Call(collection, "iterator")))
        self._push(nodes.Var(iterator_temp))

    def _op_for_iter(self, instruction: dis.Instruction) -> None:
        iterator = self._stack[-1]
        if not isinstance(iterator, nodes.Var):
            raise UnsupportedQueryError("FOR_ITER over a non-materialised iterator")
        exit_offset = int(instruction.argval)
        has_next_temp = self._new_temp("has")
        self._emit(Assign(has_next_temp, nodes.Call(iterator, "hasNext")))
        self._remember_branch_stack(exit_offset)
        self._emit(
            IfGoto(
                nodes.BinOp("==", nodes.Var(has_next_temp), nodes.Constant(0)),
                exit_offset,
            )
        )
        element_temp = self._new_temp("elem")
        self._emit(Assign(element_temp, nodes.Call(iterator, "next")))
        self._push(nodes.Var(element_temp))

    def _op_end_for(self, instruction: dis.Instruction) -> None:
        # Python 3.12+ closes for-loops with END_FOR (pops the iterator).
        if self._stack:
            self._stack.pop()

    # -- control flow -----------------------------------------------------------------------------------------------

    def _branch_if(self, instruction: dis.Instruction, jump_when_true: bool) -> None:
        condition = self._pop_expression()
        target = int(instruction.argval)
        if not jump_when_true:
            condition = nodes.BinOp("==", condition, nodes.Constant(False))
        self._remember_branch_stack(target)
        self._emit(IfGoto(condition, target))

    def _op_pop_jump_forward_if_false(self, instruction: dis.Instruction) -> None:
        self._branch_if(instruction, jump_when_true=False)

    def _op_pop_jump_backward_if_false(self, instruction: dis.Instruction) -> None:
        self._branch_if(instruction, jump_when_true=False)

    def _op_pop_jump_if_false(self, instruction: dis.Instruction) -> None:
        self._branch_if(instruction, jump_when_true=False)

    def _op_pop_jump_forward_if_true(self, instruction: dis.Instruction) -> None:
        self._branch_if(instruction, jump_when_true=True)

    def _op_pop_jump_backward_if_true(self, instruction: dis.Instruction) -> None:
        self._branch_if(instruction, jump_when_true=True)

    def _op_pop_jump_if_true(self, instruction: dis.Instruction) -> None:
        self._branch_if(instruction, jump_when_true=True)

    def _op_pop_jump_forward_if_none(self, instruction: dis.Instruction) -> None:
        raise UnsupportedQueryError("None tests are not supported in queries")

    _op_pop_jump_forward_if_not_none = _op_pop_jump_forward_if_none
    _op_pop_jump_if_none = _op_pop_jump_forward_if_none
    _op_pop_jump_if_not_none = _op_pop_jump_forward_if_none

    def _goto(self, instruction: dis.Instruction) -> bool:
        target = int(instruction.argval)
        self._remember_branch_stack(target)
        self._emit(Goto(target))
        return False

    def _op_jump_forward(self, instruction: dis.Instruction) -> bool:
        return self._goto(instruction)

    def _op_jump_backward(self, instruction: dis.Instruction) -> bool:
        return self._goto(instruction)

    def _op_jump_backward_no_interrupt(self, instruction: dis.Instruction) -> bool:
        return self._goto(instruction)

    def _op_jump_absolute(self, instruction: dis.Instruction) -> bool:
        return self._goto(instruction)

    def _op_return_value(self, instruction: dis.Instruction) -> bool:
        value = self._pop_expression()
        self._emit(Return(value))
        return False

    def _op_return_const(self, instruction: dis.Instruction) -> bool:
        value = instruction.argval
        if not isinstance(value, _SUPPORTED_CONSTANT_TYPES):
            raise UnsupportedQueryError(f"unsupported constant return {value!r}")
        self._emit(Return(nodes.Constant(value)))
        return False


def lower_function(function: FunctionType) -> TacMethod:
    """Lower ``function``'s bytecode into three-address code."""
    return PythonBytecodeLowering(function).lower()


def try_lower_function(function: FunctionType) -> Optional[TacMethod]:
    """Like :func:`lower_function` but returns None on unsupported bytecode."""
    try:
        return lower_function(function)
    except UnsupportedQueryError:
        return None
