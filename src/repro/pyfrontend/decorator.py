"""The ``@query`` decorator: transparent rewriting of Python query functions.

A ``@query`` function is ordinary Python::

    @query
    def canadians(em, country):
        result = QuerySet()
        for c in em.all(Client):
            if c.country == country:
                result.add(c.name)
        return result

Calling it without the decorator (or when the rewrite does not apply) scans
the whole table through the ORM — correct but slow, exactly the behaviour the
paper requires of un-rewritten queries.  With the decorator, the first call
analyses the function's compiled bytecode through the Queryll pipeline; when
the analysis succeeds the call executes the generated SQL instead and the
loop never runs.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from types import FunctionType
from typing import Any, Callable, Optional

from repro.core.expr import nodes
from repro.core.optimizer import OptimizerOptions
from repro.core.pipeline import QueryllPipeline, RewrittenQuery
from repro.core.runtime import execute_generated_query, lazy_generated_query
from repro.core.tac.instructions import Assign, Goto, Instruction, Nop, Return
from repro.core.tac.method import TacMethod
from repro.orm.entity_manager import EntityManager
from repro.orm.mapping import OrmMapping
from repro.orm.queryset import QuerySet
from repro.pyfrontend.disassembler import lower_function
from repro.errors import UnsupportedQueryError


@dataclass
class _CachedAnalysis:
    """Per-mapping analysis result for one decorated function."""

    rewritten: Optional[RewrittenQuery]
    reason: Optional[str]
    dest_is_parameter: bool = False
    returns_destination: bool = False


class QueryFunction:
    """Callable wrapper installed by :func:`query`."""

    def __init__(
        self,
        function: FunctionType,
        fallback: bool = True,
        optimizer_options: Optional[OptimizerOptions] = None,
    ) -> None:
        self._function = function
        self._fallback = fallback
        self._optimizer_options = optimizer_options or OptimizerOptions()
        self._signature = inspect.signature(function)
        self._tac: Optional[TacMethod] = None
        self._tac_error: Optional[str] = None
        self._analyses: dict[int, _CachedAnalysis] = {}
        #: Statistics observable by tests and benchmarks.
        self.rewritten_calls = 0
        self.fallback_calls = 0
        # Preserve introspection metadata.
        self.__name__ = function.__name__
        self.__doc__ = function.__doc__
        self.__wrapped__ = function

    # -- public helpers ----------------------------------------------------------------

    @property
    def original(self) -> FunctionType:
        """The undecorated function."""
        return self._function

    def tac(self) -> TacMethod:
        """The function's bytecode lowered to three-address code."""
        if self._tac is None and self._tac_error is None:
            try:
                self._tac = lower_function(self._function)
            except UnsupportedQueryError as error:
                self._tac_error = str(error)
        if self._tac is None:
            raise UnsupportedQueryError(self._tac_error or "lowering failed")
        return self._tac

    def analysis(self, mapping: OrmMapping) -> _CachedAnalysis:
        """Analyse (and cache) the function against an ORM mapping."""
        key = id(mapping)
        if key in self._analyses:
            return self._analyses[key]
        cached = self._analyse(mapping)
        self._analyses[key] = cached
        return cached

    def generated_sql(self, mapping_or_em: OrmMapping | EntityManager) -> Optional[str]:
        """The SQL this function rewrites to (None when not rewritable)."""
        mapping = (
            mapping_or_em.mapping
            if isinstance(mapping_or_em, EntityManager)
            else mapping_or_em
        )
        cached = self.analysis(mapping)
        return cached.rewritten.sql if cached.rewritten is not None else None

    def rewrite_reason(self, mapping_or_em: OrmMapping | EntityManager) -> Optional[str]:
        """Why the function is not rewritable (None when it is)."""
        mapping = (
            mapping_or_em.mapping
            if isinstance(mapping_or_em, EntityManager)
            else mapping_or_em
        )
        return self.analysis(mapping).reason

    def is_rewritable(self, mapping_or_em: OrmMapping | EntityManager) -> bool:
        """True if calls will execute generated SQL instead of the loop."""
        return self.generated_sql(mapping_or_em) is not None

    # -- the call ----------------------------------------------------------------------

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        bound = self._signature.bind(*args, **kwargs)
        bound.apply_defaults()
        entity_manager = self._find_entity_manager(bound.arguments)
        if entity_manager is None:
            return self._call_original(args, kwargs)

        cached = self.analysis(entity_manager.mapping)
        if cached.rewritten is None:
            return self._call_original(args, kwargs)

        variable_values = self._bind_outer_variables(
            cached.rewritten, bound.arguments
        )
        if variable_values is None:
            return self._call_original(args, kwargs)

        self.rewritten_calls += 1
        if cached.dest_is_parameter:
            destination = bound.arguments[cached.rewritten.query.dest_var]
            execute_generated_query(
                entity_manager, cached.rewritten.generated, variable_values, destination
            )
            return destination if cached.returns_destination else None
        return lazy_generated_query(
            entity_manager, cached.rewritten.generated, variable_values
        )

    # -- internals ----------------------------------------------------------------------

    def _call_original(self, args: tuple, kwargs: dict) -> Any:
        if not self._fallback:
            raise UnsupportedQueryError(
                f"{self._function.__qualname__} could not be rewritten and "
                "fallback execution is disabled"
            )
        self.fallback_calls += 1
        return self._function(*args, **kwargs)

    def _find_entity_manager(self, arguments: dict[str, Any]) -> Optional[EntityManager]:
        for value in arguments.values():
            if isinstance(value, EntityManager):
                return value
        return None

    def _analyse(self, mapping: OrmMapping) -> _CachedAnalysis:
        try:
            method = self.tac()
        except UnsupportedQueryError as error:
            return _CachedAnalysis(rewritten=None, reason=str(error))
        pipeline = QueryllPipeline(mapping, optimizer_options=self._optimizer_options)
        report = pipeline.analyze_method(method)
        if not report.queries:
            reason = report.skipped[0][1] if report.skipped else "no query loop found"
            return _CachedAnalysis(rewritten=None, reason=reason)
        if len(report.queries) != 1:
            return _CachedAnalysis(
                rewritten=None,
                reason="functions with several query loops are executed unrewritten",
            )
        rewritten = report.queries[0]
        shape = _check_simple_shape(method, rewritten)
        if shape is None:
            return _CachedAnalysis(
                rewritten=None,
                reason="the function does more than build and return one QuerySet",
            )
        dest_is_parameter, returns_destination = shape
        return _CachedAnalysis(
            rewritten=rewritten,
            reason=None,
            dest_is_parameter=dest_is_parameter,
            returns_destination=returns_destination,
        )

    def _bind_outer_variables(
        self, rewritten: RewrittenQuery, arguments: dict[str, Any]
    ) -> Optional[dict[str, Any]]:
        values: dict[str, Any] = {}
        closure_values = self._closure_values()
        for source in rewritten.parameter_sources:
            if source in arguments:
                values[source] = arguments[source]
            elif source in closure_values:
                values[source] = closure_values[source]
            elif source in self._function.__globals__:
                values[source] = self._function.__globals__[source]
            else:
                return None
        return values

    def _closure_values(self) -> dict[str, Any]:
        code = self._function.__code__
        closure = self._function.__closure__ or ()
        values: dict[str, Any] = {}
        for name, cell in zip(code.co_freevars, closure):
            try:
                values[name] = cell.cell_contents
            except ValueError:
                continue
        return values


def _check_simple_shape(
    method: TacMethod, rewritten: RewrittenQuery
) -> Optional[tuple[bool, bool]]:
    """Check that the whole function is "build one QuerySet and return it".

    Returns (dest_is_parameter, returns_destination) when the shape matches,
    or None when the function does extra work outside the loop (in which case
    the decorator falls back to executing it unmodified).
    """
    query = rewritten.query
    dest = query.dest_var
    dest_is_parameter = dest in method.parameters
    returns_destination = False

    for index, instruction in enumerate(method.instructions):
        if index in query.loop.instructions:
            continue
        if isinstance(instruction, (Goto, Nop)):
            continue
        if isinstance(instruction, Return):
            value = instruction.value
            if isinstance(value, nodes.Var) and value.name == dest:
                returns_destination = True
                continue
            if value is None or value == nodes.Constant(None):
                continue
            return None
        if isinstance(instruction, Assign):
            if _is_setup_assignment(instruction, dest):
                continue
            return None
        return None
    return dest_is_parameter, returns_destination


def _is_setup_assignment(instruction: Assign, dest: str) -> bool:
    value = instruction.value
    if instruction.target == dest:
        return isinstance(value, nodes.New) and value.class_name in (
            "QuerySet",
            "tuple",
            "list",
        ) and not value.args
    if isinstance(value, nodes.Call) and value.method == "iterator":
        return True
    if isinstance(value, nodes.Constant):
        return True
    if isinstance(value, (nodes.BinOp, nodes.UnaryOp)):
        return _only_constants(value)
    return False


def _only_constants(expression: nodes.Expression) -> bool:
    if isinstance(expression, nodes.Constant):
        return True
    if isinstance(expression, nodes.BinOp):
        return _only_constants(expression.left) and _only_constants(expression.right)
    if isinstance(expression, nodes.UnaryOp):
        return _only_constants(expression.operand)
    return False


def query(
    function: Optional[Callable] = None,
    *,
    fallback: bool = True,
    optimize: bool = True,
    optimizer_options: Optional[OptimizerOptions] = None,
) -> QueryFunction | Callable[[Callable], QueryFunction]:
    """Mark a function as a Queryll query (the paper's ``@Query`` annotation).

    ``fallback=False`` turns failed rewrites into errors instead of silently
    executing the original loop — useful in tests that must assert a query is
    actually translated to SQL.

    ``optimize=False`` disables the logical query-tree optimizer for this
    function (the ablation the benchmarks measure: full-entity-width SELECT
    lists and un-normalized predicates, as the bare paper pipeline emits).
    ``optimizer_options`` passes a full
    :class:`~repro.core.optimizer.OptimizerOptions` instead, for rule
    subsets or trace mode.
    """

    def wrap(func: Callable) -> QueryFunction:
        if not isinstance(func, FunctionType):
            raise TypeError("@query can only decorate plain functions")
        options = optimizer_options
        if options is None:
            options = OptimizerOptions(optimize=optimize)
        return QueryFunction(func, fallback=fallback, optimizer_options=options)

    if function is not None:
        return wrap(function)
    return wrap
