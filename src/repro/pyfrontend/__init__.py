"""CPython bytecode frontend: the ``@query`` decorator.

The paper rewrites *Java* bytecode; this frontend demonstrates the same idea
on the bytecode an unmodified CPython compiler produces.  A function
decorated with :func:`~repro.pyfrontend.decorator.query` is written as a
plain Python for-loop over ``em.all(Entity)``; it is executable as-is (it
would scan the whole table), but on first call the decorator disassembles its
compiled bytecode, lowers it into the same three-address form the mini-JVM
frontend produces, runs the Queryll pipeline and — when the analysis
succeeds — executes the generated SQL instead of the loop.
"""

from __future__ import annotations

from repro.pyfrontend.decorator import QueryFunction, query
from repro.pyfrontend.disassembler import lower_function

__all__ = ["QueryFunction", "lower_function", "query"]
