"""Network server subsystem: wire protocol + concurrent SQL server.

``repro.server`` turns the embedded engine into a shared server process:
:mod:`repro.server.protocol` defines the versioned, length-prefixed binary
wire protocol (reusing the write-ahead log's value codec), and
:mod:`repro.server.server` is the threaded socket server that owns one
:class:`~repro.sqlengine.engine.Database` and serves one engine session per
client connection.  The matching client side lives in :mod:`repro.netclient`.
"""

from __future__ import annotations

from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteServerError,
)
from repro.server.server import ServerStats, SqlServer

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteServerError",
    "ServerStats",
    "SqlServer",
]
