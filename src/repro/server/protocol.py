"""Versioned, length-prefixed binary wire protocol for the SQL server.

Every message travels in the same frame format the write-ahead log uses::

    <u32 payload length> <payload bytes> <u32 crc32(payload)>

and a frame's payload starts with a one-byte opcode followed by
opcode-specific fields encoded with the WAL's tag-based value codec
(LEB128 varints, zigzag integers, UTF-8 strings — see
:mod:`repro.sqlengine.durability.wal`).  The engine stores only ``None``,
``bool``, ``int``, ``float`` and ``str`` cell values, so the codec covers
every parameter and every result cell without a separate serialisation
layer.

Protocol shape:

* The client opens with ``HELLO`` carrying :data:`PROTOCOL_VERSION`; the
  server answers ``HELLO_OK`` or an ``ERROR`` frame (version mismatch,
  admission control) and closes.
* Requests are strictly request/response: one client frame, one server
  frame.  ``EXECUTE`` / ``EXECUTE_PREPARED`` answer with ``RESULT``
  (columns, row count, the first row batch and — when the batch did not
  exhaust the result — a cursor id for ``FETCH``).  ``FETCH`` answers with
  ``ROWS`` until the exhausted flag is set.
* Every server frame carries a flags byte whose
  :data:`FLAG_IN_TRANSACTION` bit mirrors the server session's transaction
  state, so the client never has to guess whether a statement opened or
  closed a transaction.
* Errors are structured: an ``ERROR`` frame carries the engine error
  *class name* plus the message, and :func:`raise_remote_error` re-raises
  the matching exception type client-side (unknown classes degrade to
  :class:`RemoteServerError`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence
from zlib import crc32

from repro.errors import SqlError
from repro.obs.trace import TRACE_CONTEXT_WIRE_BYTES, TraceContext
from repro.sqlengine import errors as sql_errors
from repro.sqlengine.durability.wal import (
    WalError,
    decode_row,
    decode_varint,
    encode_row,
    encode_varint,
)

#: Bumped on any incompatible change; HELLO frames carrying an unsupported
#: version are rejected before any SQL is accepted.  Version 2 added the
#: optional trailing trace context on request frames plus the TRACES and
#: METRICS verbs — all additive, so servers keep accepting version-1
#: clients (see :data:`SUPPORTED_VERSIONS`).
PROTOCOL_VERSION = 2

#: Versions a server accepts in HELLO.  Version 1 peers simply never send
#: a trace context and never use the new verbs.
SUPPORTED_VERSIONS = (1, 2)

#: Upper bound on one frame payload.  Large enough for any realistic row
#: batch, small enough that a corrupt length prefix cannot make the peer
#: allocate gigabytes.
MAX_MESSAGE = 1 << 26

_U32 = struct.Struct("<I")

# -- opcodes: client -> server ------------------------------------------------

HELLO = 0x01
EXECUTE = 0x02
PREPARE = 0x03
EXECUTE_PREPARED = 0x04
FETCH = 0x05
CLOSE_CURSOR = 0x06
CLOSE_STATEMENT = 0x07
BEGIN = 0x08
COMMIT = 0x09
ROLLBACK = 0x0A
SET_AUTOCOMMIT = 0x0B
EXPLAIN = 0x0C
CHECKPOINT = 0x0D
SERVER_STATS = 0x0E
PING = 0x0F
GOODBYE = 0x10
REPLICATE = 0x11
WAL_POSITION = 0x12
WAIT_LSN = 0x13
PROMOTE = 0x14
#: Two-phase commit (sharding coordinator -> shard).
PREPARE_TXN = 0x15
COMMIT_PREPARED = 0x16
ABORT_PREPARED = 0x17
LIST_PREPARED = 0x18
#: Snapshot-based replica bootstrap: stream ``snapshot.db`` before tailing.
BOOTSTRAP = 0x19
#: Observability (protocol v2): buffered trace spans (answered with a
#: STATS frame carrying JSON) and the Prometheus metrics text.
TRACES = 0x1A
METRICS = 0x1B

# -- opcodes: server -> client ------------------------------------------------

HELLO_OK = 0x81
RESULT = 0x82
ROWS = 0x83
OK = 0x84
PREPARED = 0x85
STATS = 0x86
EXPLAINED = 0x87
WAL_CHUNK = 0x88
LSN = 0x89
SNAPSHOT_CHUNK = 0x8A
ERROR = 0xFF

OPCODE_NAMES = {
    HELLO: "HELLO", EXECUTE: "EXECUTE", PREPARE: "PREPARE",
    EXECUTE_PREPARED: "EXECUTE_PREPARED", FETCH: "FETCH",
    CLOSE_CURSOR: "CLOSE_CURSOR", CLOSE_STATEMENT: "CLOSE_STATEMENT",
    BEGIN: "BEGIN", COMMIT: "COMMIT", ROLLBACK: "ROLLBACK",
    SET_AUTOCOMMIT: "SET_AUTOCOMMIT", EXPLAIN: "EXPLAIN",
    CHECKPOINT: "CHECKPOINT", SERVER_STATS: "SERVER_STATS", PING: "PING",
    GOODBYE: "GOODBYE", REPLICATE: "REPLICATE", WAL_POSITION: "WAL_POSITION",
    WAIT_LSN: "WAIT_LSN", PROMOTE: "PROMOTE",
    PREPARE_TXN: "PREPARE_TXN", COMMIT_PREPARED: "COMMIT_PREPARED",
    ABORT_PREPARED: "ABORT_PREPARED", LIST_PREPARED: "LIST_PREPARED",
    BOOTSTRAP: "BOOTSTRAP", TRACES: "TRACES", METRICS: "METRICS",
    HELLO_OK: "HELLO_OK", RESULT: "RESULT", ROWS: "ROWS",
    OK: "OK", PREPARED: "PREPARED", STATS: "STATS", EXPLAINED: "EXPLAINED",
    WAL_CHUNK: "WAL_CHUNK", LSN: "LSN", SNAPSHOT_CHUNK: "SNAPSHOT_CHUNK",
    ERROR: "ERROR",
}

#: Server-frame flag bits.
FLAG_IN_TRANSACTION = 0x01
FLAG_EXHAUSTED = 0x02


class ProtocolError(SqlError):
    """A malformed, oversized or version-incompatible frame was seen."""


class RemoteServerError(SqlError):
    """A server-side error whose class has no client-side counterpart."""

    def __init__(self, error_class: str, message: str) -> None:
        super().__init__(f"{error_class}: {message}")
        self.error_class = error_class
        self.remote_message = message


# -- error class registry -----------------------------------------------------

#: Engine error classes a structured ERROR frame can round-trip exactly.
ERROR_CLASSES: dict[str, type[SqlError]] = {
    name: value
    for name, value in vars(sql_errors).items()
    if isinstance(value, type) and issubclass(value, SqlError)
}
ERROR_CLASSES["WalError"] = WalError
ERROR_CLASSES["ProtocolError"] = ProtocolError


def error_class_name(error: BaseException) -> str:
    """The class name shipped in an ERROR frame for ``error``."""
    return type(error).__name__


def raise_remote_error(error_class: str, message: str) -> None:
    """Re-raise a server-side error under its original class when known."""
    exception_type = ERROR_CLASSES.get(error_class)
    if exception_type is not None:
        raise exception_type(message)
    raise RemoteServerError(error_class, message)


# -- framing ------------------------------------------------------------------


def frame(payload: bytes) -> bytes:
    """Wrap a message payload in the length-prefixed checksummed frame."""
    return _U32.pack(len(payload)) + payload + _U32.pack(crc32(payload))


def read_frame(rfile) -> Optional[bytes]:
    """Read one frame from a blocking binary stream.

    Returns None on a clean EOF at a frame boundary (the peer closed the
    connection between messages).  Raises :class:`ProtocolError` for a
    truncated frame, an oversized length prefix, or a checksum mismatch —
    after any of those the stream cannot be resynchronised and the
    connection must be dropped.
    """
    header = rfile.read(4)
    if not header:
        return None
    if len(header) < 4:
        raise ProtocolError("truncated frame header")
    (length,) = _U32.unpack(header)
    if length > MAX_MESSAGE:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the protocol maximum ({MAX_MESSAGE})"
        )
    body = rfile.read(length + 4)
    if len(body) < length + 4:
        raise ProtocolError("truncated frame body")
    payload = body[:length]
    (expected,) = _U32.unpack_from(body, length)
    if crc32(payload) != expected:
        raise ProtocolError("frame checksum mismatch")
    return payload


# -- shared field codecs ------------------------------------------------------


def _encode_str(text: str, out: bytearray) -> None:
    raw = text.encode("utf-8")
    encode_varint(len(raw), out)
    out.extend(raw)


def _decode_str(data: bytes, offset: int) -> tuple[str, int]:
    length, offset = decode_varint(data, offset)
    if offset + length > len(data):
        raise ProtocolError("truncated string field")
    return data[offset:offset + length].decode("utf-8"), offset + length


def _encode_rows(rows: Iterable[Sequence[object]], out: bytearray) -> None:
    materialised = list(rows)
    encode_varint(len(materialised), out)
    for row in materialised:
        encode_row(row, out)


def _decode_rows(data: bytes, offset: int) -> tuple[list[tuple[object, ...]], int]:
    count, offset = decode_varint(data, offset)
    rows: list[tuple[object, ...]] = []
    for _ in range(count):
        row, offset = decode_row(data, offset)
        rows.append(row)
    return rows, offset


def _encode_trace(trace: Optional[TraceContext], out: bytearray) -> None:
    """Append the optional trailing trace context (protocol v2).  Nothing
    is written for untraced requests, so version-1 peers see byte-identical
    frames."""
    if trace is not None:
        out.extend(trace.to_wire_bytes())


def _decode_trailing_trace(
    data: bytes, offset: int
) -> tuple[Optional[TraceContext], int]:
    """Decode the optional trailing trace context; None when the frame
    (from an untraced or version-1 sender) ends before it."""
    if offset + TRACE_CONTEXT_WIRE_BYTES <= len(data):
        end = offset + TRACE_CONTEXT_WIRE_BYTES
        return TraceContext.from_wire_bytes(data[offset:end]), end
    return None, offset


# -- client messages ----------------------------------------------------------


@dataclass(frozen=True)
class ClientMessage:
    """One decoded client request."""

    op: int
    sql: str = ""
    params: tuple[object, ...] = ()
    max_rows: int = 0
    stmt_id: int = 0
    cursor_id: int = 0
    flag: bool = False
    version: int = 0
    client_name: str = ""
    #: Replication fields: a log position (REPLICATE start / WAIT_LSN target)
    #: and the WAIT_LSN timeout.
    epoch: int = 0
    offset: int = 0
    timeout_ms: int = 0
    #: Two-phase commit: the coordinator-chosen global transaction id.
    gid: str = ""
    #: PROMOTE: where the promoted replica should start writing its own
    #: log ("" keeps the promoted server in-memory, the pre-sharding shape).
    data_dir: str = ""
    #: Distributed tracing (protocol v2): the sender's trace context, or
    #: None for untraced / version-1 requests.
    trace: Optional["TraceContext"] = None
    #: TRACES: the trace-id filter ("" = every buffered span).
    trace_id: str = ""

    @property
    def op_name(self) -> str:
        """Human-readable opcode."""
        return OPCODE_NAMES.get(self.op, f"?{self.op:#x}")


def encode_hello(version: int = PROTOCOL_VERSION, client_name: str = "repro-netclient") -> bytes:
    """HELLO: protocol handshake (must be the first frame)."""
    out = bytearray([HELLO])
    encode_varint(version, out)
    _encode_str(client_name, out)
    return bytes(out)


def encode_execute(
    sql: str,
    params: Sequence[object] = (),
    max_rows: int = 0,
    trace: Optional[TraceContext] = None,
) -> bytes:
    """EXECUTE: run one SQL statement.  ``max_rows`` caps the inline row
    batch of the RESULT frame (0 = ship every row in one response).  The
    optional trailing ``trace`` context distributes the sender's trace."""
    out = bytearray([EXECUTE])
    _encode_str(sql, out)
    encode_row(params, out)
    encode_varint(max_rows, out)
    _encode_trace(trace, out)
    return bytes(out)


def encode_prepare(sql: str, trace: Optional[TraceContext] = None) -> bytes:
    """PREPARE: register a server-side prepared statement."""
    out = bytearray([PREPARE])
    _encode_str(sql, out)
    _encode_trace(trace, out)
    return bytes(out)


def encode_execute_prepared(
    stmt_id: int,
    params: Sequence[object] = (),
    max_rows: int = 0,
    trace: Optional[TraceContext] = None,
) -> bytes:
    """EXECUTE_PREPARED: run a prepared statement with fresh parameters."""
    out = bytearray([EXECUTE_PREPARED])
    encode_varint(stmt_id, out)
    encode_row(params, out)
    encode_varint(max_rows, out)
    _encode_trace(trace, out)
    return bytes(out)


def encode_fetch(
    cursor_id: int, max_rows: int, trace: Optional[TraceContext] = None
) -> bytes:
    """FETCH: the next batch of an open cursor."""
    out = bytearray([FETCH])
    encode_varint(cursor_id, out)
    encode_varint(max_rows, out)
    _encode_trace(trace, out)
    return bytes(out)


def encode_close_cursor(cursor_id: int) -> bytes:
    """CLOSE_CURSOR: drop an open cursor without draining it."""
    out = bytearray([CLOSE_CURSOR])
    encode_varint(cursor_id, out)
    return bytes(out)


def encode_close_statement(stmt_id: int) -> bytes:
    """CLOSE_STATEMENT: drop a server-side prepared statement."""
    out = bytearray([CLOSE_STATEMENT])
    encode_varint(stmt_id, out)
    return bytes(out)


def encode_set_autocommit(value: bool) -> bytes:
    """SET_AUTOCOMMIT: flip the server session's auto-commit flag."""
    return bytes([SET_AUTOCOMMIT, 1 if value else 0])


def encode_explain(sql: str) -> bytes:
    """EXPLAIN: ask for the engine's cost-annotated plan text."""
    out = bytearray([EXPLAIN])
    _encode_str(sql, out)
    return bytes(out)


def encode_simple(op: int, trace: Optional[TraceContext] = None) -> bytes:
    """A request with no fields (BEGIN/COMMIT/ROLLBACK/CHECKPOINT/...).
    The optional trailing ``trace`` lets COMMIT carry a trace context so the
    server can attribute the WAL fsync to the caller's trace."""
    out = bytearray([op])
    _encode_trace(trace, out)
    return bytes(out)


def encode_replicate(epoch: int, offset: int, replica_name: str = "replica") -> bytes:
    """REPLICATE: turn this connection into a one-way WAL stream starting
    at ``(epoch, offset)`` — ``(0, 0)`` means the oldest available frame."""
    out = bytearray([REPLICATE])
    encode_varint(epoch, out)
    encode_varint(offset, out)
    _encode_str(replica_name, out)
    return bytes(out)


def encode_wait_lsn(epoch: int, offset: int, timeout_ms: int) -> bytes:
    """WAIT_LSN: block until the server's applied position reaches the
    given LSN (read-your-writes), or ``timeout_ms`` elapses."""
    out = bytearray([WAIT_LSN])
    encode_varint(epoch, out)
    encode_varint(offset, out)
    encode_varint(timeout_ms, out)
    return bytes(out)


def encode_prepare_txn(gid: str, trace: Optional[TraceContext] = None) -> bytes:
    """PREPARE_TXN: two-phase commit phase one — make the session's open
    transaction durable under ``gid`` without committing it."""
    out = bytearray([PREPARE_TXN])
    _encode_str(gid, out)
    _encode_trace(trace, out)
    return bytes(out)


def encode_commit_prepared(gid: str, trace: Optional[TraceContext] = None) -> bytes:
    """COMMIT_PREPARED: apply a prepared transaction (idempotent)."""
    out = bytearray([COMMIT_PREPARED])
    _encode_str(gid, out)
    _encode_trace(trace, out)
    return bytes(out)


def encode_abort_prepared(gid: str, trace: Optional[TraceContext] = None) -> bytes:
    """ABORT_PREPARED: discard a prepared transaction (presumed abort:
    unknown gids succeed silently)."""
    out = bytearray([ABORT_PREPARED])
    _encode_str(gid, out)
    _encode_trace(trace, out)
    return bytes(out)


def encode_traces(trace_id: str = "") -> bytes:
    """TRACES: fetch buffered spans (all traces, or one ``trace_id``) as a
    JSON document in a STATS-shaped response."""
    out = bytearray([TRACES])
    if trace_id:
        _encode_str(trace_id, out)
    return bytes(out)


def encode_metrics() -> bytes:
    """METRICS: fetch the server's metrics registry rendered in Prometheus
    text exposition format, shipped in a STATS-shaped response."""
    return bytes([METRICS])


def encode_promote(data_dir: str = "") -> bytes:
    """PROMOTE: flip a replica into a writable primary.  The optional
    trailing ``data_dir`` (new in the sharding work; older clients send the
    fieldless form) makes the promoted server durable at that path first."""
    out = bytearray([PROMOTE])
    if data_dir:
        _encode_str(data_dir, out)
    return bytes(out)


def decode_client_message(payload: bytes) -> ClientMessage:
    """Decode one client frame payload."""
    if not payload:
        raise ProtocolError("empty message payload")
    op = payload[0]
    offset = 1
    if op == HELLO:
        version, offset = decode_varint(payload, offset)
        client_name, _ = _decode_str(payload, offset)
        return ClientMessage(op=op, version=version, client_name=client_name)
    if op == EXECUTE:
        sql, offset = _decode_str(payload, offset)
        params, offset = decode_row(payload, offset)
        max_rows, offset = decode_varint(payload, offset)
        trace, _ = _decode_trailing_trace(payload, offset)
        return ClientMessage(
            op=op, sql=sql, params=params, max_rows=max_rows, trace=trace
        )
    if op == PREPARE:
        sql, offset = _decode_str(payload, offset)
        trace, _ = _decode_trailing_trace(payload, offset)
        return ClientMessage(op=op, sql=sql, trace=trace)
    if op == EXECUTE_PREPARED:
        stmt_id, offset = decode_varint(payload, offset)
        params, offset = decode_row(payload, offset)
        max_rows, offset = decode_varint(payload, offset)
        trace, _ = _decode_trailing_trace(payload, offset)
        return ClientMessage(
            op=op, stmt_id=stmt_id, params=params, max_rows=max_rows, trace=trace
        )
    if op == FETCH:
        cursor_id, offset = decode_varint(payload, offset)
        max_rows, offset = decode_varint(payload, offset)
        trace, _ = _decode_trailing_trace(payload, offset)
        return ClientMessage(op=op, cursor_id=cursor_id, max_rows=max_rows, trace=trace)
    if op == CLOSE_CURSOR:
        cursor_id, _ = decode_varint(payload, offset)
        return ClientMessage(op=op, cursor_id=cursor_id)
    if op == CLOSE_STATEMENT:
        stmt_id, _ = decode_varint(payload, offset)
        return ClientMessage(op=op, stmt_id=stmt_id)
    if op == SET_AUTOCOMMIT:
        if offset >= len(payload):
            raise ProtocolError("truncated SET_AUTOCOMMIT")
        return ClientMessage(op=op, flag=bool(payload[offset]))
    if op == EXPLAIN:
        sql, _ = _decode_str(payload, offset)
        return ClientMessage(op=op, sql=sql)
    if op == REPLICATE:
        epoch, offset = decode_varint(payload, offset)
        log_offset, offset = decode_varint(payload, offset)
        client_name, _ = _decode_str(payload, offset)
        return ClientMessage(
            op=op, epoch=epoch, offset=log_offset, client_name=client_name
        )
    if op == WAIT_LSN:
        epoch, offset = decode_varint(payload, offset)
        log_offset, offset = decode_varint(payload, offset)
        timeout_ms, _ = decode_varint(payload, offset)
        return ClientMessage(
            op=op, epoch=epoch, offset=log_offset, timeout_ms=timeout_ms
        )
    if op in (PREPARE_TXN, COMMIT_PREPARED, ABORT_PREPARED):
        gid, offset = _decode_str(payload, offset)
        trace, _ = _decode_trailing_trace(payload, offset)
        return ClientMessage(op=op, gid=gid, trace=trace)
    if op == TRACES:
        # Fieldless = every buffered trace; the trailing trace_id is optional.
        trace_id = ""
        if offset < len(payload):
            trace_id, _ = _decode_str(payload, offset)
        return ClientMessage(op=op, trace_id=trace_id)
    if op == METRICS:
        return ClientMessage(op=op)
    if op == PROMOTE:
        # Fieldless in pre-sharding clients; the trailing data_dir is optional.
        data_dir = ""
        if offset < len(payload):
            data_dir, _ = _decode_str(payload, offset)
        return ClientMessage(op=op, data_dir=data_dir)
    if op in (
        BEGIN, COMMIT, ROLLBACK, CHECKPOINT, SERVER_STATS, PING, GOODBYE,
        WAL_POSITION, LIST_PREPARED, BOOTSTRAP,
    ):
        trace, _ = _decode_trailing_trace(payload, offset)
        return ClientMessage(op=op, trace=trace)
    raise ProtocolError(f"unknown client opcode {op:#x}")


# -- server messages ----------------------------------------------------------


@dataclass(frozen=True)
class ServerMessage:
    """One decoded server response."""

    op: int
    flags: int = 0
    rowcount: int = 0
    cursor_id: int = 0
    stmt_id: int = 0
    columns: tuple[str, ...] = ()
    rows: tuple[tuple[object, ...], ...] = ()
    text: str = ""
    error_class: str = ""
    message: str = ""
    version: int = 0
    #: The server's log position ``(epoch, offset)`` when it sent the frame
    #: (primaries: end of WAL; replicas: applied watermark); ``(0, 0)`` when
    #: the frame predates replication or the server is in-memory.
    lsn: tuple[int, int] = (0, 0)
    #: WAL_CHUNK payload: raw log frames covering
    #: ``[chunk_start, lsn[1])`` of epoch ``lsn[0]``.
    chunk: bytes = b""
    chunk_start: int = 0

    @property
    def op_name(self) -> str:
        """Human-readable opcode."""
        return OPCODE_NAMES.get(self.op, f"?{self.op:#x}")

    @property
    def in_transaction(self) -> bool:
        """Whether the server session has an open transaction."""
        return bool(self.flags & FLAG_IN_TRANSACTION)

    @property
    def exhausted(self) -> bool:
        """Whether a RESULT/ROWS frame shipped the final row batch."""
        return bool(self.flags & FLAG_EXHAUSTED)


def _flags(in_transaction: bool, exhausted: bool = False) -> int:
    return (FLAG_IN_TRANSACTION if in_transaction else 0) | (
        FLAG_EXHAUSTED if exhausted else 0
    )


def encode_hello_ok(version: int = PROTOCOL_VERSION, banner: str = "repro-sql-server") -> bytes:
    """HELLO_OK: handshake accepted."""
    out = bytearray([HELLO_OK, 0])
    encode_varint(version, out)
    _encode_str(banner, out)
    return bytes(out)


def encode_result(
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    rowcount: int,
    cursor_id: int,
    in_transaction: bool,
    exhausted: bool,
    lsn: tuple[int, int] = (0, 0),
) -> bytes:
    """RESULT: the answer to EXECUTE/EXECUTE_PREPARED.

    The trailing LSN rides behind the original fields; pre-replication
    decoders ignored trailing bytes, so this needs no version bump.
    """
    out = bytearray([RESULT, _flags(in_transaction, exhausted)])
    encode_varint(rowcount, out)
    encode_varint(cursor_id, out)
    encode_varint(len(columns), out)
    for column in columns:
        _encode_str(column, out)
    _encode_rows(rows, out)
    encode_varint(lsn[0], out)
    encode_varint(lsn[1], out)
    return bytes(out)


def encode_rows(
    rows: Iterable[Sequence[object]],
    cursor_id: int,
    in_transaction: bool,
    exhausted: bool,
) -> bytes:
    """ROWS: one FETCH batch."""
    out = bytearray([ROWS, _flags(in_transaction, exhausted)])
    encode_varint(cursor_id, out)
    _encode_rows(rows, out)
    return bytes(out)


def encode_ok(
    in_transaction: bool, rowcount: int = 0, lsn: tuple[int, int] = (0, 0)
) -> bytes:
    """OK: a fieldless acknowledgement (transaction control, PING, ...).
    COMMIT acknowledgements carry the commit's LSN for read-your-writes."""
    out = bytearray([OK, _flags(in_transaction)])
    encode_varint(rowcount, out)
    encode_varint(lsn[0], out)
    encode_varint(lsn[1], out)
    return bytes(out)


def encode_lsn(epoch: int, offset: int, in_transaction: bool = False) -> bytes:
    """LSN: a bare log position (WAL_POSITION/WAIT_LSN answers, and the
    greeting frame of a replication stream)."""
    out = bytearray([LSN, _flags(in_transaction)])
    encode_varint(epoch, out)
    encode_varint(offset, out)
    return bytes(out)


def encode_wal_chunk(epoch: int, start: int, end: int, data: bytes) -> bytes:
    """WAL_CHUNK: raw log frames covering ``[start, end)`` of ``epoch``.
    Chunks always end on a frame boundary, so ``(epoch, end)`` is a valid
    restart position for a reconnecting replica."""
    out = bytearray([WAL_CHUNK, 0])
    encode_varint(epoch, out)
    encode_varint(start, out)
    encode_varint(end, out)
    encode_varint(len(data), out)
    out.extend(data)
    return bytes(out)


def encode_snapshot_chunk(start: int, data: bytes) -> bytes:
    """SNAPSHOT_CHUNK: ``len(data)`` bytes of the snapshot file starting at
    byte ``start``.  A BOOTSTRAP answer is a run of these followed by one
    LSN frame carrying the position the snapshot covers — the replica
    resumes log replication from there.  A bare LSN ``(0, 0)`` with no
    chunks means "no snapshot yet; replicate from the start of the log"."""
    out = bytearray([SNAPSHOT_CHUNK, 0])
    encode_varint(start, out)
    encode_varint(len(data), out)
    out.extend(data)
    return bytes(out)


def encode_prepared(stmt_id: int, in_transaction: bool) -> bytes:
    """PREPARED: the id of a freshly registered prepared statement."""
    out = bytearray([PREPARED, _flags(in_transaction)])
    encode_varint(stmt_id, out)
    return bytes(out)


def encode_stats(text: str, in_transaction: bool) -> bytes:
    """STATS: the SERVER_STATS JSON document."""
    out = bytearray([STATS, _flags(in_transaction)])
    _encode_str(text, out)
    return bytes(out)


def encode_explained(text: str, in_transaction: bool) -> bytes:
    """EXPLAINED: the engine's plan text."""
    out = bytearray([EXPLAINED, _flags(in_transaction)])
    _encode_str(text, out)
    return bytes(out)


def encode_error(error_class: str, message: str, in_transaction: bool) -> bytes:
    """ERROR: structured error (engine error class name + message)."""
    out = bytearray([ERROR, _flags(in_transaction)])
    _encode_str(error_class, out)
    _encode_str(message, out)
    return bytes(out)


def _decode_trailing_lsn(data: bytes, offset: int) -> tuple[tuple[int, int], int]:
    """Decode the optional trailing ``(epoch, offset)`` LSN pair added by
    replication-aware servers; ``(0, 0)`` when the frame predates it."""
    if offset >= len(data):
        return (0, 0), offset
    epoch, offset = decode_varint(data, offset)
    log_offset, offset = decode_varint(data, offset)
    return (epoch, log_offset), offset


def decode_server_message(payload: bytes) -> ServerMessage:
    """Decode one server frame payload."""
    if len(payload) < 2:
        raise ProtocolError("server message too short")
    op = payload[0]
    flags = payload[1]
    offset = 2
    if op == HELLO_OK:
        version, offset = decode_varint(payload, offset)
        banner, _ = _decode_str(payload, offset)
        return ServerMessage(op=op, flags=flags, version=version, text=banner)
    if op == RESULT:
        rowcount, offset = decode_varint(payload, offset)
        cursor_id, offset = decode_varint(payload, offset)
        ncols, offset = decode_varint(payload, offset)
        columns = []
        for _ in range(ncols):
            column, offset = _decode_str(payload, offset)
            columns.append(column)
        rows, offset = _decode_rows(payload, offset)
        lsn, _ = _decode_trailing_lsn(payload, offset)
        return ServerMessage(
            op=op, flags=flags, rowcount=rowcount, cursor_id=cursor_id,
            columns=tuple(columns), rows=tuple(rows), lsn=lsn,
        )
    if op == ROWS:
        cursor_id, offset = decode_varint(payload, offset)
        rows, _ = _decode_rows(payload, offset)
        return ServerMessage(op=op, flags=flags, cursor_id=cursor_id, rows=tuple(rows))
    if op == OK:
        rowcount, offset = decode_varint(payload, offset)
        lsn, _ = _decode_trailing_lsn(payload, offset)
        return ServerMessage(op=op, flags=flags, rowcount=rowcount, lsn=lsn)
    if op == LSN:
        epoch, offset = decode_varint(payload, offset)
        log_offset, _ = decode_varint(payload, offset)
        return ServerMessage(op=op, flags=flags, lsn=(epoch, log_offset))
    if op == WAL_CHUNK:
        epoch, offset = decode_varint(payload, offset)
        start, offset = decode_varint(payload, offset)
        end, offset = decode_varint(payload, offset)
        length, offset = decode_varint(payload, offset)
        if offset + length > len(payload):
            raise ProtocolError("truncated WAL_CHUNK data")
        data = payload[offset:offset + length]
        return ServerMessage(
            op=op, flags=flags, lsn=(epoch, end), chunk=data, chunk_start=start
        )
    if op == SNAPSHOT_CHUNK:
        start, offset = decode_varint(payload, offset)
        length, offset = decode_varint(payload, offset)
        if offset + length > len(payload):
            raise ProtocolError("truncated SNAPSHOT_CHUNK data")
        data = payload[offset:offset + length]
        return ServerMessage(op=op, flags=flags, chunk=data, chunk_start=start)
    if op == PREPARED:
        stmt_id, _ = decode_varint(payload, offset)
        return ServerMessage(op=op, flags=flags, stmt_id=stmt_id)
    if op in (STATS, EXPLAINED):
        text, _ = _decode_str(payload, offset)
        return ServerMessage(op=op, flags=flags, text=text)
    if op == ERROR:
        error_class, offset = _decode_str(payload, offset)
        message, _ = _decode_str(payload, offset)
        return ServerMessage(op=op, flags=flags, error_class=error_class, message=message)
    raise ProtocolError(f"unknown server opcode {op:#x}")
