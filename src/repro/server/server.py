"""Threaded socket server exposing one :class:`Database` over the wire protocol.

The server owns a single engine — in-memory or durable (``data_dir=``) —
and gives every client connection its own engine :class:`Session`, so the
transaction semantics over the network are exactly the embedded ones: an
explicit transaction belongs to one connection, a dropped connection rolls
its open transaction back, and concurrent SELECTs from different clients
run in parallel under the engine's MVCC snapshot isolation (readers never
block, write-write conflicts abort the later writer with a typed error the
client re-raises).

Concurrency model: one handler thread per connection, bounded by
``max_connections`` (admission control — a connection over the limit is
answered with a structured ERROR frame and closed, while the TCP
``backlog`` absorbs short accept bursts).  An ``idle_timeout`` reclaims
connections that stop talking.

Shutdown: :meth:`SqlServer.shutdown` stops accepting, shuts the read side
of every client socket (a handler blocked waiting for the next request
sees EOF; a handler mid-statement finishes the statement and sends its
response first), joins the handlers and then closes the database cleanly —
on a durable engine that makes the write-ahead log durable, so a graceful
shutdown and a crash recover identically.  :meth:`SqlServer.kill` is the
crash: sockets are torn down and the database is *not* closed, which the
recovery tests use to prove the WAL preserves the committed prefix.
"""

from __future__ import annotations

import json
import os
import select
import socket
import threading
import time
from typing import Optional

from repro.errors import SqlError
from repro.obs.metrics import MetricsRegistry
from repro.server import protocol
from repro.sqlengine.durability import DurabilityOptions
from repro.sqlengine.durability.snapshot import SNAPSHOT_NAME, snapshot_epoch
from repro.sqlengine.engine import Database, ResultSet, Session
from repro.sqlengine.errors import ReadOnlyError, SqlExecutionError


class ServerStats:
    """Thread-safe per-server counters, surfaced via SERVER_STATS.

    Backed by the engine's shared :class:`MetricsRegistry`, so the same
    numbers appear in the SERVER_STATS document, ``Database.render_metrics``
    and a Prometheus scrape.  ``connections_active`` and
    ``replication_streams`` are gauges (they take negative deltas); the
    rest are monotonic counters.
    """

    _SPEC = (
        ("connections_accepted", "counter"),
        ("connections_active", "gauge"),
        ("connections_rejected", "counter"),
        ("statements", "counter"),
        ("rows_shipped", "counter"),
        ("bytes_in", "counter"),
        ("bytes_out", "counter"),
        ("replication_streams", "gauge"),
        ("wal_chunks_shipped", "counter"),
        ("wal_bytes_shipped", "counter"),
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        self._instruments = {
            name: (registry.counter if kind == "counter" else registry.gauge)(
                f"server_{name}"
            )
            for name, kind in self._SPEC
        }

    def add(self, **deltas: int) -> None:
        """Add ``deltas`` to the named counters (gauges take negatives)."""
        instruments = self._instruments
        for name, delta in deltas.items():
            instruments[name].inc(delta)

    def snapshot(self) -> dict[str, int]:
        """A copy of every counter, in the historical flat-dict shape."""
        return {name: int(i.value) for name, i in self._instruments.items()}


class _Cursor:
    """Rows of one statement awaiting FETCH, plus the read position."""

    __slots__ = ("rows", "position")

    def __init__(self, rows: list[tuple[object, ...]], position: int) -> None:
        self.rows = rows
        self.position = position


class _ClientHandler(threading.Thread):
    """One connection: handshake, then a request/response loop."""

    #: Bound on open cursors per connection: a client that abandons result
    #: sets without draining (or closing) them must not grow server memory
    #: without limit, so the oldest cursor is dropped once the cap is hit.
    MAX_CURSORS = 64
    #: Bound on prepared-statement registrations per connection, for the
    #: same reason.  Deliberately larger than the netclient's 256-entry
    #: client-side cache (which CLOSE_STATEMENTs its own evictions), so a
    #: well-behaved client never has a registration dropped under it.
    MAX_STATEMENTS = 1024

    def __init__(self, server: "SqlServer", sock: socket.socket, peer) -> None:
        super().__init__(name=f"sql-server-client-{peer}", daemon=True)
        self._server = server
        self._sock = sock
        self._session: Optional[Session] = None
        self._cursors: dict[int, _Cursor] = {}
        self._statements: dict[int, str] = {}
        self._next_cursor_id = 1
        self._next_stmt_id = 1
        self._read_side_open = True

    # -- lifecycle ----------------------------------------------------------

    def run(self) -> None:
        stats = self._server.stats
        try:
            self._sock.settimeout(self._server.idle_timeout)
            rfile = self._sock.makefile("rb")
            if not self._handshake(rfile):
                return
            self._session = self._server.database.session(autocommit=True)
            while not self._server.stopping:
                try:
                    payload = protocol.read_frame(rfile)
                    if payload is None:
                        return  # clean disconnect
                    stats.add(bytes_in=len(payload) + 8)
                    message = protocol.decode_client_message(payload)
                except SqlError as error:
                    # Torn/corrupt framing or an undecodable payload (a
                    # CRC-valid frame can still fail field decoding): the
                    # stream cannot be resynchronised, so tell the client
                    # why (best effort) and drop the connection.
                    self._try_send(protocol.encode_error(
                        "ProtocolError", str(error), self._in_transaction
                    ))
                    return
                if message.op == protocol.GOODBYE:
                    self._try_send(protocol.encode_ok(self._in_transaction))
                    return
                if message.op == protocol.REPLICATE:
                    # The connection becomes a one-way WAL stream and never
                    # returns to request/response.
                    self._stream_wal(message)
                    return
                if message.op == protocol.BOOTSTRAP:
                    # Multi-frame response (snapshot chunks + a terminating
                    # LSN), then back to request/response — the replica
                    # follows up with REPLICATE on the same connection.
                    self._stream_snapshot()
                    continue
                self._send(self._dispatch(message))
        except (OSError, ValueError):
            # Timeout, reset, or a socket torn down by shutdown()/kill():
            # treated as a disconnect.
            pass
        finally:
            if self._session is not None:
                # Rolls back any transaction the client abandoned.
                self._session.close()
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
            self._server._unregister(self)
            stats.add(connections_active=-1)

    def shutdown_read(self) -> None:
        """Interrupt a blocked ``recv`` without cutting off a response.

        Shutting down only the read side lets a handler that is mid-
        statement finish and send its RESULT before it notices the EOF —
        this is what "drain in-flight statements" means.
        """
        if self._read_side_open:
            self._read_side_open = False
            try:
                self._sock.shutdown(socket.SHUT_RD)
            except OSError:
                pass

    def kill(self) -> None:
        """Tear the socket down hard (simulated crash)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # -- protocol steps -----------------------------------------------------

    def _handshake(self, rfile) -> bool:
        try:
            payload = protocol.read_frame(rfile)
            if payload is None:
                return False
            self._server.stats.add(bytes_in=len(payload) + 8)
            message = protocol.decode_client_message(payload)
        except SqlError as error:
            # Anything that is not a protocol frame — an HTTP probe, a
            # port scanner, line noise — gets a structured rejection.
            self._try_send(protocol.encode_error("ProtocolError", str(error), False))
            return False
        if message.op != protocol.HELLO:
            self._try_send(protocol.encode_error(
                "ProtocolError",
                f"expected HELLO, got {message.op_name}",
                False,
            ))
            return False
        if message.version not in protocol.SUPPORTED_VERSIONS:
            self._try_send(protocol.encode_error(
                "ProtocolError",
                f"protocol version mismatch: client speaks "
                f"{message.version}, server speaks "
                f"{', '.join(str(v) for v in protocol.SUPPORTED_VERSIONS)}",
                False,
            ))
            return False
        # Echo the client's (accepted) version so a v1 client sees v1.
        self._send(protocol.encode_hello_ok(
            version=message.version, banner=self._server.banner
        ))
        return True

    def _dispatch(self, message: protocol.ClientMessage) -> bytes:
        t0 = time.perf_counter()
        try:
            return self._handle(message)
        except Exception as error:  # noqa: BLE001 - every engine error maps
            # Statement-level atomicity is the engine's: a failed statement
            # has already been undone, an open transaction stays open.  The
            # connection survives the error.
            return protocol.encode_error(
                protocol.error_class_name(error), str(error), self._in_transaction
            )
        finally:
            self._server._request_latency.observe(time.perf_counter() - t0)

    def _start_span(self, message: protocol.ClientMessage, name: str):
        """An :class:`ActiveSpan` for a request carrying a sampled trace
        context, or ``None`` (the common case: no per-request cost)."""
        trace = message.trace
        if trace is None or not trace.sampled:
            return None
        database = self._server.database
        return database.trace_buffer.start_span(trace, name, node=database.node_name)

    def _traced_call(self, message: protocol.ClientMessage, name: str, call):
        """Run ``call`` under a span when the request is traced; the call's
        wall time becomes a phase of the same name."""
        span = self._start_span(message, name)
        if span is None:
            return call()
        if message.gid:
            span.tag(gid=message.gid)
        t0 = time.perf_counter()
        try:
            result = call()
        except Exception as error:
            span.finish(error)
            raise
        span.phase(name, time.perf_counter() - t0)
        span.finish()
        return result

    def _handle(self, message: protocol.ClientMessage) -> bytes:
        op = message.op
        session = self._session
        assert session is not None
        if op == protocol.EXECUTE:
            self._check_writable(message.sql)
            self._server.stats.add(statements=1)
            return self._result_frame(
                session.execute(message.sql, message.params, trace=message.trace),
                message.max_rows,
            )
        if op == protocol.EXECUTE_PREPARED:
            sql = self._statements.get(message.stmt_id)
            if sql is None:
                raise SqlExecutionError(
                    f"unknown prepared statement id {message.stmt_id}"
                )
            self._check_writable(sql)
            self._server.stats.add(statements=1)
            return self._result_frame(
                session.execute(sql, message.params, trace=message.trace),
                message.max_rows,
            )
        if op == protocol.PREPARE:
            # A server-side prepared statement is the registered SQL text:
            # the engine's shared statement/plan cache (keyed by that text)
            # does the real work, so repeated executions reuse one plan.
            stmt_id = self._next_stmt_id
            self._next_stmt_id += 1
            self._statements[stmt_id] = message.sql
            while len(self._statements) > self.MAX_STATEMENTS:
                # dict preserves insertion order: drop the oldest one.
                self._statements.pop(next(iter(self._statements)))
            return protocol.encode_prepared(stmt_id, self._in_transaction)
        if op == protocol.FETCH:
            return self._traced_call(
                message, "fetch",
                lambda: self._fetch_frame(message.cursor_id, message.max_rows),
            )
        if op == protocol.CLOSE_CURSOR:
            self._cursors.pop(message.cursor_id, None)
            return protocol.encode_ok(self._in_transaction)
        if op == protocol.CLOSE_STATEMENT:
            self._statements.pop(message.stmt_id, None)
            return protocol.encode_ok(self._in_transaction)
        if op == protocol.BEGIN:
            session.begin()
            return protocol.encode_ok(self._in_transaction)
        if op == protocol.COMMIT:
            span = self._start_span(message, "commit")
            if span is None:
                session.commit()
            else:
                # Publish the span to the session so the engine attributes
                # the commit's WAL fsync to it as a ``wal_fsync`` phase.
                session._stmt_obs = span
                try:
                    session.commit()
                except Exception as error:
                    span.finish(error)
                    raise
                finally:
                    session._stmt_obs = None
                span.finish()
            # The commit's LSN rides on the acknowledgement so clients get
            # read-your-writes tokens without an extra round trip.
            return protocol.encode_ok(
                self._in_transaction, lsn=self._server.wal_position()
            )
        if op == protocol.ROLLBACK:
            session.rollback()
            return protocol.encode_ok(self._in_transaction)
        if op == protocol.SET_AUTOCOMMIT:
            # JDBC semantics, as in the embedded driver: enabling
            # auto-commit while a transaction is open commits it.
            if message.flag and session.in_transaction:
                session.commit()
            session.autocommit = message.flag
            return protocol.encode_ok(self._in_transaction)
        if op == protocol.EXPLAIN:
            return protocol.encode_explained(
                self._server.database.explain(message.sql), self._in_transaction
            )
        if op == protocol.CHECKPOINT:
            if self._server.read_only:
                raise ReadOnlyError(
                    "CHECKPOINT rejected: this server is a read-only replica"
                )
            if session.in_transaction:
                raise SqlExecutionError(
                    "CHECKPOINT cannot run inside an open transaction"
                )
            self._server.database.checkpoint()
            return protocol.encode_ok(self._in_transaction)
        if op == protocol.SERVER_STATS:
            return protocol.encode_stats(
                json.dumps(self._server.server_stats()), self._in_transaction
            )
        if op == protocol.PING:
            return protocol.encode_ok(self._in_transaction)
        if op == protocol.WAL_POSITION:
            epoch, offset = self._server.wal_position()
            return protocol.encode_lsn(epoch, offset, self._in_transaction)
        if op == protocol.WAIT_LSN:
            return self._wait_lsn_frame(message)
        if op == protocol.PROMOTE:
            replica = self._server.replica
            if replica is None:
                raise SqlExecutionError(
                    "PROMOTE rejected: this server is not a replica"
                )
            replica.promote(data_dir=message.data_dir or None)
            return protocol.encode_ok(
                self._in_transaction, lsn=self._server.wal_position()
            )
        if op == protocol.PREPARE_TXN:
            if self._server.read_only:
                raise ReadOnlyError(
                    "PREPARE_TXN rejected: this server is a read-only replica"
                )
            self._traced_call(
                message, "2pc_prepare",
                lambda: session.prepare_transaction(message.gid),
            )
            return protocol.encode_ok(
                self._in_transaction, lsn=self._server.wal_position()
            )
        if op == protocol.COMMIT_PREPARED:
            if self._server.read_only:
                raise ReadOnlyError(
                    "COMMIT_PREPARED rejected: this server is a read-only replica"
                )
            self._traced_call(
                message, "2pc_commit",
                lambda: self._server.database.commit_prepared(message.gid),
            )
            return protocol.encode_ok(
                self._in_transaction, lsn=self._server.wal_position()
            )
        if op == protocol.ABORT_PREPARED:
            if self._server.read_only:
                raise ReadOnlyError(
                    "ABORT_PREPARED rejected: this server is a read-only replica"
                )
            self._traced_call(
                message, "2pc_abort",
                lambda: self._server.database.rollback_prepared(message.gid),
            )
            return protocol.encode_ok(
                self._in_transaction, lsn=self._server.wal_position()
            )
        if op == protocol.TRACES:
            database = self._server.database
            document = {
                "node": database.node_name,
                "spans": database.traces(message.trace_id or None),
            }
            return protocol.encode_stats(
                json.dumps(document), self._in_transaction
            )
        if op == protocol.METRICS:
            return protocol.encode_stats(
                self._server.database.render_metrics(), self._in_transaction
            )
        if op == protocol.LIST_PREPARED:
            # Works on replicas too: a coordinator resolving in-doubt
            # transactions may reach a node in either role.
            return protocol.encode_stats(
                json.dumps(self._server.database.prepared_gids()),
                self._in_transaction,
            )
        raise protocol.ProtocolError(f"unexpected opcode {message.op_name}")

    def _check_writable(self, sql: str) -> None:
        """Reject write statements on a read-only (replica) server."""
        server = self._server
        if server.read_only and not server.database.statement_is_read_only(sql):
            raise ReadOnlyError(
                "statement rejected: this server is a read-only replica; "
                "send writes to the primary"
            )

    def _wait_lsn_frame(self, message: protocol.ClientMessage) -> bytes:
        """Block until the applied position reaches the requested LSN.

        On a replica this waits on the replayed watermark (the read-your-
        writes barrier); on a primary the end of the log is already at or
        past any LSN it ever handed out, so it answers immediately.
        """
        target = (message.epoch, message.offset)
        replica = self._server.replica
        if replica is not None:
            timeout = message.timeout_ms / 1000.0
            if not replica.wait_for(target, timeout):
                raise SqlExecutionError(
                    f"WAIT_LSN timed out after {message.timeout_ms}ms: "
                    f"watermark {replica.watermark} has not reached {target}"
                )
        epoch, offset = self._server.wal_position()
        return protocol.encode_lsn(epoch, offset, self._in_transaction)

    # -- the replication stream ----------------------------------------------

    #: Seconds a caught-up stream waits for an append signal before
    #: re-checking the stop flag and the peer's liveness.
    _STREAM_TICK = 0.05

    def _stream_wal(self, message: protocol.ClientMessage) -> None:
        """Ship raw WAL frames to a replica until it disconnects.

        The tailer reads complete frames from the log chain (following
        epoch rollover); an Event registered with the durability manager
        wakes the loop as soon as a commit appends, so replication lag is
        bounded by fsync latency rather than a polling interval.
        """
        from repro.replication.tailer import WalTailer

        server = self._server
        database = server.database
        manager = database.durability_manager
        if manager is None:
            self._try_send(protocol.encode_error(
                "SqlExecutionError",
                "REPLICATE requires a durable primary (data_dir=...)", False,
            ))
            return
        if message.epoch == 0 and not manager.replication_bootstrappable():
            self._try_send(protocol.encode_error(
                "ReplicationError",
                "a checkpoint already truncated the log; a new replica "
                "cannot bootstrap from the log alone — attach replicas "
                "before the first checkpoint", False,
            ))
            return
        stats = server.stats
        tailer = WalTailer(manager.data_dir, message.epoch, message.offset)
        event = manager.watch_appends()
        stats.add(replication_streams=1)
        try:
            # Greeting: the primary's current end of log, so the replica
            # knows how far behind it starts.
            epoch, offset = manager.wal_position()
            self._send(protocol.encode_lsn(epoch, offset))
            while not server.stopping:
                chunk = tailer.next_chunk(server.replication_chunk_bytes)
                if chunk is None:
                    if self._peer_gone():
                        return
                    event.wait(self._STREAM_TICK)
                    event.clear()
                    continue
                chunk_epoch, start, end, data = chunk
                self._send(protocol.encode_wal_chunk(chunk_epoch, start, end, data))
                stats.add(wal_chunks_shipped=1, wal_bytes_shipped=len(data))
        except SqlError as error:
            # A tailer failure (epoch gone, corrupt chain) is fatal for the
            # stream but reportable: the replica decides whether to re-seed.
            self._try_send(protocol.encode_error(
                protocol.error_class_name(error), str(error), False
            ))
        finally:
            manager.unwatch_appends(event)
            tailer.close()
            stats.add(replication_streams=-1)

    #: Snapshot bytes per SNAPSHOT_CHUNK frame — comfortably under the
    #: frame limit while keeping per-frame overhead negligible.
    _SNAPSHOT_CHUNK_BYTES = 1 << 18

    def _stream_snapshot(self) -> None:
        """Answer BOOTSTRAP: ship ``snapshot.db`` then the LSN it covers.

        A bare ``LSN (0, 0)`` (no chunks) means no snapshot exists yet and
        the replica should replicate from the start of the log.  The file
        is read in one go — checkpoints replace it atomically via rename,
        so the image is always internally consistent.
        """
        manager = self._server.database.durability_manager
        path = None if manager is None else os.path.join(manager.data_dir, SNAPSHOT_NAME)
        if path is None or not os.path.exists(path):
            self._send(protocol.encode_lsn(0, 0))
            return
        with open(path, "rb") as handle:
            data = handle.read()
        epoch = snapshot_epoch(data, source=path)
        for start in range(0, len(data), self._SNAPSHOT_CHUNK_BYTES):
            chunk = data[start:start + self._SNAPSHOT_CHUNK_BYTES]
            self._send(protocol.encode_snapshot_chunk(start, chunk))
        self._send(protocol.encode_lsn(epoch, 0))

    def _peer_gone(self) -> bool:
        """Whether the replica hung up (it never writes after REPLICATE,
        so a readable stream socket means EOF or reset)."""
        try:
            readable, _, _ = select.select([self._sock], [], [], 0)
        except (OSError, ValueError):
            return True
        return bool(readable)

    # -- response builders --------------------------------------------------

    @property
    def _in_transaction(self) -> bool:
        return self._session is not None and self._session.in_transaction

    #: Headroom under MAX_MESSAGE left for frame/field overhead when
    #: deciding whether an encoded batch fits on the wire.
    _FRAME_SLACK = 1 << 10

    def _result_frame(self, result: ResultSet, max_rows: int) -> bytes:
        rows = result.rows
        batch_end = len(rows) if not max_rows else min(max_rows, len(rows))
        while True:
            exhausted = batch_end >= len(rows)
            # The id is only *reserved* here; committed below once the
            # batch is known to fit (halving must not burn cursor ids).
            cursor_id = 0 if exhausted else self._next_cursor_id
            payload = protocol.encode_result(
                result.columns, rows[:batch_end], result.rowcount, cursor_id,
                self._in_transaction, exhausted,
                lsn=self._server.wal_position(),
            )
            # A batch of very wide rows can exceed the frame limit even
            # under the row-count cap; halve until it fits (a single row
            # beyond MAX_MESSAGE is a genuine protocol limit and is left
            # to the peer to reject).
            if len(payload) <= protocol.MAX_MESSAGE - self._FRAME_SLACK or batch_end <= 1:
                break
            batch_end = max(1, batch_end // 2)
        if not exhausted:
            self._next_cursor_id += 1
            self._cursors[cursor_id] = _Cursor(rows, batch_end)
            while len(self._cursors) > self.MAX_CURSORS:
                # LRU by last use (FETCH re-inserts): drop the stalest.
                self._cursors.pop(next(iter(self._cursors)))
        self._server.stats.add(rows_shipped=batch_end)
        return payload

    def _fetch_frame(self, cursor_id: int, max_rows: int) -> bytes:
        cursor = self._cursors.get(cursor_id)
        if cursor is None:
            raise SqlExecutionError(f"unknown cursor id {cursor_id}")
        # Re-insert so dict order is last-use order: MAX_CURSORS eviction
        # then drops abandoned cursors, never one being actively fetched.
        self._cursors[cursor_id] = self._cursors.pop(cursor_id)
        position = cursor.position
        end = len(cursor.rows) if not max_rows else min(
            position + max_rows, len(cursor.rows)
        )
        while True:
            batch = cursor.rows[position:end]
            exhausted = end >= len(cursor.rows)
            payload = protocol.encode_rows(
                batch, 0 if exhausted else cursor_id, self._in_transaction, exhausted
            )
            if len(payload) <= protocol.MAX_MESSAGE - self._FRAME_SLACK or len(batch) <= 1:
                break
            end = position + max(1, len(batch) // 2)
        cursor.position = end
        if exhausted:
            del self._cursors[cursor_id]
        self._server.stats.add(rows_shipped=len(batch))
        return payload

    # -- socket helpers ------------------------------------------------------

    def _send(self, payload: bytes) -> None:
        framed = protocol.frame(payload)
        self._sock.sendall(framed)
        self._server.stats.add(bytes_out=len(framed))

    def _try_send(self, payload: bytes) -> None:
        try:
            self._send(payload)
        except OSError:
            pass


class SqlServer:
    """A concurrent SQL server around one engine instance.

    Usage::

        with SqlServer(database=my_database) as server:
            host, port = server.address
            ...

    or durable and self-owned::

        server = SqlServer(data_dir="/var/lib/repro")
        server.start()
        ...
        server.shutdown()
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        data_dir: Optional[str] = None,
        durability: Optional[DurabilityOptions] = None,
        max_connections: int = 64,
        backlog: int = 16,
        idle_timeout: Optional[float] = None,
        close_database: Optional[bool] = None,
        banner: str = "repro-sql-server",
        read_only: bool = False,
        replication_chunk_bytes: Optional[int] = None,
    ) -> None:
        if database is not None and data_dir is not None:
            raise SqlExecutionError("pass either a database or a data_dir, not both")
        owns_database = database is None
        if database is None:
            database = Database(data_dir=data_dir, durability=durability)
        self.database = database
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.backlog = backlog
        self.idle_timeout = idle_timeout
        self.banner = banner
        #: Whether shutdown() also closes the engine.  Defaults to closing
        #: only a database this server created; a caller-owned engine stays
        #: open unless explicitly requested otherwise.
        self.close_database = owns_database if close_database is None else close_database
        #: Reject write statements (replica mode); promotion clears it.
        self.read_only = read_only
        #: Back-reference set by :class:`repro.replication.ReplicaServer`
        #: so WAIT_LSN/PROMOTE and SERVER_STATS reach the applier.
        self.replica = None
        #: Max WAL bytes per shipped chunk (None = the tailer's default).
        #: Fault-injection tests shrink this to cut streams between small
        #: chunks at byte-exact offsets.
        self.replication_chunk_bytes = replication_chunk_bytes
        if database.node_name == "engine":
            # Attribute this node's spans and slow-query lines to the
            # server's banner ("primary", "shard0", ...) instead of the
            # engine default.
            database.node_name = banner
            database.slow_log.node = banner
        #: Server counters live on the engine's registry, so SERVER_STATS,
        #: Database.render_metrics() and a Prometheus scrape all agree.
        self.stats = ServerStats(registry=database.metrics)
        self._request_latency = database.metrics.histogram(
            "server_request_latency_seconds",
            help="Wall time handling one client request frame",
        )
        self.stopping = False
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: set[_ClientHandler] = set()
        self._handlers_lock = threading.Lock()
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SqlServer":
        """Bind, listen and start accepting connections in the background."""
        if self._started:
            raise SqlExecutionError("server is already running")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(self.backlog)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._started = True
        self.stopping = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="sql-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) the server is listening on."""
        return (self.host, self.port)

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful stop: drain in-flight statements, then close the engine.

        New connections are refused immediately; handlers waiting for a
        request see EOF; handlers executing a statement finish it and send
        the response before closing.  The database is closed last (when
        this server owns it, or ``close_database=True``), which makes the
        write-ahead log durable on a durable engine.
        """
        self._stop_listening()
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.shutdown_read()
        for handler in handlers:
            handler.join(timeout)
        if self.close_database:
            self.database.close()

    def kill(self) -> None:
        """Simulated crash: sockets torn down, the database NOT closed.

        Exists for the recovery tests — after ``kill()`` the data directory
        must recover exactly the committed prefix of the write-ahead log,
        the same contract as a process crash.
        """
        self._stop_listening()
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.kill()
        for handler in handlers:
            handler.join(5.0)

    def __enter__(self) -> "SqlServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- observability -------------------------------------------------------

    def wal_position(self) -> tuple[int, int]:
        """The LSN this node stamps on responses: a primary's end of log,
        or a replica's replayed watermark (its in-memory engine has no log,
        so the watermark *is* its position in the primary's history)."""
        if self.replica is not None:
            return self.replica.watermark
        return self.database.wal_position()

    def server_stats(self) -> dict[str, object]:
        """The SERVER_STATS document: server counters + engine statistics."""
        return {
            "server": self.stats.snapshot(),
            "max_connections": self.max_connections,
            "engine": self.database.stats(),
            "replication": self.replication_stats(),
        }

    def replication_stats(self) -> dict[str, object]:
        """The ``replication`` section: node role, position and stream
        counters (a replica's applier stats ride along via its back-ref)."""
        snapshot = self.stats.snapshot()
        stats: dict[str, object] = {
            "role": "replica" if self.read_only else "primary",
            "wal_position": list(self.wal_position()),
            "streams": snapshot["replication_streams"],
            "wal_chunks_shipped": snapshot["wal_chunks_shipped"],
            "wal_bytes_shipped": snapshot["wal_bytes_shipped"],
        }
        if self.replica is not None:
            stats.update(self.replica.stats())
        return stats

    # -- internals -----------------------------------------------------------

    def _stop_listening(self) -> None:
        self.stopping = True
        listener = self._listener
        if listener is not None:
            self._listener = None
            # Closing a socket does not wake a thread blocked in accept()
            # on Linux; shutdown() does (and the close makes it final).
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(5.0)
            self._accept_thread = None
        self._started = False

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self.stopping and listener is not None:
            try:
                sock, peer = listener.accept()
            except OSError:
                return  # listener closed by shutdown()/kill()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._handlers_lock:
                active = len(self._handlers)
                admitted = active < self.max_connections and not self.stopping
                if admitted:
                    handler = _ClientHandler(self, sock, peer)
                    self._handlers.add(handler)
            if not admitted:
                # Admission control: answer with a structured error so the
                # client can tell "server full" from a network failure.
                self.stats.add(connections_rejected=1)
                try:
                    sock.sendall(protocol.frame(protocol.encode_error(
                        "SqlExecutionError",
                        f"server at capacity (max_connections={self.max_connections})",
                        False,
                    )))
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            self.stats.add(connections_accepted=1, connections_active=1)
            handler.start()

    def _unregister(self, handler: _ClientHandler) -> None:
        with self._handlers_lock:
            self._handlers.discard(handler)
