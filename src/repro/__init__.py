"""Queryll reproduction: Java-style database queries through bytecode rewriting.

This package reproduces the system described in *Queryll: Java Database
Queries through Bytecode Rewriting* (Iu & Zwaenepoel, MIDDLEWARE 2006).

Layout
------
``repro.core``
    The paper's contribution: three-address IR, control-flow analysis, loop
    and path extraction, backward symbolic substitution, query-tree
    construction and SQL generation, plus the bytecode rewriter driver.
``repro.jvm``
    A stack-based mini-JVM substrate (classfiles, assembler, verifier,
    interpreter) standing in for Java bytecode + the JVM.
``repro.minijava``
    A small Java-like source language and compiler producing mini-JVM
    bytecode (the "Java compiler" box of the paper's Fig. 9).
``repro.pyfrontend``
    A second frontend that rewrites *real CPython bytecode* of plain Python
    for-loops via the same pipeline (``@query`` decorator).
``repro.sqlengine`` / ``repro.dbapi``
    An in-memory SQL engine and a JDBC-like driver standing in for
    PostgreSQL + JDBC.
``repro.orm``
    The light-weight object-relational mapping layer (EntityManager,
    QuerySet, Pair, sorters).
``repro.server`` / ``repro.netclient``
    The network layer: a binary wire protocol and threaded SQL server over
    one engine, and the remote dbapi driver (with client-side connection
    pooling) presenting the same surface as ``repro.dbapi``.
``repro.tpcw``
    The TPC-W-derived microbenchmark used in the paper's evaluation.
``repro.bench``
    Timing and reporting helpers used by the benchmark harness.
"""

from __future__ import annotations

from repro.errors import (
    BytecodeError,
    CompileError,
    OrmError,
    ReproError,
    RewriteError,
    SqlError,
    UnsupportedQueryError,
)

__version__ = "1.0.0"

__all__ = [
    "BytecodeError",
    "CompileError",
    "OrmError",
    "ReproError",
    "RewriteError",
    "SqlError",
    "UnsupportedQueryError",
    "__version__",
]
