"""Top-level exception hierarchy shared by every repro subsystem.

Each subsystem defines more specific exceptions deriving from these so that
callers can either catch a precise error (``SqlParseError``) or a whole family
(``ReproError``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro packages."""


class RewriteError(ReproError):
    """The Queryll rewriter could not translate a query method to SQL.

    Per the paper, this is not fatal: the unmodified bytecode still executes
    correctly (just inefficiently), so callers normally log the failure and
    fall back to interpreted execution.
    """


class UnsupportedQueryError(RewriteError):
    """The query uses a construct outside the translatable subset.

    Examples from the paper: aggregation, GROUP BY, nested queries, LIKE,
    premature loop exits, or side effects inside the loop body.
    """


class BytecodeError(ReproError):
    """Malformed or unverifiable bytecode was given to the mini-JVM."""


class SqlError(ReproError):
    """Base class for errors raised by the in-memory SQL engine."""


class OrmError(ReproError):
    """Base class for errors raised by the ORM layer."""


class CompileError(ReproError):
    """Base class for errors raised by the MiniJava compiler."""
