"""Shared test/benchmark fixtures: the paper's bank example database.

Both the tier-1 test suite (``tests/conftest.py``) and the benchmark suite
(``benchmarks/conftest.py``) need the Client/Account/Office mapping used
throughout the paper's figures.  It lives here, in an importable module, so
the two conftest files do not have to reach into each other via ``sys.path``
tricks (which previously produced a circular self-import that broke test
collection).
"""

from __future__ import annotations

from repro.orm import (
    EntityMapping,
    FieldMapping,
    OrmMapping,
    QueryllDatabase,
    RelationshipMapping,
)
from repro.sqlengine.catalog import SqlType

BANK_CLIENTS = [
    (1000, "Alice", "1 Main Street", "Canada", "K1A 0A1"),
    (1001, "Bob", "2 Rue du Lac", "Switzerland", "1015"),
    (1002, "Carol", "3 Elm Avenue", "Canada", "V5K 0A4"),
    (1003, "Dave", "4 High Street", "United Kingdom", "SW1A"),
]

BANK_ACCOUNTS = [
    (1, 1000, 500.0, 100.0),
    (2, 1000, 50.0, 100.0),
    (3, 1001, 900.0, 0.0),
    (4, 1001, -25.0, 50.0),
    (5, 1002, 10.0, 20.0),
    (6, 1003, 10000.0, 500.0),
]

BANK_OFFICES = [
    (1, "Seattle", "United States"),
    (2, "LA", "United States"),
    (3, "Geneva", "Switzerland"),
    (4, "Toronto", "Canada"),
]


def make_bank_mapping() -> OrmMapping:
    """The Client/Account/Office mapping used throughout the paper's figures."""
    return OrmMapping(
        [
            EntityMapping(
                "Client",
                "Client",
                fields=[
                    FieldMapping("clientId", "ClientID", SqlType.INTEGER, primary_key=True),
                    FieldMapping("name", "Name", SqlType.TEXT),
                    FieldMapping("address", "Address", SqlType.TEXT),
                    FieldMapping("country", "Country", SqlType.TEXT),
                    FieldMapping("postalCode", "PostalCode", SqlType.TEXT),
                ],
                relationships=[
                    RelationshipMapping("accounts", "Account", "ClientID", "ClientID", "to_many"),
                ],
            ),
            EntityMapping(
                "Account",
                "Account",
                fields=[
                    FieldMapping("accountId", "AccountID", SqlType.INTEGER, primary_key=True),
                    FieldMapping("clientId", "ClientID", SqlType.INTEGER),
                    FieldMapping("balance", "Balance", SqlType.DOUBLE),
                    FieldMapping("minBalance", "MinBalance", SqlType.DOUBLE),
                ],
                relationships=[
                    RelationshipMapping("holder", "Client", "ClientID", "ClientID", "to_one"),
                ],
            ),
            EntityMapping(
                "Office",
                "Office",
                fields=[
                    FieldMapping("officeId", "OfficeID", SqlType.INTEGER, primary_key=True),
                    FieldMapping("name", "Name", SqlType.TEXT),
                    FieldMapping("country", "Country", SqlType.TEXT),
                ],
            ),
        ]
    )


def make_bank_db() -> QueryllDatabase:
    """A populated bank database."""
    database = QueryllDatabase(make_bank_mapping())
    database.database.insert_rows("Client", BANK_CLIENTS)
    database.database.insert_rows("Account", BANK_ACCOUNTS)
    database.database.insert_rows("Office", BANK_OFFICES)
    return database


#: The paper's Fig. 10 running example (the Seattle/LA office query),
#: shared by the benchmark fixtures and the standalone benchmark mains.
OFFICE_QUERY_SOURCE = """
class OfficeQueries {
    @Query
    QuerySet<Office> westCoast(EntityManager em, QuerySet<Office> westcoast) {
        for (Office of : em.allOffice()) {
            if (of.getName().equals("Seattle"))
                westcoast.add(of);
            else if (of.getName().equals("LA"))
                westcoast.add(of);
        }
        return westcoast;
    }
}
"""
