"""Hash-partitioned sharding: a distributed query coordinator.

The package splits the database horizontally across N independent shard
nodes — each a stock :class:`~repro.server.SqlServer` (optionally fronted
by replicas behind a :class:`~repro.netclient.pool.ReplicatedConnectionPool`)
— and puts a :class:`~repro.sharding.coordinator.ShardedDatabase` in front
that speaks the engine's Database surface, so the unchanged wire server,
dbapi driver and ORM all run against the fleet.

* :mod:`~repro.sharding.shardmap` — the versioned catalog mapping each
  sharded table's partition key to a shard by deterministic hash.
* :mod:`~repro.sharding.router` — statement classification: single-shard,
  fan-out + merge, gather (multi-shard join), or broadcast.
* :mod:`~repro.sharding.sqlgen` — AST-to-SQL rendering with parameters
  inlined, for the rewritten per-shard statements.
* :mod:`~repro.sharding.journal` — the coordinator's durable decision log
  for two-phase commit (in-doubt recovery).
* :mod:`~repro.sharding.coordinator` — the facade: routed execution,
  distributed transactions, fan-out merge and EXPLAIN surfacing.
"""

from repro.sharding.coordinator import ShardedDatabase, ShardedSession
from repro.sharding.journal import DecisionJournal
from repro.sharding.shardmap import ShardMap, partition_hash

__all__ = [
    "DecisionJournal",
    "ShardMap",
    "ShardedDatabase",
    "ShardedSession",
    "partition_hash",
]
