"""The shard map: a versioned catalog of where every table's rows live.

A :class:`ShardMap` declares, for each *sharded* table, the partition
column whose value picks the owning shard by deterministic hash modulo
the shard count.  Tables absent from the map are *global*: every shard
holds a full copy (writes broadcast, reads go anywhere), which keeps
small reference tables joinable on every node without cross-shard data
movement.

The map carries a monotonically increasing ``version``.  Sessions capture
the version when a distributed transaction starts; if the coordinator
installs a newer map before the commit point, the transaction aborts with
:class:`~repro.sqlengine.errors.StaleShardMapError` rather than commit
row placements computed against a superseded topology.

Hashing must be stable across processes and Python runs (``hash(str)`` is
randomized per-process), so :func:`partition_hash` uses the value itself
for integers and CRC-32 of the UTF-8 encoding for strings.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.sqlengine.errors import ShardError


def partition_hash(value: object) -> int:
    """A process-stable hash of a partition-key value.

    Only integers (including bools, which the engine stores as a distinct
    type but which hash by their integer value) and strings make sound
    partition keys; ``None`` and floats are rejected because their
    placement would be ambiguous (NULL matches no equality predicate,
    floats compare across representations).
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    raise ShardError(
        f"value {value!r} of type {type(value).__name__} cannot be used as "
        "a partition key (use an INTEGER or TEXT column)"
    )


@dataclass(frozen=True)
class ShardMap:
    """Immutable table -> partition-key catalog for a fleet of shards."""

    #: Monotonic topology version; stale versions are rejected at commit.
    version: int
    #: Number of shard nodes; ``partition_hash(key) % num_shards`` owns a row.
    num_shards: int
    #: Lower-cased table name -> lower-cased partition column.  Tables not
    #: listed are global (replicated in full on every shard).
    tables: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ShardError("a shard map needs at least one shard")
        if self.version < 1:
            raise ShardError("shard map versions start at 1")
        normalized = {
            name.lower(): column.lower() for name, column in self.tables.items()
        }
        object.__setattr__(self, "tables", normalized)

    def is_sharded(self, table: str) -> bool:
        """True when ``table`` is hash-partitioned (not global)."""
        return table.lower() in self.tables

    def key_for(self, table: str) -> str | None:
        """The partition column of ``table``, or None for global tables."""
        return self.tables.get(table.lower())

    def shard_of(self, table: str, key_value: object) -> int:
        """The shard index owning the row with this partition-key value."""
        if not self.is_sharded(table):
            raise ShardError(f"table {table!r} is not sharded")
        return partition_hash(key_value) % self.num_shards

    def with_version(self, version: int) -> "ShardMap":
        """A copy of this map stamped with a new version."""
        return ShardMap(
            version=version, num_shards=self.num_shards, tables=dict(self.tables)
        )
