"""Render parsed AST nodes back into SQL text for per-shard execution.

The coordinator parses each incoming statement once, classifies it, and
then sends (possibly rewritten) statements to the shard nodes over the
ordinary wire protocol — which carries SQL text.  This module is the
inverse of the parser for the supported dialect.

Parameters are inlined as literals at render time: the coordinator binds
``?`` placeholders against the caller-supplied argument tuple so each
shard receives a self-contained statement.  That keeps the fan-out logic
independent of how many shards a parameterized statement ultimately
reaches (each rewritten fragment may keep a different subset of the
original conjuncts).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import ShardError


def render_value(value: object) -> str:
    """A SQL literal for a Python value (the dbapi binding types)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise ShardError(f"cannot render {type(value).__name__} value as SQL")


def render_expression(expr: ast.Expression, params: Sequence[object]) -> str:
    """SQL text for an expression, with ``?`` parameters inlined."""
    if isinstance(expr, ast.Literal):
        return render_value(expr.value)
    if isinstance(expr, ast.Parameter):
        if params is None:
            # EXPLAIN renders without bindings: keep the placeholder (the
            # engine plans parameterized statements without values too).
            return "?"
        if expr.index >= len(params):
            raise ShardError(
                f"statement references parameter {expr.index + 1} but only "
                f"{len(params)} values were bound"
            )
        return render_value(params[expr.index])
    if isinstance(expr, ast.ColumnRef):
        if expr.table:
            return f"{expr.table}.{expr.column}"
        return expr.column
    if isinstance(expr, ast.UnaryOp):
        operand = render_expression(expr.operand, params)
        if expr.op.upper() == "NOT":
            return f"(NOT {operand})"
        return f"({expr.op}{operand})"
    if isinstance(expr, ast.BinaryOp):
        left = render_expression(expr.left, params)
        right = render_expression(expr.right, params)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, ast.IsNull):
        operand = render_expression(expr.operand, params)
        return f"({operand} IS {'NOT ' if expr.negated else ''}NULL)"
    if isinstance(expr, ast.InList):
        operand = render_expression(expr.operand, params)
        items = ", ".join(render_expression(item, params) for item in expr.items)
        return f"({operand} {'NOT ' if expr.negated else ''}IN ({items}))"
    if isinstance(expr, ast.FunctionCall):
        if expr.star:
            return f"{expr.name}(*)"
        args = ", ".join(render_expression(arg, params) for arg in expr.args)
        return f"{expr.name}({args})"
    raise ShardError(f"cannot render expression node {type(expr).__name__}")


def render_select_item(item: ast.SelectItem, params: Sequence[object]) -> str:
    if item.star:
        return "*"
    if item.table_star is not None:
        return f"{item.table_star}.*"
    assert item.expression is not None
    text = render_expression(item.expression, params)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def render_order_item(item: ast.OrderItem, params: Sequence[object]) -> str:
    text = render_expression(item.expression, params)
    if item.descending:
        text += " DESC"
    return text


def render_select(
    statement: ast.SelectStatement,
    params: Sequence[object],
    *,
    items: Optional[Sequence[str]] = None,
    where: Optional[str] = None,
    order_by: Optional[Sequence[str]] = None,
    limit: Optional[int] = None,
    offset: Optional[int] = None,
    drop_order: bool = False,
    drop_limit: bool = False,
) -> str:
    """SQL for a SELECT, with override hooks for per-shard rewrites.

    ``items`` / ``where`` / ``order_by`` replace the corresponding clause
    with pre-rendered text; ``limit`` / ``offset`` replace the bounds with
    explicit integers (the fan-out path pushes ``LIMIT limit+offset`` to
    each shard and re-applies the exact bounds after the merge).
    ``drop_order`` / ``drop_limit`` omit the clause entirely.
    """
    if items is None:
        items = [render_select_item(item, params) for item in statement.items]
    parts = ["SELECT "]
    if statement.distinct:
        parts.append("DISTINCT ")
    parts.append(", ".join(items))
    if statement.tables:
        tables = ", ".join(
            f"{ref.table} AS {ref.alias}" if ref.alias else ref.table
            for ref in statement.tables
        )
        parts.append(f" FROM {tables}")
    if where is None and statement.where is not None:
        where = render_expression(statement.where, params)
    if where:
        parts.append(f" WHERE {where}")
    if not drop_order:
        if order_by is None and statement.order_by:
            order_by = [render_order_item(item, params) for item in statement.order_by]
        if order_by:
            parts.append(" ORDER BY " + ", ".join(order_by))
    if not drop_limit:
        if limit is None and statement.limit is not None:
            limit_text = render_expression(statement.limit, params)
        elif limit is not None:
            limit_text = str(limit)
        else:
            limit_text = None
        if limit_text is not None:
            parts.append(f" LIMIT {limit_text}")
        if offset is None and statement.offset is not None:
            offset_text = render_expression(statement.offset, params)
        elif offset is not None and offset > 0:
            offset_text = str(offset)
        else:
            offset_text = None
        if offset_text is not None:
            parts.append(f" OFFSET {offset_text}")
    return "".join(parts)


def render_insert(
    statement: ast.InsertStatement,
    params: Sequence[object],
    rows: Optional[Sequence[tuple]] = None,
) -> str:
    """SQL for an INSERT; ``rows`` restricts to a subset of the VALUES
    tuples (the router splits multi-row inserts per owning shard)."""
    if rows is None:
        rows = statement.rows
    rendered = ", ".join(
        "(" + ", ".join(render_expression(expr, params) for expr in row) + ")"
        for row in rows
    )
    columns = ""
    if statement.columns:
        columns = " (" + ", ".join(statement.columns) + ")"
    return f"INSERT INTO {statement.table}{columns} VALUES {rendered}"


def render_update(statement: ast.UpdateStatement, params: Sequence[object]) -> str:
    assignments = ", ".join(
        f"{column} = {render_expression(expr, params)}"
        for column, expr in statement.assignments
    )
    text = f"UPDATE {statement.table} SET {assignments}"
    if statement.where is not None:
        text += f" WHERE {render_expression(statement.where, params)}"
    return text


def render_delete(statement: ast.DeleteStatement, params: Sequence[object]) -> str:
    text = f"DELETE FROM {statement.table}"
    if statement.where is not None:
        text += f" WHERE {render_expression(statement.where, params)}"
    return text
