"""Statement classification: which shards must a statement touch?

The router reuses the optimizer's building blocks — WHERE clauses are
split into top-level AND conjuncts (:func:`split_conjuncts`) and scanned
for ``partition_column = <literal or parameter>`` equality conjuncts, the
same pattern the planner uses to pick index lookups.  From the bound (or
unbound) partition keys it derives one of six routes:

``any``
    Only global tables are referenced; any single shard can answer
    (every shard holds a full copy).  The coordinator round-robins.
``single``
    Every sharded table's partition key is bound by an equality conjunct
    and they all hash to the same shard.
``fanout``
    One sharded table with an unbound key: run the (rewritten) statement
    on every shard and merge — union for scans, re-aggregation for
    aggregates, k-way merge for ORDER BY.
``gather``
    Two or more sharded tables that do not collapse onto one shard (a
    cross-shard join): pull the referenced slices to the coordinator and
    execute locally.
``broadcast``
    A write or DDL that must reach every shard: global-table writes,
    unkeyed UPDATE/DELETE on a sharded table, CREATE/DROP statements.
``split``
    A multi-row INSERT into a sharded table whose rows hash to different
    shards: the VALUES list is partitioned per owning shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import ShardError
from repro.sqlengine.expressions import collect_column_refs, split_conjuncts
from repro.sharding.shardmap import ShardMap
from repro.sharding.sqlgen import render_value

ANY = "any"
SINGLE = "single"
FANOUT = "fanout"
GATHER = "gather"
BROADCAST = "broadcast"
SPLIT = "split"


@dataclass
class Route:
    """The routing decision for one statement."""

    kind: str
    #: Shard indices the statement touches, in execution order.
    shards: tuple[int, ...]
    #: Human-readable routing note, surfaced through EXPLAIN.
    description: str
    #: For ``single`` routes keyed by a partition column:
    #: (table, column, value).
    key: Optional[tuple[str, str, object]] = None
    #: For ``split`` inserts: shard index -> VALUES-row indices.
    insert_groups: dict[int, list[int]] = field(default_factory=dict)


def _evaluate_constant(
    expr: ast.Expression, params: Sequence[object]
) -> tuple[bool, object]:
    """Evaluate a Literal or Parameter; (False, None) for anything else."""
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if isinstance(expr, ast.Parameter):
        if params is None:
            # Routing without bindings (EXPLAIN): the key is unknowable.
            return False, None
        if expr.index >= len(params):
            raise ShardError(
                f"statement references parameter {expr.index + 1} but only "
                f"{len(params)} values were bound"
            )
        return True, params[expr.index]
    return False, None


class Router:
    """Classifies parsed statements against a :class:`ShardMap`.

    ``schemas`` maps lower-cased table name to its column order, captured
    by the coordinator when CREATE TABLE broadcasts through it; it
    resolves the partition-key position for inserts that omit the column
    list.
    """

    def __init__(self, shard_map: ShardMap, schemas: dict[str, tuple[str, ...]]):
        self.shard_map = shard_map
        self.schemas = schemas

    def _all_shards(self) -> tuple[int, ...]:
        return tuple(range(self.shard_map.num_shards))

    # -- SELECT ---------------------------------------------------------------

    def route_select(
        self, statement: ast.SelectStatement, params: Sequence[object]
    ) -> Route:
        sharded = [
            ref for ref in statement.tables if self.shard_map.is_sharded(ref.table)
        ]
        if not sharded:
            return Route(ANY, self._all_shards(), "global tables only")
        conjuncts = split_conjuncts(statement.where)
        bound: dict[str, tuple[str, object, int]] = {}
        for ref in sharded:
            key = self._bind_partition_key(ref, statement, conjuncts, params)
            if key is not None:
                column, value = key
                bound[ref.binding.lower()] = (
                    column,
                    value,
                    self.shard_map.shard_of(ref.table, value),
                )
        if len(bound) == len(sharded):
            shards = {entry[2] for entry in bound.values()}
            if len(shards) == 1:
                ref = sharded[0]
                column, value, shard = bound[ref.binding.lower()]
                return Route(
                    SINGLE,
                    (shard,),
                    f"key={ref.table}.{column}={render_value(value)} -> shard {shard}",
                    key=(ref.table, column, value),
                )
            return Route(
                GATHER,
                self._all_shards(),
                "sharded tables pinned to different shards",
            )
        if len(sharded) == 1:
            ref = sharded[0]
            key = self.shard_map.key_for(ref.table)
            return Route(
                FANOUT,
                self._all_shards(),
                f"{ref.table}.{key} unbound -> fanout+merge",
            )
        return Route(
            GATHER,
            self._all_shards(),
            "cross-shard join over multiple sharded tables",
        )

    def _bind_partition_key(
        self,
        ref: ast.TableRef,
        statement: ast.SelectStatement,
        conjuncts: list[ast.Expression],
        params: Sequence[object],
    ) -> Optional[tuple[str, object]]:
        """(column, value) if an equality conjunct pins ``ref``'s key."""
        partition_column = self.shard_map.key_for(ref.table)
        assert partition_column is not None
        binding = ref.binding.lower()
        sole_table = len(statement.tables) == 1
        for conjunct in conjuncts:
            if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
                continue
            left, right = conjunct.left, conjunct.right
            for column_side, value_side in ((left, right), (right, left)):
                if not isinstance(column_side, ast.ColumnRef):
                    continue
                if column_side.column.lower() != partition_column:
                    continue
                if column_side.table is None:
                    # An unqualified reference is only unambiguous when
                    # there is a single table in scope.
                    if not sole_table:
                        continue
                elif column_side.table.lower() != binding:
                    continue
                if collect_column_refs(value_side):
                    continue
                known, value = _evaluate_constant(value_side, params)
                if known:
                    return column_side.column.lower(), value
        return None

    # -- writes ---------------------------------------------------------------

    def route_insert(
        self, statement: ast.InsertStatement, params: Sequence[object]
    ) -> Route:
        table = statement.table.lower()
        if not self.shard_map.is_sharded(table):
            return Route(BROADCAST, self._all_shards(), "insert into global table")
        partition_column = self.shard_map.key_for(table)
        columns = statement.columns or self.schemas.get(table, ())
        if not columns:
            raise ShardError(
                f"cannot place rows for sharded table {table!r}: unknown "
                "column order (create the table through the coordinator or "
                "name the columns in the INSERT)"
            )
        lowered = [column.lower() for column in columns]
        if partition_column not in lowered:
            raise ShardError(
                f"INSERT into sharded table {table!r} must supply the "
                f"partition key column {partition_column!r}"
            )
        position = lowered.index(partition_column)
        groups: dict[int, list[int]] = {}
        key_value: object = None
        for index, row in enumerate(statement.rows):
            if position >= len(row):
                raise ShardError(
                    f"INSERT row {index + 1} has no value for partition key "
                    f"{partition_column!r}"
                )
            known, value = _evaluate_constant(row[position], params)
            if not known:
                raise ShardError(
                    f"partition key {partition_column!r} must be a literal or "
                    "parameter in INSERT (computed keys cannot be placed)"
                )
            shard = self.shard_map.shard_of(table, value)
            groups.setdefault(shard, []).append(index)
            key_value = value
        if len(groups) == 1:
            shard = next(iter(groups))
            return Route(
                SINGLE,
                (shard,),
                f"key={table}.{partition_column}="
                f"{render_value(key_value)} -> shard {shard}"
                if len(statement.rows) == 1
                else f"all rows -> shard {shard}",
                key=(table, partition_column, key_value)
                if len(statement.rows) == 1
                else None,
                insert_groups=groups,
            )
        return Route(
            SPLIT,
            tuple(sorted(groups)),
            f"rows split across {len(groups)} shards",
            insert_groups=groups,
        )

    def route_update(
        self, statement: ast.UpdateStatement, params: Sequence[object]
    ) -> Route:
        table = statement.table.lower()
        if not self.shard_map.is_sharded(table):
            return Route(BROADCAST, self._all_shards(), "update on global table")
        partition_column = self.shard_map.key_for(table)
        for column, _expr in statement.assignments:
            if column.lower() == partition_column:
                raise ShardError(
                    f"UPDATE may not assign the partition key "
                    f"{table}.{partition_column} (a row cannot move between "
                    "shards in place; DELETE and re-INSERT instead)"
                )
        return self._route_keyed_write(
            table, partition_column, statement.where, params, "update"
        )

    def route_delete(
        self, statement: ast.DeleteStatement, params: Sequence[object]
    ) -> Route:
        table = statement.table.lower()
        if not self.shard_map.is_sharded(table):
            return Route(BROADCAST, self._all_shards(), "delete on global table")
        partition_column = self.shard_map.key_for(table)
        return self._route_keyed_write(
            table, partition_column, statement.where, params, "delete"
        )

    def _route_keyed_write(
        self,
        table: str,
        partition_column: str,
        where: Optional[ast.Expression],
        params: Sequence[object],
        verb: str,
    ) -> Route:
        ref = ast.TableRef(table=table)
        statement = ast.SelectStatement(items=(), tables=(ref,), where=where)
        key = self._bind_partition_key(
            ref, statement, split_conjuncts(where), params
        )
        if key is not None:
            column, value = key
            shard = self.shard_map.shard_of(table, value)
            return Route(
                SINGLE,
                (shard,),
                f"key={table}.{column}={render_value(value)} -> shard {shard}",
                key=(table, column, value),
            )
        return Route(
            BROADCAST,
            self._all_shards(),
            f"unkeyed {verb} on sharded table -> all shards",
        )
