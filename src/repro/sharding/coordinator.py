"""The shard coordinator: one Database-shaped facade over N shard nodes.

:class:`ShardedDatabase` speaks the engine's ``Database`` surface
(``session()`` / ``explain()`` / ``checkpoint()`` / ``stats()`` ...), so
the unchanged wire server, dbapi driver and ORM run against a fleet of
shards exactly as they run against one engine.  Each shard backend is
anything with a ``session(autocommit=...)`` factory: an embedded
:class:`~repro.sqlengine.engine.Database`, a
:class:`~repro.netclient.pool.ConnectionPool` over a remote server, or a
:class:`~repro.netclient.pool.ReplicatedConnectionPool` over a primary
plus replicas (shard-level failover composes transparently).

Execution model, by route (see :mod:`repro.sharding.router`):

* ``single`` / ``any`` — the original statement text and parameters are
  forwarded untouched to one shard.
* ``fanout`` — the statement is rewritten per shard and merged:
  ungrouped aggregates push partial aggregates (``AVG`` becomes
  ``SUM``+``COUNT``) and re-aggregate on the coordinator; ordered scans
  push ``ORDER BY`` plus ``LIMIT limit+offset`` and k-way merge on the
  coordinator using the engine's own sort-key semantics; plain scans
  union.
* ``gather`` — multi-shard joins pull the referenced table slices into a
  scratch in-memory engine and execute the original statement locally
  (correctness backstop; per-table single-binding conjuncts are pushed
  into the slice fetches).
* ``broadcast`` / ``split`` — multi-shard writes.  Outside an explicit
  transaction they run as an internal distributed transaction; inside
  one they enlist shard sessions that commit together.

Distributed commit is two-phase: every enlisted shard session prepares
under a coordinator-chosen gid, the decision is fsynced into the
coordinator's :class:`~repro.sharding.journal.DecisionJournal`, and only
then does COMMIT PREPARED go out.  A coordinator crash between those
steps is resolved by :meth:`ShardedDatabase.resolve_in_doubt` on
restart: journaled-commit gids are committed, everything else is
presumed aborted.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import uuid
from typing import Callable, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    ActiveSpan,
    TraceBuffer,
    TraceContext,
    TracingOptions,
    new_root_context,
)
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.engine import Database, ResultSet, _split_script
from repro.sqlengine.errors import (
    ShardError,
    SqlExecutionError,
    StaleShardMapError,
)
from repro.sqlengine.expressions import collect_column_refs, split_conjuncts
from repro.sqlengine.operators import _sort_key
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.planner import AGGREGATE_FUNCTIONS
from repro.sharding import sqlgen
from repro.sharding.journal import DecisionJournal
from repro.sharding.router import (
    ANY,
    BROADCAST,
    FANOUT,
    GATHER,
    SINGLE,
    SPLIT,
    Route,
    Router,
)
from repro.sharding.shardmap import ShardMap

_DDL_STATEMENTS = (
    ast.CreateTableStatement,
    ast.CreateIndexStatement,
    ast.DropTableStatement,
)


# -- 2PC verb adapters --------------------------------------------------------
#
# Shard sessions come in two shapes: network sessions (RemoteSession /
# RoutedSession) carry the 2PC verbs themselves, embedded engine sessions
# prepare on the session but decide on their Database.


def _prepare(session, gid: str, trace=None) -> None:
    if hasattr(session, "prepare_txn"):
        if trace is not None:
            session.prepare_txn(gid, trace=trace)
        else:
            session.prepare_txn(gid)
    else:
        session.prepare_transaction(gid)


def _commit_prepared(session, gid: str, trace=None) -> None:
    if hasattr(session, "commit_prepared"):
        if trace is not None:
            session.commit_prepared(gid, trace=trace)
        else:
            session.commit_prepared(gid)
    else:
        session.database.commit_prepared(gid)


def _abort_prepared(session, gid: str, trace=None) -> None:
    if hasattr(session, "abort_prepared"):
        if trace is not None:
            session.abort_prepared(gid, trace=trace)
        else:
            session.abort_prepared(gid)
    else:
        session.database.rollback_prepared(gid)


# -- merge helpers ------------------------------------------------------------


class _Desc:
    """Inverts comparison for DESC merge keys (the engine sorts with
    ``reverse=`` per key; a k-way merge needs the inversion in the key)."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_Desc") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Desc) and other.key == self.key


def _order_key(value: object, descending: bool):
    key = _sort_key(value)
    return _Desc(key) if descending else key


class _AggregatePlan:
    """The per-shard rewrite of an ungrouped-aggregate select list."""

    __slots__ = ("names", "push_items", "specs")

    def __init__(self, names, push_items, specs) -> None:
        #: Output column names, matching the engine's naming rule
        #: (alias or ``func{position}``).
        self.names = names
        #: Rendered per-shard select items (partial aggregates).
        self.push_items = push_items
        #: Per output column: ("COUNT"|"SUM"|"MIN"|"MAX", pos) or
        #: ("AVG", sum_pos, count_pos) into the pushed row.
        self.specs = specs


def _aggregate_plan(
    statement: ast.SelectStatement, params: Sequence[object]
) -> Optional[_AggregatePlan]:
    """The partial-aggregate pushdown plan, or None for non-aggregates.

    Mirrors the planner's ungrouped-aggregate validation so a sharded
    query raises the same errors a single-node one would.
    """
    has_aggregate = any(
        isinstance(item.expression, ast.FunctionCall)
        and item.expression.name.upper() in AGGREGATE_FUNCTIONS
        for item in statement.items
    )
    if not has_aggregate:
        return None
    names: list[str] = []
    push_items: list[str] = []
    specs: list[tuple] = []
    for position, item in enumerate(statement.items):
        expression = item.expression
        if not isinstance(expression, ast.FunctionCall) or (
            expression.name.upper() not in AGGREGATE_FUNCTIONS
        ):
            raise SqlExecutionError(
                "mixing aggregate and non-aggregate select items "
                "requires GROUP BY, which is not supported"
            )
        function = expression.name.upper()
        names.append((item.alias or f"{function.lower()}{position}").lower())
        if expression.star or not expression.args:
            if function != "COUNT":
                if expression.star:
                    raise SqlExecutionError(f"{function}(*) is not valid SQL")
                raise SqlExecutionError(f"{function} requires an argument")
            push_items.append(f"COUNT(*) AS __p{len(push_items)}")
            specs.append(("COUNT", len(push_items) - 1))
            continue
        if len(expression.args) != 1:
            raise SqlExecutionError(f"{function} takes exactly one argument")
        argument = sqlgen.render_expression(expression.args[0], params)
        if function == "AVG":
            push_items.append(f"SUM({argument}) AS __p{len(push_items)}")
            sum_position = len(push_items) - 1
            push_items.append(f"COUNT({argument}) AS __p{len(push_items)}")
            specs.append(("AVG", sum_position, len(push_items) - 1))
        else:
            push_items.append(
                f"{function}({argument}) AS __p{len(push_items)}"
            )
            specs.append((function, len(push_items) - 1))
    return _AggregatePlan(names, push_items, specs)


def _merge_aggregates(
    plan: _AggregatePlan, shard_rows: list[tuple]
) -> tuple:
    """Combine per-shard partial-aggregate rows into the final row,
    following the engine's NULL semantics (SUM/MIN/MAX/AVG over zero
    non-NULL inputs yield NULL, COUNT yields 0)."""
    out: list[object] = []
    for spec in plan.specs:
        function = spec[0]
        if function == "COUNT":
            out.append(sum(row[spec[1]] for row in shard_rows))
        elif function == "SUM":
            total: object = None
            for row in shard_rows:
                value = row[spec[1]]
                if value is None:
                    continue
                total = value if total is None else total + value
            out.append(total)
        elif function in ("MIN", "MAX"):
            best: object = None
            for row in shard_rows:
                value = row[spec[1]]
                if value is None:
                    continue
                if best is None:
                    best = value
                elif function == "MIN" and value < best:
                    best = value
                elif function == "MAX" and value > best:
                    best = value
            out.append(best)
        else:  # AVG
            total = None
            count = 0
            for row in shard_rows:
                value = row[spec[1]]
                if value is not None:
                    total = value if total is None else total + value
                count += row[spec[2]]
            out.append(None if count == 0 else total / count)
    return tuple(out)


def _only_references(conjunct: ast.Expression, binding: str) -> bool:
    """True when every column reference in ``conjunct`` is qualified with
    ``binding`` (safe to push into that table's gather slice)."""
    return all(
        ref.table is not None and ref.table.lower() == binding
        for ref in collect_column_refs(conjunct)
    )


class _Unmergeable(Exception):
    """Internal: this fan-out shape needs the gather fallback."""


def _constant_int(
    expression: Optional[ast.Expression], params: Sequence[object]
) -> Optional[int]:
    """Evaluate a LIMIT/OFFSET expression; _Unmergeable when it is not a
    literal or parameter (the gather path handles those)."""
    if expression is None:
        return None
    if isinstance(expression, ast.Literal):
        value = expression.value
    elif isinstance(expression, ast.Parameter):
        if expression.index >= len(params):
            raise ShardError(
                f"statement references parameter {expression.index + 1} but "
                f"only {len(params)} values were bound"
            )
        value = params[expression.index]
    else:
        raise _Unmergeable()
    if not isinstance(value, int) or isinstance(value, bool):
        raise _Unmergeable()
    return value


# -- the session --------------------------------------------------------------


class ShardedSession:
    """One client's transactional view over the shard fleet.

    Mirrors the engine :class:`~repro.sqlengine.engine.Session` contract
    the wire server depends on: ``execute``/``begin``/``commit``/
    ``rollback``, an ``autocommit`` flag (off opens an implicit
    transaction on the first statement), and an ``in_transaction``
    property.  Shard sessions are enlisted lazily as a transaction's
    statements touch shards; commit runs direct (one participant) or
    two-phase (several).

    Not thread-safe — one sharded session per thread, like the engine's.
    """

    def __init__(self, database: "ShardedDatabase", autocommit: bool = True):
        self._db = database
        self.autocommit = autocommit
        self._closed = False
        self._active = False
        self._enlisted: dict[int, object] = {}
        self._map_version: Optional[int] = None
        #: The span of the statement currently on the observed path (set
        #: by :meth:`_execute_observed`); 2PC phase timings land on it.
        self._obs: Optional[ActiveSpan] = None
        #: A span handed in from outside for a bare ``commit()`` call —
        #: the wire server parks its COMMIT span here, exactly as it does
        #: on an engine session.
        self._stmt_obs: Optional[ActiveSpan] = None
        #: The child trace context re-propagated to every shard call made
        #: on behalf of the current traced statement.
        self._fanout_trace: Optional[TraceContext] = None
        #: The routing decision of the current statement, for span tags
        #: and slow-log records.
        self._stmt_route: Optional[str] = None
        #: The shard answering ``any``-routed reads inside this
        #: transaction (pinned so repeated global-table reads see one
        #: snapshot and the transaction's own broadcast writes).
        self._anchor: Optional[int] = None

    # -- transaction control -------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._active

    def begin(self) -> None:
        self._check_open()
        if self._active:
            raise SqlExecutionError("a transaction is already in progress")
        self._open_transaction()

    def _open_transaction(self) -> None:
        self._active = True
        self._map_version = self._db.shard_map.version

    def commit(self) -> None:
        self._check_open()
        if not self._active:
            return
        participants = [
            (shard, session)
            for shard, session in sorted(self._enlisted.items())
            if session.in_transaction
        ]
        try:
            self._commit_participants(participants, self._map_version)
        finally:
            self._release()

    def rollback(self) -> None:
        self._check_open()
        if not self._active:
            return
        try:
            for session in self._enlisted.values():
                try:
                    session.rollback()
                except Exception:
                    # Best effort: a dead shard's transaction dies with
                    # its connection (presumed abort).
                    pass
        finally:
            self._release()

    def close(self) -> None:
        if self._closed:
            return
        if self._active:
            try:
                self.rollback()
            finally:
                self._closed = True
            return
        self._closed = True

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        self.close()

    def prepare_transaction(self, gid: str) -> None:
        """The coordinator is the 2PC *driver*, never a participant: a
        prepared coordinator transaction would need its own coordinator."""
        raise ShardError(
            "PREPARE TRANSACTION is not supported on a sharding "
            "coordinator; it drives two-phase commit, it does not join one"
        )

    def _release(self) -> None:
        for session in self._enlisted.values():
            try:
                session.close()
            except Exception:
                pass
        self._enlisted = {}
        self._active = False
        self._map_version = None
        self._anchor = None

    def _check_open(self) -> None:
        if self._closed:
            raise SqlExecutionError("session is closed")

    # -- two-phase commit ----------------------------------------------------

    def _commit_participants(
        self, participants: list[tuple[int, object]], map_version: Optional[int]
    ) -> None:
        db = self._db
        if not participants:
            return
        # The span the commit belongs to: the statement's own span when a
        # traced COMMIT (or autocommit write) is executing, or one parked
        # on the session by the wire server's COMMIT handler.
        obs = self._obs if self._obs is not None else self._stmt_obs
        trace = obs.context if obs is not None else self._fanout_trace
        if map_version is not None and db.shard_map.version != map_version:
            for _, session in participants:
                try:
                    session.rollback()
                except Exception:
                    pass
            raise StaleShardMapError(
                f"shard map changed (version {map_version} -> "
                f"{db.shard_map.version}) while this transaction was open; "
                "aborted to avoid committing stale row placements"
            )
        if len(participants) == 1:
            session = participants[0][1]
            if trace is not None and hasattr(session, "prepare_txn"):
                session.commit(trace=trace)
            else:
                session.commit()
            return
        gid = db._new_gid()
        if obs is not None:
            obs.tag(gid=gid)
        t0 = time.perf_counter()
        prepared: list[tuple[int, object]] = []
        for shard, session in participants:
            try:
                _prepare(session, gid, trace)
                prepared.append((shard, session))
            except Exception as error:
                # Phase one veto: abort the already-prepared batches and
                # roll back everyone still holding an open transaction.
                for _, done in prepared:
                    try:
                        _abort_prepared(done, gid, trace)
                    except Exception:
                        pass
                prepared_ids = {id(done) for _, done in prepared}
                for _, other in participants:
                    if id(other) in prepared_ids or other is session:
                        continue
                    try:
                        other.rollback()
                    except Exception:
                        pass
                try:
                    session.rollback()
                except Exception:
                    pass
                raise ShardError(
                    f"2PC prepare failed on shard {shard}: {error}"
                ) from error
        if obs is not None:
            t1 = time.perf_counter()
            obs.phase("2pc_prepare", t1 - t0)
            t0 = t1
        # The decision point: once this record is on disk the
        # transaction IS committed, whatever happens to the processes.
        db.journal.record(gid, "commit")
        db._count_2pc()
        if obs is not None:
            t1 = time.perf_counter()
            obs.phase("2pc_decision", t1 - t0)
            t0 = t1
        failures: list[int] = []
        for shard, session in participants:
            try:
                _commit_prepared(session, gid, trace)
            except Exception:
                failures.append(shard)
        if obs is not None:
            obs.phase("2pc_commit", time.perf_counter() - t0)
        if failures:
            raise ShardError(
                f"transaction {gid} is committed but shard(s) "
                f"{sorted(failures)} did not acknowledge COMMIT PREPARED; "
                "in-doubt recovery will complete it"
            )

    # -- statement execution -------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[object] = (),
        *,
        trace: Optional[TraceContext] = None,
    ) -> ResultSet:
        """Route and execute one statement.

        Mirrors the engine session's hot-path contract: with no inbound
        trace context and observability off, this adds exactly one
        attribute check before the plain routing path.
        """
        database = self._db
        if trace is None and not database._observed:
            return self._execute_statement(sql, params)
        return self._execute_observed(sql, params, trace)

    def _execute_observed(
        self,
        sql: str,
        params: Sequence[object],
        trace: Optional[TraceContext],
    ) -> ResultSet:
        """The instrumented routing path: a ``coordinator`` span whose
        context is re-propagated to every shard call, the statement
        latency histogram, and the coordinator's slow-query log."""
        db = self._db
        context = trace
        if context is None and db._tracing.samples(db._next_trace_counter()):
            context = new_root_context()
        span: Optional[ActiveSpan] = None
        if context is not None and context.sampled:
            span = db.trace_buffer.start_span(
                context, "coordinator", db.node_name
            )
            span.tag(sql=sql)
            self._fanout_trace = span.context
        elif context is not None:
            # Unsampled inbound context: no local span, but keep
            # propagating the id so downstream nodes agree.
            self._fanout_trace = context
        self._obs = span
        self._stmt_route = None
        error: Optional[BaseException] = None
        rowcount: Optional[int] = None
        t0 = time.perf_counter()
        try:
            result = self._execute_statement(sql, params)
            rowcount = result.rowcount
            return result
        except BaseException as exc:
            error = exc
            raise
        finally:
            self._obs = None
            self._fanout_trace = None
            route = self._stmt_route
            self._stmt_route = None
            duration_s = time.perf_counter() - t0
            db._statement_latency.observe(duration_s)
            if span is not None:
                if route is not None:
                    span.tag(route=route)
                span.finish(error)
            db.slow_log.record(
                sql,
                duration_s * 1000.0,
                rows=rowcount,
                mode=None,
                route=route,
                trace_id=context.trace_id if context is not None else None,
                error=(
                    f"{type(error).__name__}: {error}"
                    if error is not None
                    else None
                ),
            )

    def _execute_statement(
        self, sql: str, params: Sequence[object] = ()
    ) -> ResultSet:
        self._check_open()
        db = self._db
        statement = db._parse(sql)
        db._count_statement()
        if isinstance(statement, ast.TransactionStatement):
            action = statement.action
            if action == "BEGIN":
                self.begin()
            elif action == "COMMIT":
                self.commit()
            elif action == "ROLLBACK":
                self.rollback()
            else:
                raise ShardError(
                    "savepoints are not supported in sharded sessions (a "
                    "partial rollback cannot span two-phase participants)"
                )
            return ResultSet(columns=[], rows=[])
        if isinstance(statement, ast.CheckpointStatement):
            if self._active:
                raise SqlExecutionError(
                    "CHECKPOINT cannot run inside an open transaction"
                )
            db.checkpoint()
            return ResultSet(columns=[], rows=[])
        if isinstance(statement, ast.ExplainStatement):
            lines = db.explain(sql).splitlines()
            return ResultSet(
                columns=["query plan"],
                rows=[(line,) for line in lines],
                rowcount=len(lines),
            )
        if isinstance(statement, _DDL_STATEMENTS):
            return self._execute_ddl(statement, sql, params)
        if not self.autocommit and not self._active:
            self._open_transaction()
        if isinstance(statement, ast.SelectStatement):
            return self._execute_select(statement, sql, params)
        return self._execute_write(statement, sql, params)

    def execute_many(
        self, sql: str, param_rows: Sequence[Sequence[object]]
    ) -> int:
        """The engine's batched-DML helper, transactional per batch."""
        opened_here = not self._active
        if opened_here:
            self.begin()
        total = 0
        try:
            for params in param_rows:
                total += self.execute(sql, params).rowcount
        except BaseException:
            if opened_here:
                self.rollback()
            raise
        if opened_here:
            self.commit()
        return total

    # -- shard session plumbing ----------------------------------------------

    def _session_for(self, shard: int):
        session = self._enlisted.get(shard)
        if session is None:
            session = self._db._backend_session(shard, autocommit=False)
            self._enlisted[shard] = session
        return session

    def _checkout(self, shard: int) -> tuple[object, bool]:
        """(session, is_temporary): enlisted inside a transaction, a
        fresh autocommit session otherwise."""
        if self._active:
            return self._session_for(shard), False
        return self._db._backend_session(shard, autocommit=True), True

    def _shard_execute(self, session, sql: str, params: Sequence[object]):
        """Forward one statement to a shard session, re-propagating the
        coordinator's trace context when the statement is traced.  The
        trace keyword is only passed when set, so duck-typed backends
        without tracing support keep working."""
        trace = self._fanout_trace
        if trace is not None:
            return session.execute(sql, params, trace=trace)
        return session.execute(sql, params)

    def _pick_any(self) -> int:
        if self._active:
            if self._anchor is None:
                if self._enlisted:
                    self._anchor = min(self._enlisted)
                else:
                    self._anchor = self._db._next_any_shard()
            return self._anchor
        return self._db._next_any_shard()

    def _run_on_shards(
        self,
        shards: Sequence[int],
        per_shard_sql: Callable[[int], str],
        params: Sequence[object],
    ) -> list[ResultSet]:
        """Execute on every listed shard in parallel; any failure raises
        a typed :class:`ShardError` and no partial result escapes."""
        checkouts = [(shard, *self._checkout(shard)) for shard in shards]
        results: list[Optional[ResultSet]] = [None] * len(checkouts)
        errors: list[tuple[int, Exception]] = []

        def run(index: int, shard: int, session) -> None:
            try:
                result = self._shard_execute(session, per_shard_sql(shard), params)
                results[index] = ResultSet(
                    columns=list(result.columns),
                    rows=list(result.rows),
                    rowcount=result.rowcount,
                )
            except Exception as error:  # noqa: BLE001 - reported below
                errors.append((shard, error))

        try:
            if len(checkouts) == 1:
                run(0, checkouts[0][0], checkouts[0][1])
            else:
                threads = [
                    threading.Thread(
                        target=run,
                        args=(index, shard, session),
                        name=f"shard-fanout-{shard}",
                        daemon=True,
                    )
                    for index, (shard, session, _) in enumerate(checkouts)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        finally:
            for _, session, temporary in checkouts:
                if temporary:
                    try:
                        session.close()
                    except Exception:
                        pass
        if errors:
            errors.sort(key=lambda pair: pair[0])
            shard, error = errors[0]
            raise ShardError(
                f"fan-out failed on shard {shard}: {error}"
            ) from error
        return [result for result in results if result is not None]

    # -- SELECT --------------------------------------------------------------

    def _execute_select(
        self,
        statement: ast.SelectStatement,
        sql: str,
        params: Sequence[object],
    ) -> ResultSet:
        db = self._db
        route = db._router().route_select(statement, params)
        db._count_route(route.kind)
        self._stmt_route = route.kind
        if route.kind == SINGLE:
            return self._run_single(route.shards[0], sql, params)
        if route.kind == ANY:
            return self._run_single(self._pick_any(), sql, params)
        if route.kind == FANOUT:
            try:
                return self._execute_fanout(statement, params, route)
            except _Unmergeable:
                db._count_route(GATHER)
                self._stmt_route = GATHER
                return self._execute_gather(statement, sql, params)
        return self._execute_gather(statement, sql, params)

    def _run_single(
        self, shard: int, sql: str, params: Sequence[object]
    ) -> ResultSet:
        session, temporary = self._checkout(shard)
        try:
            result = self._shard_execute(session, sql, params)
            return ResultSet(
                columns=list(result.columns),
                rows=list(result.rows),
                rowcount=result.rowcount,
            )
        finally:
            if temporary:
                session.close()

    def _execute_fanout(
        self,
        statement: ast.SelectStatement,
        params: Sequence[object],
        route: Route,
    ) -> ResultSet:
        plan = _aggregate_plan(statement, params)
        limit = _constant_int(statement.limit, params)
        offset = _constant_int(statement.offset, params) or 0
        if plan is not None:
            push_sql = sqlgen.render_select(
                statement,
                params,
                items=plan.push_items,
                drop_order=True,
                drop_limit=True,
            )
            shard_results = self._run_on_shards(
                route.shards, lambda _shard: push_sql, ()
            )
            rows = [_merge_aggregates(plan, [r.rows[0] for r in shard_results])]
            rows = rows[offset:]
            if limit is not None:
                rows = rows[:limit]
            return ResultSet(
                columns=list(plan.names), rows=rows, rowcount=len(rows)
            )
        if statement.distinct and statement.order_by:
            # Hidden merge keys would change what DISTINCT deduplicates.
            raise _Unmergeable()
        hidden = [
            f"{sqlgen.render_expression(item.expression, params)} AS __ord{i}"
            for i, item in enumerate(statement.order_by)
        ]
        push_items = None
        if hidden:
            push_items = [
                sqlgen.render_select_item(item, params)
                for item in statement.items
            ] + hidden
        push_limit = limit + offset if limit is not None else None
        push_sql = sqlgen.render_select(
            statement, params, items=push_items, limit=push_limit, offset=0
        )
        shard_results = self._run_on_shards(
            route.shards, lambda _shard: push_sql, ()
        )
        columns = list(shard_results[0].columns)
        if statement.order_by:
            base = len(columns) - len(hidden)
            order_specs = [
                (base + i, item.descending)
                for i, item in enumerate(statement.order_by)
            ]

            def merge_key(row: tuple) -> tuple:
                return tuple(
                    _order_key(row[position], descending)
                    for position, descending in order_specs
                )

            merged = list(
                heapq.merge(*[r.rows for r in shard_results], key=merge_key)
            )
            merged = [row[:base] for row in merged]
            columns = columns[:base]
        else:
            merged = [row for result in shard_results for row in result.rows]
        if statement.distinct:
            merged = list(dict.fromkeys(merged))
        if offset:
            merged = merged[offset:]
        if limit is not None:
            merged = merged[:limit]
        return ResultSet(columns=columns, rows=merged, rowcount=len(merged))

    def _execute_gather(
        self,
        statement: ast.SelectStatement,
        sql: str,
        params: Sequence[object],
    ) -> ResultSet:
        db = self._db
        scratch = Database()
        for _table, ddl in db._ddl_snapshot():
            scratch.execute(ddl)
        for table in sorted({ref.table.lower() for ref in statement.tables}):
            rows = self._fetch_slice(table, statement, params)
            if rows:
                scratch.insert_rows(table, rows)
        result = scratch.execute(sql, params)
        return ResultSet(
            columns=list(result.columns),
            rows=list(result.rows),
            rowcount=result.rowcount,
        )

    def _fetch_slice(
        self,
        table: str,
        statement: ast.SelectStatement,
        params: Sequence[object],
    ) -> list[tuple]:
        db = self._db
        refs = [
            ref for ref in statement.tables if ref.table.lower() == table
        ]
        slice_sql = f"SELECT * FROM {table}"
        if len(refs) == 1:
            # A single binding lets us push its conjuncts into the slice
            # fetch; with several (a self-join) the slices would need a
            # union anyway, so fetch the whole table once.
            ref = refs[0]
            if ref.alias:
                slice_sql += f" AS {ref.alias}"
            pushable = [
                conjunct
                for conjunct in split_conjuncts(statement.where)
                if _only_references(conjunct, ref.binding.lower())
            ]
            if pushable:
                slice_sql += " WHERE " + " AND ".join(
                    f"({sqlgen.render_expression(conjunct, params)})"
                    for conjunct in pushable
                )
        if db.shard_map.is_sharded(table):
            results = self._run_on_shards(
                tuple(range(db.num_shards)), lambda _shard: slice_sql, ()
            )
            return [row for result in results for row in result.rows]
        session, temporary = self._checkout(self._pick_any())
        try:
            return list(self._shard_execute(session, slice_sql, ()).rows)
        finally:
            if temporary:
                session.close()

    # -- writes --------------------------------------------------------------

    def _execute_write(
        self, statement, sql: str, params: Sequence[object]
    ) -> ResultSet:
        db = self._db
        router = db._router()
        if isinstance(statement, ast.InsertStatement):
            route = router.route_insert(statement, params)
        elif isinstance(statement, ast.UpdateStatement):
            route = router.route_update(statement, params)
        else:
            route = router.route_delete(statement, params)
        db._count_route(route.kind)
        self._stmt_route = route.kind
        if route.kind == SINGLE:
            return self._run_single(route.shards[0], sql, params)
        if self._active:
            sessions = [
                (shard, self._session_for(shard)) for shard in route.shards
            ]
            rowcount = self._run_write(sessions, statement, sql, params, route)
            return ResultSet(columns=[], rows=[], rowcount=rowcount)
        # Autocommit multi-shard write: an internal distributed
        # transaction so a broadcast or split insert is all-or-nothing.
        map_version = db.shard_map.version
        sessions = [
            (shard, db._backend_session(shard, autocommit=False))
            for shard in route.shards
        ]
        try:
            rowcount = self._run_write(sessions, statement, sql, params, route)
            participants = [
                (shard, session)
                for shard, session in sessions
                if session.in_transaction
            ]
            self._commit_participants(participants, map_version)
        except BaseException:
            for _, session in sessions:
                try:
                    session.rollback()
                except Exception:
                    pass
            raise
        finally:
            for _, session in sessions:
                try:
                    session.close()
                except Exception:
                    pass
        return ResultSet(columns=[], rows=[], rowcount=rowcount)

    def _run_write(
        self,
        sessions: list[tuple[int, object]],
        statement,
        sql: str,
        params: Sequence[object],
        route: Route,
    ) -> int:
        if route.kind == SPLIT:
            jobs = [
                (
                    shard,
                    session,
                    sqlgen.render_insert(
                        statement,
                        params,
                        rows=[
                            statement.rows[index]
                            for index in route.insert_groups[shard]
                        ],
                    ),
                    (),
                )
                for shard, session in sessions
            ]
        else:
            jobs = [(shard, session, sql, params) for shard, session in sessions]
        rowcounts: list[Optional[int]] = [None] * len(jobs)
        errors: list[tuple[int, Exception]] = []

        def run(index: int, shard: int, session, job_sql, job_params) -> None:
            try:
                rowcounts[index] = self._shard_execute(
                    session, job_sql, job_params
                ).rowcount
            except Exception as error:  # noqa: BLE001 - reported below
                errors.append((shard, error))

        if len(jobs) == 1:
            run(0, *jobs[0])
        else:
            threads = [
                threading.Thread(
                    target=run,
                    args=(index, shard, session, job_sql, job_params),
                    name=f"shard-write-{shard}",
                    daemon=True,
                )
                for index, (shard, session, job_sql, job_params) in enumerate(jobs)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            errors.sort(key=lambda pair: pair[0])
            shard, error = errors[0]
            raise ShardError(
                f"distributed write failed on shard {shard}: {error}"
            ) from error
        counts = [count for count in rowcounts if count is not None]
        if route.kind == SPLIT or self._db.shard_map.is_sharded(
            statement.table
        ):
            # Each shard changed its own rows: the fleet total.
            return sum(counts)
        # A global-table broadcast applies the same change everywhere;
        # report one copy's count, not num_shards times it.
        return max(counts) if counts else 0

    # -- DDL -----------------------------------------------------------------

    def _execute_ddl(self, statement, sql: str, params: Sequence[object]) -> ResultSet:
        db = self._db
        db._count_route(BROADCAST)
        self._stmt_route = BROADCAST
        for shard in range(db.num_shards):
            session, temporary = self._checkout(shard)
            try:
                self._shard_execute(session, sql, params)
            finally:
                if temporary:
                    session.close()
        if isinstance(statement, ast.CreateTableStatement):
            db._register_table(
                statement.table,
                tuple(column.name for column in statement.columns),
                sql,
            )
        elif isinstance(statement, ast.CreateIndexStatement):
            db._register_ddl(statement.table, sql)
        else:
            db._drop_table(statement.table)
        return ResultSet(columns=[], rows=[], rowcount=0)


# -- the facade ---------------------------------------------------------------


class ShardedDatabase:
    """Database-shaped coordinator over ``num_shards`` shard backends."""

    def __init__(
        self,
        shard_map: ShardMap,
        shards: Sequence[object],
        data_dir: Optional[str] = None,
        name: str = "coordinator",
        resolve: bool = True,
        *,
        tracing: Optional[TracingOptions] = None,
        metrics: Optional[MetricsRegistry] = None,
        slow_query_ms: Optional[float] = None,
        slow_query_sink=None,
    ) -> None:
        if shard_map.num_shards != len(shards):
            raise ShardError(
                f"shard map declares {shard_map.num_shards} shards but "
                f"{len(shards)} backends were supplied"
            )
        self.name = name
        # Observability mirrors the engine Database surface (node_name /
        # metrics / trace_buffer / slow_log / traces()), so the unchanged
        # wire server fronts a coordinator like any other node.
        self.node_name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracing = tracing if tracing is not None else TracingOptions()
        self.trace_buffer = TraceBuffer(self._tracing.buffer_size)
        self.slow_log = SlowQueryLog(
            slow_query_ms, sink=slow_query_sink, node=name
        )
        self._observed = self._tracing.enabled or self.slow_log.enabled
        self._trace_counter = 0
        self._statement_latency = self.metrics.histogram(
            "coordinator_statement_latency_seconds"
        )
        self._shards = list(shards)
        self._map = shard_map
        self._lock = threading.Lock()
        self._schemas: dict[str, tuple[str, ...]] = {}
        #: Ordered (table, sql) DDL as broadcast through this
        #: coordinator; replayed to build gather scratch engines.
        self._ddl: list[tuple[str, str]] = []
        self._statement_cache: dict[str, ast.Statement] = {}
        #: The 2PC decision log; file-backed when ``data_dir`` is given.
        self.journal = DecisionJournal(data_dir)
        self._any_counter = itertools.count()
        self.statements_executed = 0
        self.transactions_2pc = 0
        self._route_counts = {
            kind: 0
            for kind in (ANY, SINGLE, FANOUT, GATHER, BROADCAST, SPLIT)
        }
        self.in_doubt_committed = 0
        self.in_doubt_aborted = 0
        self._closed = False
        # Bridge the coordinator's counters into the registry as pull
        # collectors (nothing on the routing hot path changes).
        self.metrics.collect("coordinator", self._coordinator_counters)
        self.metrics.collect("trace_buffer", lambda: self.trace_buffer.stats())
        self.metrics.collect("slow_query_log", self.slow_log.stats)
        if resolve:
            self.resolve_in_doubt()

    # -- topology ------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shard_map(self) -> ShardMap:
        with self._lock:
            return self._map

    def install_map(self, shard_map: ShardMap) -> None:
        """Swap in a newer shard map; stale versions are rejected."""
        with self._lock:
            if shard_map.version <= self._map.version:
                raise StaleShardMapError(
                    f"shard map version {shard_map.version} is stale "
                    f"(installed version is {self._map.version})"
                )
            if shard_map.num_shards != len(self._shards):
                raise ShardError(
                    "cannot change the shard count with install_map (data "
                    "would need rebalancing); build a new coordinator"
                )
            self._map = shard_map

    def register_table(
        self,
        table: str,
        columns: Sequence[str],
        ddl: Optional[Sequence[str]] = None,
    ) -> None:
        """Declare an existing table's column order (for coordinators
        started against an already-populated fleet, where no CREATE TABLE
        flowed through :meth:`ShardedSession.execute`).  ``ddl`` optionally
        supplies the table's CREATE statements so gather scratch engines
        can rebuild it."""
        with self._lock:
            self._schemas[table.lower()] = tuple(
                column.lower() for column in columns
            )
            for sql in ddl or ():
                self._ddl.append((table.lower(), sql))

    def _register_table(
        self, table: str, columns: Sequence[str], sql: str
    ) -> None:
        with self._lock:
            self._schemas[table.lower()] = tuple(
                column.lower() for column in columns
            )
            self._ddl.append((table.lower(), sql))

    def _register_ddl(self, table: str, sql: str) -> None:
        with self._lock:
            self._ddl.append((table.lower(), sql))

    def _drop_table(self, table: str) -> None:
        with self._lock:
            self._schemas.pop(table.lower(), None)
            self._ddl = [
                entry for entry in self._ddl if entry[0] != table.lower()
            ]

    def _ddl_snapshot(self) -> list[tuple[str, str]]:
        with self._lock:
            return list(self._ddl)

    def _router(self) -> Router:
        with self._lock:
            return Router(self._map, dict(self._schemas))

    # -- plumbing ------------------------------------------------------------

    def _backend_session(self, shard: int, autocommit: bool = True):
        return self._shards[shard].session(autocommit=autocommit)

    def _parse(self, sql: str) -> ast.Statement:
        with self._lock:
            statement = self._statement_cache.get(sql)
        if statement is None:
            statement = parse_statement(sql)
            with self._lock:
                if len(self._statement_cache) >= 512:
                    self._statement_cache.clear()
                self._statement_cache[sql] = statement
        return statement

    def _new_gid(self) -> str:
        return f"{self.name}-{uuid.uuid4().hex[:16]}"

    def _next_any_shard(self) -> int:
        return next(self._any_counter) % len(self._shards)

    def _count_statement(self) -> None:
        with self._lock:
            self.statements_executed += 1

    def _count_route(self, kind: str) -> None:
        with self._lock:
            self._route_counts[kind] += 1

    def _count_2pc(self) -> None:
        with self._lock:
            self.transactions_2pc += 1

    # -- Database surface ----------------------------------------------------

    def session(self, autocommit: bool = True) -> ShardedSession:
        if self._closed:
            raise SqlExecutionError("sharded database is closed")
        return ShardedSession(self, autocommit=autocommit)

    def execute(self, sql: str, params: Sequence[object] = ()) -> ResultSet:
        """One-shot statement on a throwaway autocommit session."""
        session = self.session(autocommit=True)
        try:
            return session.execute(sql, params)
        finally:
            session.close()

    def executescript(self, script: str) -> None:
        for statement_text in _split_script(script):
            self.execute(statement_text)

    def statement_is_read_only(self, sql: str) -> bool:
        return isinstance(
            self._parse(sql),
            (
                ast.SelectStatement,
                ast.ExplainStatement,
                ast.TransactionStatement,
            ),
        )

    def explain(self, sql: str) -> str:
        """The routing decision plus the shard-local plan.

        The first line is the coordinator's: ``shards=1 (key=...)`` for a
        routed statement, ``shards=N (fanout+merge...)`` for a fan-out.
        The remaining lines are the plan of the statement each shard
        actually executes (for fan-outs, the rewritten pushdown query).
        """
        statement = self._parse(sql)
        if isinstance(statement, ast.ExplainStatement):
            statement = statement.statement
        if not isinstance(statement, ast.SelectStatement):
            raise SqlExecutionError("only SELECT statements can be planned")
        route = self._router().route_select(statement, None)
        n = self.num_shards
        shard_sql = sqlgen.render_select(statement, None)
        if route.kind == SINGLE:
            header = f"shards=1 ({route.description})"
            target = route.shards[0]
        elif route.kind == ANY:
            header = "shards=1 (global tables; round-robin)"
            target = 0
        elif route.kind == FANOUT:
            header = f"shards={n} (fanout+merge; {route.description})"
            target = 0
            plan = _aggregate_plan(statement, None)
            if plan is not None:
                shard_sql = sqlgen.render_select(
                    statement,
                    None,
                    items=plan.push_items,
                    drop_order=True,
                    drop_limit=True,
                )
                header += "\nmerge: re-aggregate partials on coordinator"
            elif statement.order_by:
                header += "\nmerge: ordered k-way merge on coordinator"
            else:
                header += "\nmerge: union on coordinator"
        else:
            header = f"shards={n} (gather; {route.description})"
            target = 0
        try:
            shard_plan = self._shard_explain(target, shard_sql)
        except Exception as error:  # pragma: no cover - depends on backend
            shard_plan = f"(shard plan unavailable: {error})"
        indented = "\n".join(
            f"  {line}" for line in shard_plan.splitlines()
        )
        return f"{header}\nshard {target} plan:\n{indented}"

    def _shard_explain(self, shard: int, sql: str) -> str:
        backend = self._shards[shard]
        if isinstance(backend, Database):
            return backend.explain(sql)
        session = backend.session(autocommit=True)
        try:
            if hasattr(session, "explain"):
                return session.explain(sql)
            result = session.execute(f"EXPLAIN {sql}")
            return "\n".join(str(row[0]) for row in result.rows)
        finally:
            session.close()

    def checkpoint(self) -> bool:
        for shard in range(len(self._shards)):
            session = self._backend_session(shard, autocommit=True)
            try:
                session.execute("CHECKPOINT")
            finally:
                session.close()
        return True

    def wal_position(self) -> tuple[int, int]:
        """The coordinator has no log of row changes; only the decision
        journal.  Matches the in-memory engine's (0, 0)."""
        return (0, 0)

    @property
    def durability_manager(self):
        return None

    def prepared_gids(self) -> list[str]:
        """Best-effort union of prepared gids across the fleet."""
        gids: set[str] = set()
        for shard in range(len(self._shards)):
            try:
                gids.update(self._shard_prepared(shard)[0]())
            except Exception:
                continue
        return sorted(gids)

    def _shard_prepared(self, shard: int):
        """(list_prepared, commit, abort, close) against one shard."""
        backend = self._shards[shard]
        if hasattr(backend, "prepared_gids"):
            # An embedded engine Database.
            return (
                backend.prepared_gids,
                backend.commit_prepared,
                backend.rollback_prepared,
                lambda: None,
            )
        session = backend.session(autocommit=True)
        return (
            session.list_prepared,
            session.commit_prepared,
            session.abort_prepared,
            session.close,
        )

    def resolve_in_doubt(self) -> dict[str, int]:
        """Finish transactions a crash left prepared on the shards.

        Journaled-commit gids are committed; every other prepared gid is
        aborted (presumed abort: no journal record means the decision
        point was never reached).  Unreachable shards are skipped — they
        are resolved on the next call once they return.
        """
        decisions = self.journal.decisions()
        outcome = {"committed": 0, "aborted": 0, "unreachable_shards": 0}
        for shard in range(len(self._shards)):
            try:
                list_prepared, commit, abort, close = self._shard_prepared(shard)
            except Exception:
                outcome["unreachable_shards"] += 1
                continue
            try:
                for gid in list_prepared():
                    if decisions.get(gid) == "commit":
                        commit(gid)
                        outcome["committed"] += 1
                    else:
                        abort(gid)
                        outcome["aborted"] += 1
            except Exception:
                outcome["unreachable_shards"] += 1
            finally:
                try:
                    close()
                except Exception:
                    pass
        with self._lock:
            self.in_doubt_committed += outcome["committed"]
            self.in_doubt_aborted += outcome["aborted"]
        return outcome

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "statements_executed": self.statements_executed,
                "transactions_2pc": self.transactions_2pc,
                "routes": dict(self._route_counts),
                "shard_map_version": self._map.version,
                "num_shards": len(self._shards),
                "in_doubt_committed": self.in_doubt_committed,
                "in_doubt_aborted": self.in_doubt_aborted,
                "tables": len(self._schemas),
                "tracing": self.trace_buffer.stats(),
                "slow_query_log": self.slow_log.stats(),
            }

    # -- observability --------------------------------------------------------

    @property
    def tracing(self) -> TracingOptions:
        """This coordinator's tracing options (see :meth:`set_tracing`)."""
        return self._tracing

    def set_tracing(self, options: TracingOptions) -> None:
        """Switch tracing on or off at runtime.  Already-buffered spans are
        kept; the buffer is resized only if the new size differs."""
        self._tracing = options
        if options.buffer_size != self.trace_buffer.stats()["capacity"]:
            self.trace_buffer = TraceBuffer(options.buffer_size)
        self._observed = options.enabled or self.slow_log.enabled

    def set_slow_query_threshold(self, threshold_ms: Optional[float]) -> None:
        """Change (or with None, disable) the slow-query threshold."""
        self.slow_log.threshold_ms = threshold_ms
        self._observed = self._tracing.enabled or self.slow_log.enabled

    def traces(self, trace_id: Optional[str] = None) -> list[dict]:
        """The coordinator's own spans plus every span its shard backends
        buffered, optionally filtered by trace id.  Works across backend
        shapes (embedded engines, connection pools, replicated pools);
        unreachable backends are skipped — traces are a diagnostic
        surface and must not fail while the fleet is degraded."""
        spans = self.trace_buffer.spans(trace_id)
        for backend in self._shards:
            fetch = getattr(backend, "traces", None)
            if fetch is None:
                continue
            try:
                spans.extend(fetch(trace_id))
            except Exception:
                continue
        return spans

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in the coordinator's buffer, oldest first."""
        return self.trace_buffer.trace_ids()

    def slow_queries(self, limit: Optional[int] = None) -> list[dict]:
        """The coordinator's most recent slow-query records, oldest
        first.  Each carries the routing decision (``route``) alongside
        the usual fields."""
        return self.slow_log.recent(limit)

    def render_metrics(self) -> str:
        """The coordinator's registry in Prometheus text format."""
        return self.metrics.render_prometheus()

    def _coordinator_counters(self) -> dict[str, object]:
        with self._lock:
            counters: dict[str, object] = {
                "statements_executed": self.statements_executed,
                "transactions_2pc": self.transactions_2pc,
                "in_doubt_committed": self.in_doubt_committed,
                "in_doubt_aborted": self.in_doubt_aborted,
                "shard_map_version": self._map.version,
                "num_shards": len(self._shards),
            }
            for kind, count in self._route_counts.items():
                counters[f"route_{kind}"] = count
        return counters

    def _next_trace_counter(self) -> int:
        with self._lock:
            self._trace_counter += 1
            return self._trace_counter

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for backend in self._shards:
            close = getattr(backend, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass
        self.journal.close()
