"""The coordinator's durable two-phase-commit decision log.

Two-phase commit has exactly one moment of truth: the instant the
coordinator durably records "commit" for a global transaction id.  Before
that instant a crash means presumed abort (every shard's prepared batch
is rolled back on recovery contact); after it, the coordinator — restarted
from this journal — must drive COMMIT_PREPARED to every participant until
each acknowledges.  The journal therefore syncs each decision to disk
*before* the first COMMIT_PREPARED leaves the coordinator.

Frames reuse the engine WAL's length+CRC framing
(:func:`repro.sqlengine.durability.wal.frame`), so torn tails from a
crash mid-append are detected and discarded on replay, exactly like the
engine log.  The payload is one kind byte (1 = commit, 2 = abort)
followed by the UTF-8 gid.

Without a ``data_dir`` the journal degrades to an in-memory dict — fine
for tests and for topologies that accept losing in-doubt resolution with
the coordinator process (shards then resolve via operator intervention).
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from repro.sqlengine.durability import wal
from repro.sqlengine.errors import ShardError

JOURNAL_NAME = "coordinator.journal"

_COMMIT = 1
_ABORT = 2
_KIND_NAMES = {_COMMIT: "commit", _ABORT: "abort"}


class DecisionJournal:
    """Append-only commit/abort decisions keyed by global transaction id."""

    def __init__(self, data_dir: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._decisions: dict[str, str] = {}
        self._file = None
        self.path: Optional[str] = None
        if data_dir is not None:
            os.makedirs(data_dir, exist_ok=True)
            self.path = os.path.join(data_dir, JOURNAL_NAME)
            self._replay()
            self._file = open(self.path, "ab")

    def _replay(self) -> None:
        assert self.path is not None
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        for payload, _end in wal.read_frames(data):
            if not payload or payload[0] not in _KIND_NAMES:
                raise ShardError(
                    f"corrupt decision journal {self.path}: unknown record "
                    f"kind {payload[:1]!r}"
                )
            gid = payload[1:].decode("utf-8")
            self._decisions[gid] = _KIND_NAMES[payload[0]]

    def record(self, gid: str, decision: str) -> None:
        """Durably record ``decision`` ("commit" or "abort") for ``gid``.

        Returns only after the record is fsynced (when file-backed); the
        caller may then act on the decision against the shards.
        """
        if decision == "commit":
            kind = _COMMIT
        elif decision == "abort":
            kind = _ABORT
        else:
            raise ShardError(f"unknown 2PC decision {decision!r}")
        with self._lock:
            existing = self._decisions.get(gid)
            if existing is not None:
                if existing != decision:
                    raise ShardError(
                        f"transaction {gid!r} already decided {existing!r}; "
                        f"refusing to flip to {decision!r}"
                    )
                return
            if self._file is not None:
                self._file.write(wal.frame(bytes([kind]) + gid.encode("utf-8")))
                self._file.flush()
                os.fsync(self._file.fileno())
            self._decisions[gid] = decision

    def decision(self, gid: str) -> Optional[str]:
        """The recorded decision for ``gid``, or None (presumed abort)."""
        with self._lock:
            return self._decisions.get(gid)

    def decisions(self) -> dict[str, str]:
        """A snapshot of every recorded decision (for recovery sweeps)."""
        with self._lock:
            return dict(self._decisions)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
