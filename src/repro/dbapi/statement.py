"""JDBC-style PreparedStatement."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sqlengine.errors import SqlExecutionError
from repro.dbapi.resultset import ResultSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dbapi.connection import Connection


class PreparedStatement:
    """A SQL statement with ``?`` placeholders, executed many times.

    Parameters are set 1-based (``set_int(1, ...)``) as in JDBC.  The
    statement text is parsed and planned once by the underlying engine; only
    parameter values change between executions.
    """

    def __init__(self, connection: "Connection", sql: str) -> None:
        self._connection = connection
        self._sql = sql
        self._parameters: dict[int, object] = {}
        self._closed = False

    @property
    def sql(self) -> str:
        """The statement text."""
        return self._sql

    # -- parameter setters ----------------------------------------------------

    def set_object(self, index: int, value: object) -> None:
        """Set the parameter at 1-based ``index``."""
        if index < 1:
            raise SqlExecutionError("parameter indexes are 1-based")
        self._parameters[index] = value

    def set_int(self, index: int, value: int) -> None:
        """Set an integer parameter."""
        self.set_object(index, int(value))

    def set_double(self, index: int, value: float) -> None:
        """Set a floating-point parameter."""
        self.set_object(index, float(value))

    def set_string(self, index: int, value: str) -> None:
        """Set a string parameter."""
        self.set_object(index, value)

    def set_null(self, index: int) -> None:
        """Set a NULL parameter."""
        self.set_object(index, None)

    def clear_parameters(self) -> None:
        """Forget all previously set parameters."""
        self._parameters.clear()

    # -- execution -------------------------------------------------------------

    def execute_query(self) -> ResultSet:
        """Run the statement and return a :class:`ResultSet`."""
        self._check_open()
        return self._connection._wrap_result(self._run())

    def execute_update(self) -> int:
        """Run a DML statement and return the affected-row count."""
        self._check_open()
        return self._run().rowcount

    def _run(self):
        """Send the statement through the connection (driver hook: the
        remote driver overrides this to execute server-side prepared
        statements instead of re-sending the SQL text)."""
        return self._connection._execute(self._sql, self._ordered_parameters())

    def explain(self) -> str:
        """The engine's cost-annotated plan for this statement's query.

        Issues ``EXPLAIN <sql>`` through the connection, so it works for
        any SELECT without needing parameter values (plans do not depend on
        them) and exercises the same cached plan repeated executions use.
        """
        self._check_open()
        result = self._connection._execute(f"EXPLAIN {self._sql}", ())
        return "\n".join(str(row[0]) for row in result.rows)

    def close(self) -> None:
        """Close the statement (further executions raise)."""
        self._closed = True

    # -- internals --------------------------------------------------------------

    def _ordered_parameters(self) -> tuple[object, ...]:
        if not self._parameters:
            return ()
        highest = max(self._parameters)
        values: list[object] = []
        for index in range(1, highest + 1):
            if index not in self._parameters:
                raise SqlExecutionError(f"parameter {index} was never set")
            values.append(self._parameters[index])
        return tuple(values)

    def _check_open(self) -> None:
        if self._closed:
            raise SqlExecutionError("statement is closed")
        self._connection._check_open()


class Statement(PreparedStatement):
    """A plain (non-prepared) statement: SQL text is supplied per call."""

    def __init__(self, connection: "Connection") -> None:
        super().__init__(connection, sql="")

    def execute(self, sql: str) -> Optional[ResultSet]:
        """Execute arbitrary SQL; returns a ResultSet for SELECTs."""
        self._check_open()
        result = self._connection._execute(sql, ())
        if result.columns:
            return self._connection._wrap_result(result)
        return None
