"""JDBC-like driver API over the in-memory SQL engine.

The paper's hand-written baseline queries use JDBC: ``Connection``,
``PreparedStatement`` and ``ResultSet`` objects, with results read out column
by column (by index or by name).  This package mirrors that API closely so
the TPC-W baseline code can be a near-transliteration of the Rice
implementation, including the inefficiencies the paper discusses (reading
columns by name, separate commit round-trips, intermediate data structures).
"""

from __future__ import annotations

from repro.dbapi.connection import Connection, connect
from repro.dbapi.resultset import ResultSet
from repro.dbapi.statement import PreparedStatement

__all__ = ["Connection", "PreparedStatement", "ResultSet", "connect"]
