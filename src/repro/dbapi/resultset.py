"""JDBC-style ResultSet: cursor-based access to query results."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sqlengine.engine import ResultSet as EngineResultSet


class ResultSet:
    """A forward-only cursor over query results, in the JDBC style.

    Usage mirrors JDBC::

        rs = statement.execute_query()
        while rs.next():
            name = rs.get_string("c_fname")
            ident = rs.get_int(1)          # 1-based column index

    Column access by name is case-insensitive; column access by index is
    1-based, both as in JDBC.

    Python-side iteration is also supported in the DB-API style:
    ``for row in rs`` yields the remaining rows as tuples (advancing the
    cursor), and :meth:`fetchmany` returns the next batch of up to
    ``arraysize`` rows — the same batching contract the remote driver's
    FETCH streaming builds on.

    Subclasses may stream rows in on demand by overriding
    :meth:`_available` (and the materialising accessors); the base class
    holds every row in memory.
    """

    #: Default :meth:`fetchmany` batch size (DB-API ``cursor.arraysize``).
    arraysize: int = 1

    def __init__(self, columns: Sequence[str], rows: Sequence[tuple[object, ...]]) -> None:
        self._columns = [column.lower() for column in columns]
        # Name→index built once so per-value access by name is O(1); the
        # first occurrence wins for duplicated column names (JDBC rule).
        self._column_map: dict[str, int] = {}
        for position, column in enumerate(self._columns):
            self._column_map.setdefault(column, position)
        self._rows = list(rows)
        self._cursor = -1

    @classmethod
    def from_engine(cls, result: EngineResultSet) -> "ResultSet":
        """Wrap an engine-level result set."""
        return cls(result.columns, result.rows)

    # -- cursor movement -----------------------------------------------------

    def next(self) -> bool:
        """Advance to the next row; return False when exhausted."""
        if not self._available(self._cursor + 1):
            self._cursor = len(self._rows)
            return False
        self._cursor += 1
        return True

    def _available(self, index: int) -> bool:
        """Whether row ``index`` exists (hook for streaming subclasses)."""
        return index < len(self._rows)

    def before_first(self) -> None:
        """Reset the cursor to before the first row."""
        self._cursor = -1

    @property
    def row_count(self) -> int:
        """Total number of rows in the result."""
        return len(self._rows)

    @property
    def column_names(self) -> list[str]:
        """Column names (lower case), in select-list order."""
        return list(self._columns)

    # -- column access -------------------------------------------------------

    def get_object(self, column: int | str) -> object:
        """Raw value of a column of the current row."""
        row = self._current_row()
        return row[self._resolve(column)]

    def get_string(self, column: int | str) -> Optional[str]:
        """String value of a column (None stays None)."""
        value = self.get_object(column)
        return None if value is None else str(value)

    def get_int(self, column: int | str) -> int:
        """Integer value of a column (NULL becomes 0, as in JDBC)."""
        value = self.get_object(column)
        return 0 if value is None else int(value)  # type: ignore[arg-type]

    def get_double(self, column: int | str) -> float:
        """Float value of a column (NULL becomes 0.0, as in JDBC)."""
        value = self.get_object(column)
        return 0.0 if value is None else float(value)  # type: ignore[arg-type]

    def get_boolean(self, column: int | str) -> bool:
        """Boolean value of a column (NULL becomes False)."""
        value = self.get_object(column)
        return bool(value)

    def was_null(self, column: int | str) -> bool:
        """True if the given column of the current row is NULL."""
        return self.get_object(column) is None

    # -- convenience ---------------------------------------------------------

    def fetch_all(self) -> list[tuple[object, ...]]:
        """All rows as tuples (does not move the cursor)."""
        return list(self._rows)

    def fetchmany(self, size: Optional[int] = None) -> list[tuple[object, ...]]:
        """The next batch of up to ``size`` rows (default ``arraysize``),
        advancing the cursor past them; an empty list when exhausted.

        The whole batch is requested with one availability probe and
        returned as one slice — a streaming subclass pulls the rows in
        server-side FETCH batches rather than one round trip per row.
        """
        size = self.arraysize if size is None else size
        if size <= 0:
            return []
        start = self._cursor + 1
        has_full_batch = self._available(start + size - 1)
        end = start + size if has_full_batch else len(self._rows)
        batch = list(self._rows[start:end])
        # Same cursor positions the per-row loop would have left behind.
        self._cursor = end - 1 if has_full_batch else len(self._rows)
        return batch

    def __iter__(self):
        """Yield the remaining rows as tuples, advancing the cursor."""
        while self.next():
            yield self._rows[self._cursor]

    def __len__(self) -> int:
        return len(self._rows)

    # -- internals -----------------------------------------------------------

    def _current_row(self) -> tuple[object, ...]:
        if self._cursor < 0:
            raise RuntimeError("ResultSet cursor is before the first row; call next()")
        if self._cursor >= len(self._rows):
            raise RuntimeError("ResultSet cursor is after the last row")
        return self._rows[self._cursor]

    def _resolve(self, column: int | str) -> int:
        if isinstance(column, int):
            if column < 1 or column > len(self._columns):
                raise IndexError(f"column index {column} out of range (1-based)")
            return column - 1
        try:
            return self._column_map[column.lower()]
        except KeyError as exc:
            raise KeyError(f"no column named {column!r}") from exc
