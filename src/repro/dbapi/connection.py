"""JDBC-style Connection over the in-memory SQL engine.

A connection wraps a :class:`repro.sqlengine.Database`.  Auto-commit can be
switched off, in which case an explicit ``commit()`` issues a COMMIT
statement to the engine — this matters for the benchmark because the paper
points out that Queryll's generated code "sends a commit command to the
database separately from its query", an extra round trip that the
hand-written baseline avoids.  Round trips are counted so tests and
benchmarks can observe the difference.
"""

from __future__ import annotations

from typing import Sequence

from repro.sqlengine.engine import Database, ResultSet as EngineResultSet
from repro.sqlengine.errors import SqlExecutionError
from repro.dbapi.statement import PreparedStatement, Statement


class Connection:
    """A client connection to a :class:`~repro.sqlengine.engine.Database`."""

    def __init__(self, database: Database, auto_commit: bool = True) -> None:
        self._database = database
        self._auto_commit = auto_commit
        self._closed = False
        #: Number of statements sent through this connection, including
        #: COMMIT/ROLLBACK round trips.  Used by the overhead benchmarks.
        self.round_trips = 0

    # -- factory ----------------------------------------------------------------

    @property
    def database(self) -> Database:
        """The underlying engine (useful for tests)."""
        return self._database

    def prepare_statement(self, sql: str) -> PreparedStatement:
        """Create a :class:`PreparedStatement` for ``sql``."""
        self._check_open()
        return PreparedStatement(self, sql)

    def create_statement(self) -> Statement:
        """Create a plain statement."""
        self._check_open()
        return Statement(self)

    # -- transaction control ----------------------------------------------------

    @property
    def auto_commit(self) -> bool:
        """Whether each statement commits immediately."""
        return self._auto_commit

    def set_auto_commit(self, value: bool) -> None:
        """Enable or disable auto-commit."""
        self._check_open()
        self._auto_commit = value

    def commit(self) -> None:
        """Issue an explicit COMMIT round trip."""
        self._check_open()
        self._execute("COMMIT", ())

    def rollback(self) -> None:
        """Issue an explicit ROLLBACK round trip."""
        self._check_open()
        self._execute("ROLLBACK", ())

    def close(self) -> None:
        """Close the connection."""
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    # -- internals ---------------------------------------------------------------

    def _execute(self, sql: str, params: Sequence[object]) -> EngineResultSet:
        self._check_open()
        self.round_trips += 1
        return self._database.execute(sql, params)

    def _check_open(self) -> None:
        if self._closed:
            raise SqlExecutionError("connection is closed")


def connect(database: Database, auto_commit: bool = True) -> Connection:
    """Open a connection to an in-memory database."""
    return Connection(database, auto_commit=auto_commit)
