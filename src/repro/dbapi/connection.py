"""JDBC-style Connection over the in-memory SQL engine.

Each connection owns a :class:`repro.sqlengine.engine.Session`, so it has a
private transaction context.  With auto-commit on (the default) every
statement runs in an implicit transaction that commits as it completes.
With auto-commit off, the first statement opens a transaction that stays
open until ``commit()`` or ``rollback()`` — and those now really commit or
abort: rolling back restores rows and indexes through the engine's undo
log.

``commit()`` still issues a COMMIT *statement* to the engine — this matters
for the benchmark because the paper points out that Queryll's generated
code "sends a commit command to the database separately from its query", an
extra round trip that the hand-written baseline avoids.  Round trips are
counted so tests and benchmarks can observe the difference.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sqlengine.engine import Database, ResultSet as EngineResultSet, Session
from repro.sqlengine.errors import SqlExecutionError
from repro.dbapi.resultset import ResultSet
from repro.dbapi.statement import PreparedStatement, Statement


class Connection:
    """A client connection to a :class:`~repro.sqlengine.engine.Database`.

    ``database`` may be anything with a ``session(autocommit=...)`` factory
    returning a Session-shaped object — the embedded engine here, or the
    network driver's :class:`repro.netclient.RemoteDatabase`, whose
    connection subclass reuses this class wholesale.  The transaction
    contract (shared by both drivers, see ``docs/server.md`` § "Connection
    lifecycle") includes: :meth:`close` on a connection with an open
    explicit transaction **rolls it back** — it never commits.
    """

    def __init__(
        self,
        database: Database,
        auto_commit: bool = True,
        session: Optional[Session] = None,
    ) -> None:
        self._database = database
        # A pre-built session lets pooled drivers hand an already-checked-out
        # session to a fresh Connection facade (its autocommit flag was set
        # at checkout, so ``auto_commit`` is not re-applied).
        self._session = (
            session if session is not None else database.session(autocommit=auto_commit)
        )
        self._closed = False
        #: Number of statements sent through this connection, including
        #: COMMIT/ROLLBACK round trips.  Used by the overhead benchmarks.
        self.round_trips = 0

    # -- factory ----------------------------------------------------------------

    @property
    def database(self) -> Database:
        """The underlying engine (useful for tests)."""
        return self._database

    @property
    def session(self) -> Session:
        """This connection's engine session (its transaction context)."""
        return self._session

    def prepare_statement(self, sql: str) -> PreparedStatement:
        """Create a :class:`PreparedStatement` for ``sql``."""
        self._check_open()
        return PreparedStatement(self, sql)

    def create_statement(self) -> Statement:
        """Create a plain statement."""
        self._check_open()
        return Statement(self)

    # -- transaction control ----------------------------------------------------

    @property
    def auto_commit(self) -> bool:
        """Whether each statement commits immediately."""
        return self._session.autocommit

    def set_auto_commit(self, value: bool) -> None:
        """Enable or disable auto-commit.

        As in JDBC, switching auto-commit *on* while a transaction is open
        commits it.
        """
        self._check_open()
        if value and self._session.in_transaction:
            self._session.commit()
        self._session.autocommit = value

    @property
    def in_transaction(self) -> bool:
        """Whether this connection has an open transaction."""
        return self._session.in_transaction

    def commit(self) -> None:
        """Commit the open transaction with an explicit COMMIT round trip."""
        self._check_open()
        self._execute("COMMIT", ())

    def rollback(self) -> None:
        """Abort the open transaction with an explicit ROLLBACK round trip,
        undoing every uncommitted change."""
        self._check_open()
        self._execute("ROLLBACK", ())

    def close(self) -> None:
        """Close the connection, **rolling back** any open transaction.

        Uncommitted work is never silently committed by a close — the same
        semantics on the embedded and the remote driver (the remote session
        sends an explicit ROLLBACK round trip before releasing its socket,
        and the server additionally rolls back on disconnect).
        """
        if not self._closed:
            self._session.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    # -- context-manager protocol ------------------------------------------------

    def __enter__(self) -> "Connection":
        """``with connect(...) as conn:`` — commit on clean exit, roll back
        on exception, always close."""
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if self._session.in_transaction:
                # Real COMMIT/ROLLBACK round trips, so the round-trip
                # counters tell the same story as explicit calls would.
                if exc_type is None:
                    self.commit()
                else:
                    self.rollback()
        finally:
            self.close()

    # -- internals ---------------------------------------------------------------

    def _execute(self, sql: str, params: Sequence[object]) -> EngineResultSet:
        self._check_open()
        self.round_trips += 1
        return self._session.execute(sql, params)

    def _wrap_result(self, result) -> "ResultSet":
        """Turn an engine-level result into the driver's ResultSet class
        (the remote driver overrides this to return a streaming one)."""
        return ResultSet.from_engine(result)

    def _check_open(self) -> None:
        if self._closed:
            raise SqlExecutionError("connection is closed")


def connect(database: Database, auto_commit: bool = True) -> Connection:
    """Open a connection to an in-memory database."""
    return Connection(database, auto_commit=auto_commit)
