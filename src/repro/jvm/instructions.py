"""Instruction set of the mini-JVM.

The set is a compact subset of real JVM bytecode with the properties the
Queryll analysis cares about: an operand stack, named (untyped) locals,
method invocation, checked casts, integer-producing comparisons and
integer-only conditional branches.  Operands are symbolic (strings/numbers)
rather than constant-pool indexes; the classfile serialiser handles encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional


class Opcode(Enum):
    """Mini-JVM opcodes."""

    # Constants and locals.
    LDC = auto()            # push constant                     operand: value
    ACONST_NULL = auto()    # push null
    LOAD = auto()           # push local                        operand: name
    STORE = auto()          # pop into local                    operand: name
    # Stack manipulation.
    DUP = auto()
    POP = auto()
    SWAP = auto()
    # Object operations.
    NEWOBJ = auto()         # new + constructor                 operand: (class, argc)
    NEWARRAY = auto()       # pop n values, push a tuple        operand: count
    CHECKCAST = auto()      # checked cast                      operand: type name
    GETFIELD = auto()       # pop object, push field            operand: field name
    INVOKEVIRTUAL = auto()  # pop args + receiver, push result  operand: (method, argc)
    INVOKEINTERFACE = auto()
    INVOKESTATIC = auto()   # pop args, push result             operand: (method, argc)
    # Arithmetic (operate on numbers; DIV of two ints truncates like Java).
    ADD = auto()
    SUB = auto()
    MUL = auto()
    DIV = auto()
    REM = auto()
    NEG = auto()
    # Comparisons producing an int 0/1 (the paper's "redundant" comparisons
    # arise because these feed integer-only branches).
    CMPEQ = auto()
    CMPNE = auto()
    CMPLT = auto()
    CMPLE = auto()
    CMPGT = auto()
    CMPGE = auto()
    # Bitwise/logical on ints (used by the rewriter for AND/OR of 0/1 values).
    IAND = auto()
    IOR = auto()
    # Control flow (operand: jump target = instruction index after assembly).
    GOTO = auto()
    IFEQ = auto()           # pop int, branch if == 0
    IFNE = auto()           # pop int, branch if != 0
    IF_ICMPEQ = auto()      # pop two ints, branch if equal
    IF_ICMPNE = auto()
    IF_ICMPLT = auto()
    IF_ICMPLE = auto()
    IF_ICMPGT = auto()
    IF_ICMPGE = auto()
    # Returns.
    RETURN = auto()         # return void
    ARETURN = auto()        # return TOS
    NOP = auto()


#: Opcodes whose operand is a jump target (an instruction index).
BRANCH_OPCODES = frozenset(
    {
        Opcode.GOTO,
        Opcode.IFEQ,
        Opcode.IFNE,
        Opcode.IF_ICMPEQ,
        Opcode.IF_ICMPNE,
        Opcode.IF_ICMPLT,
        Opcode.IF_ICMPLE,
        Opcode.IF_ICMPGT,
        Opcode.IF_ICMPGE,
    }
)

#: Conditional branches (fall through when not taken).
CONDITIONAL_BRANCHES = BRANCH_OPCODES - {Opcode.GOTO}

#: Opcodes that end a basic block without falling through.
TERMINATORS = frozenset({Opcode.GOTO, Opcode.RETURN, Opcode.ARETURN})

#: Stack effect (pushes - pops) for opcodes with a fixed effect.  Calls and
#: NEWOBJ/NEWARRAY depend on their operand and are handled separately.
_FIXED_STACK_EFFECT = {
    Opcode.LDC: 1,
    Opcode.ACONST_NULL: 1,
    Opcode.LOAD: 1,
    Opcode.STORE: -1,
    Opcode.DUP: 1,
    Opcode.POP: -1,
    Opcode.SWAP: 0,
    Opcode.CHECKCAST: 0,
    Opcode.GETFIELD: 0,
    Opcode.ADD: -1,
    Opcode.SUB: -1,
    Opcode.MUL: -1,
    Opcode.DIV: -1,
    Opcode.REM: -1,
    Opcode.NEG: 0,
    Opcode.CMPEQ: -1,
    Opcode.CMPNE: -1,
    Opcode.CMPLT: -1,
    Opcode.CMPLE: -1,
    Opcode.CMPGT: -1,
    Opcode.CMPGE: -1,
    Opcode.IAND: -1,
    Opcode.IOR: -1,
    Opcode.GOTO: 0,
    Opcode.IFEQ: -1,
    Opcode.IFNE: -1,
    Opcode.IF_ICMPEQ: -2,
    Opcode.IF_ICMPNE: -2,
    Opcode.IF_ICMPLT: -2,
    Opcode.IF_ICMPLE: -2,
    Opcode.IF_ICMPGT: -2,
    Opcode.IF_ICMPGE: -2,
    Opcode.RETURN: 0,
    Opcode.ARETURN: -1,
    Opcode.NOP: 0,
}


@dataclass
class Instruction:
    """One mini-JVM instruction: an opcode plus its symbolic operand."""

    opcode: Opcode
    operand: object = None

    def stack_effect(self) -> int:
        """Net change in operand-stack depth."""
        opcode = self.opcode
        if opcode in (Opcode.INVOKEVIRTUAL, Opcode.INVOKEINTERFACE):
            _, argc = self.operand  # type: ignore[misc]
            return -int(argc)  # pops argc + receiver, pushes result
        if opcode is Opcode.INVOKESTATIC:
            _, argc = self.operand  # type: ignore[misc]
            return 1 - int(argc)
        if opcode is Opcode.NEWOBJ:
            _, argc = self.operand  # type: ignore[misc]
            return 1 - int(argc)
        if opcode is Opcode.NEWARRAY:
            return 1 - int(self.operand)  # type: ignore[arg-type]
        return _FIXED_STACK_EFFECT[opcode]

    def branch_target(self) -> Optional[int]:
        """Jump target for branch instructions (after assembly), else None."""
        if self.opcode in BRANCH_OPCODES:
            return int(self.operand)  # type: ignore[arg-type]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.operand is None:
            return self.opcode.name
        return f"{self.opcode.name} {self.operand!r}"


def format_instructions(instructions: list[Instruction]) -> str:
    """Human-readable bytecode listing."""
    targets = {
        instruction.branch_target()
        for instruction in instructions
        if instruction.branch_target() is not None
    }
    lines = []
    for index, instruction in enumerate(instructions):
        marker = "label" if index in targets else "     "
        lines.append(f"{marker} {index:3d}: {instruction!r}")
    return "\n".join(lines)
