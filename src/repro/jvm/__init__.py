"""A stack-based mini-JVM: the bytecode substrate of the reproduction.

The paper's rewriter consumes *Java bytecode*: a stack machine with untyped
locals, integer-only conditional branches and GOTO-based control flow.  This
package provides an equivalent substrate:

* :mod:`repro.jvm.instructions` — the instruction set (a compact subset of
  the JVM's, with symbolic operands),
* :mod:`repro.jvm.classfile` — classfiles, methods, annotations and a binary
  serialisation format,
* :mod:`repro.jvm.assembler` — a label-based method assembler,
* :mod:`repro.jvm.verifier` — structural/stack checks,
* :mod:`repro.jvm.interpreter` — a small VM that executes methods against
  Python runtime objects (QuerySets, entities, EntityManagers),
* :mod:`repro.jvm.stack_to_tac` — the Soot/Jimple analogue: operand-stack
  elimination into three-address code,
* :mod:`repro.jvm.tac_to_bytecode` — re-emission of (rewritten) TAC as
  bytecode,
* :mod:`repro.jvm.rewriter` — the Queryll bytecode rewriter for classfiles.
"""

from __future__ import annotations

from repro.jvm.assembler import MethodAssembler
from repro.jvm.classfile import ClassFile, MethodInfo
from repro.jvm.instructions import Instruction, Opcode
from repro.jvm.interpreter import Interpreter, JvmRuntime
from repro.jvm.rewriter import BytecodeRewriter, RewriteResult
from repro.jvm.stack_to_tac import method_to_tac
from repro.jvm.tac_to_bytecode import tac_to_instructions
from repro.jvm.verifier import verify_method

__all__ = [
    "BytecodeRewriter",
    "ClassFile",
    "Instruction",
    "Interpreter",
    "JvmRuntime",
    "MethodAssembler",
    "MethodInfo",
    "Opcode",
    "RewriteResult",
    "method_to_tac",
    "tac_to_instructions",
    "verify_method",
]
