"""The Queryll bytecode rewriter for mini-JVM classfiles.

This is the second of the paper's two programs (Fig. 9): it takes compiled
classfiles, finds methods annotated ``@Query``, converts their bytecode to
three-address code, runs the analysis pipeline, splices in the generated SQL
runtime calls and re-emits bytecode.  Methods (or individual loops) that
cannot be translated are left untouched — they still run, just inefficiently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.optimizer import OptimizerOptions
from repro.core.pipeline import QueryllPipeline, RewrittenQuery
from repro.core.rewriter import DEFAULT_REGISTRY, QueryRegistry, splice_rewritten_queries
from repro.jvm.classfile import ClassFile, MethodInfo
from repro.jvm.stack_to_tac import method_to_tac
from repro.jvm.tac_to_bytecode import tac_to_instructions
from repro.jvm.verifier import verify_method
from repro.orm.mapping import OrmMapping
from repro.errors import UnsupportedQueryError


@dataclass
class MethodRewriteInfo:
    """What happened to one ``@Query`` method."""

    method_name: str
    rewritten_queries: list[RewrittenQuery] = field(default_factory=list)
    skipped_reasons: list[str] = field(default_factory=list)

    @property
    def was_rewritten(self) -> bool:
        """True if at least one loop was replaced by SQL."""
        return bool(self.rewritten_queries)


@dataclass
class RewriteResult:
    """Outcome of rewriting a whole classfile."""

    classfile: ClassFile
    methods: dict[str, MethodRewriteInfo] = field(default_factory=dict)

    @property
    def rewritten_method_names(self) -> list[str]:
        """Names of methods in which at least one query was rewritten."""
        return [name for name, info in self.methods.items() if info.was_rewritten]

    def generated_sql(self, method_name: str) -> list[str]:
        """SQL statements generated for a given method."""
        info = self.methods.get(method_name)
        if info is None:
            return []
        return [query.sql for query in info.rewritten_queries]


class BytecodeRewriter:
    """Rewrites ``@Query`` methods of classfiles to use SQL.

    ``optimizer_options`` is threaded into the analysis pipeline:
    ``OptimizerOptions(optimize=False)`` reproduces the unoptimized SQL of
    the bare paper pipeline (the benchmarks' ablation configuration).
    """

    def __init__(
        self,
        mapping: OrmMapping,
        registry: Optional[QueryRegistry] = None,
        verify: bool = True,
        optimizer_options: Optional[OptimizerOptions] = None,
    ) -> None:
        self._pipeline = QueryllPipeline(mapping, optimizer_options=optimizer_options)
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._verify = verify

    @property
    def registry(self) -> QueryRegistry:
        """The registry rewritten bytecode refers to."""
        return self._registry

    # -- classfile level ------------------------------------------------------------------

    def rewrite_classfile(self, classfile: ClassFile) -> RewriteResult:
        """Rewrite every ``@Query`` method of a classfile (copy-on-write)."""
        output = classfile.copy()
        result = RewriteResult(classfile=output)
        for method in output.query_methods():
            info = self.rewrite_method(method)
            result.methods[method.name] = info
        return result

    def rewrite_classfile_bytes(self, data: bytes) -> tuple[bytes, RewriteResult]:
        """Rewrite a serialised classfile, returning new bytes plus the report."""
        classfile = ClassFile.from_bytes(data)
        result = self.rewrite_classfile(classfile)
        return result.classfile.to_bytes(), result

    # -- method level -----------------------------------------------------------------------

    def rewrite_method(self, method: MethodInfo) -> MethodRewriteInfo:
        """Rewrite one method in place (its instruction list is replaced)."""
        info = MethodRewriteInfo(method_name=method.name)
        if self._verify:
            verify_method(method)
        try:
            tac = method_to_tac(method)
        except Exception as error:  # noqa: BLE001 - any failure means "leave as is"
            info.skipped_reasons.append(f"could not convert to three-address code: {error}")
            return info

        report = self._pipeline.analyze_method(tac)
        info.skipped_reasons.extend(reason for _, reason in report.skipped)
        if not report.queries:
            return info

        try:
            splice = splice_rewritten_queries(tac, report.queries, self._registry)
        except UnsupportedQueryError as error:
            info.skipped_reasons.append(str(error))
            return info
        info.skipped_reasons.extend(reason for _, reason in splice.skipped)
        if not splice.replaced:
            return info

        new_instructions = tac_to_instructions(splice.method)
        method.instructions = new_instructions
        if self._verify:
            verify_method(method)
        info.rewritten_queries = splice.replaced
        return info
