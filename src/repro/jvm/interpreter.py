"""Interpreter for mini-JVM bytecode.

The interpreter is what makes un-rewritten queries *semantically correct but
slow*: a query method compiled from MiniJava runs on this VM, iterating the
whole source QuerySet through the ORM.  After rewriting, the same VM runs the
replacement bytecode, which issues a single SQL query through the Queryll
runtime.

Method calls dispatch onto Python runtime objects (QuerySets, entities,
EntityManagers, Pairs, strings, numbers); a small bridge provides Java-isms
such as ``equals`` and the ``Iterator`` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import BytecodeError
from repro.jvm.classfile import ClassFile, MethodInfo
from repro.jvm.instructions import Instruction, Opcode
from repro.orm.pair import Pair
from repro.orm.queryset import QuerySet

#: Safety limit on interpreted steps per method call.
MAX_STEPS = 50_000_000


class JavaIterator:
    """Java-style iterator over a Python iterable (hasNext / next)."""

    def __init__(self, iterator: Iterator[Any]) -> None:
        self._iterator = iterator
        self._buffered: list[Any] = []

    def hasNext(self) -> int:  # noqa: N802 - Java naming
        """1 if another element is available, else 0."""
        if self._buffered:
            return 1
        try:
            self._buffered.append(next(self._iterator))
            return 1
        except StopIteration:
            return 0

    def next(self) -> Any:
        """The next element."""
        if not self._buffered:
            self._buffered.append(next(self._iterator))
        return self._buffered.pop()


@dataclass
class JvmRuntime:
    """Runtime environment: constructable classes and static methods."""

    classes: dict[str, Callable[..., Any]] = field(default_factory=dict)
    static_methods: dict[str, Callable[..., Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.classes.setdefault("QuerySet", QuerySet)
        self.classes.setdefault("Pair", Pair)
        self.classes.setdefault("Double", float)
        self.classes.setdefault("Integer", int)
        self._register_default_statics()

    def _register_default_statics(self) -> None:
        self.static_methods.setdefault("Pair.PairCollection", Pair.pair_collection)
        self.static_methods.setdefault("Pair.pairCollection", Pair.pair_collection)

    def register_class(self, name: str, constructor: Callable[..., Any]) -> None:
        """Register a constructable class."""
        self.classes[name] = constructor

    def register_static(self, name: str, function: Callable[..., Any]) -> None:
        """Register a static method (INVOKESTATIC target)."""
        self.static_methods[name] = function

    def construct(self, class_name: str, args: tuple[Any, ...]) -> Any:
        """Instantiate a registered class."""
        if class_name not in self.classes:
            raise BytecodeError(f"unknown class {class_name!r}")
        return self.classes[class_name](*args)

    def call_static(self, name: str, args: tuple[Any, ...]) -> Any:
        """Invoke a registered static method."""
        if name not in self.static_methods:
            raise BytecodeError(f"unknown static method {name!r}")
        return self.static_methods[name](*args)


class Interpreter:
    """Executes mini-JVM methods."""

    def __init__(self, runtime: Optional[JvmRuntime] = None) -> None:
        self._runtime = runtime or JvmRuntime()
        #: Number of bytecode instructions executed (benchmark instrumentation).
        self.instructions_executed = 0

    @property
    def runtime(self) -> JvmRuntime:
        """The runtime environment."""
        return self._runtime

    # -- execution -----------------------------------------------------------------------

    def run(self, method: MethodInfo, arguments: dict[str, Any]) -> Any:
        """Execute ``method`` with named arguments; returns its result."""
        missing = [name for name in method.parameters if name not in arguments]
        if missing:
            raise BytecodeError(
                f"method {method.name!r} is missing arguments: {', '.join(missing)}"
            )
        locals_map: dict[str, Any] = dict(arguments)
        stack: list[Any] = []
        instructions = method.instructions
        pc = 0
        steps = 0

        while True:
            if pc >= len(instructions):
                raise BytecodeError(f"{method.name}: fell off the end of the bytecode")
            steps += 1
            if steps > MAX_STEPS:
                raise BytecodeError(f"{method.name}: exceeded {MAX_STEPS} steps")
            instruction = instructions[pc]
            opcode = instruction.opcode
            self.instructions_executed += 1

            if opcode is Opcode.LDC:
                stack.append(instruction.operand)
            elif opcode is Opcode.ACONST_NULL:
                stack.append(None)
            elif opcode is Opcode.LOAD:
                name = str(instruction.operand)
                if name not in locals_map:
                    raise BytecodeError(f"{method.name}: unassigned local {name!r}")
                stack.append(locals_map[name])
            elif opcode is Opcode.STORE:
                locals_map[str(instruction.operand)] = stack.pop()
            elif opcode is Opcode.DUP:
                stack.append(stack[-1])
            elif opcode is Opcode.POP:
                stack.pop()
            elif opcode is Opcode.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif opcode is Opcode.NEWOBJ:
                class_name, argc = instruction.operand  # type: ignore[misc]
                args = _pop_args(stack, int(argc))
                stack.append(self._runtime.construct(str(class_name), args))
            elif opcode is Opcode.NEWARRAY:
                count = int(instruction.operand)  # type: ignore[arg-type]
                stack.append(_pop_args(stack, count))
            elif opcode is Opcode.CHECKCAST:
                pass  # our VM is dynamically typed; casts always succeed
            elif opcode is Opcode.GETFIELD:
                receiver = stack.pop()
                stack.append(getattr(receiver, str(instruction.operand)))
            elif opcode in (Opcode.INVOKEVIRTUAL, Opcode.INVOKEINTERFACE):
                method_name, argc = instruction.operand  # type: ignore[misc]
                args = _pop_args(stack, int(argc))
                receiver = stack.pop()
                stack.append(self._invoke(receiver, str(method_name), args))
            elif opcode is Opcode.INVOKESTATIC:
                method_name, argc = instruction.operand  # type: ignore[misc]
                args = _pop_args(stack, int(argc))
                stack.append(self._runtime.call_static(str(method_name), args))
            elif opcode in _ARITHMETIC:
                right = stack.pop()
                left = stack.pop()
                stack.append(_ARITHMETIC[opcode](left, right))
            elif opcode is Opcode.NEG:
                stack.append(-stack.pop())
            elif opcode in _COMPARISONS:
                right = stack.pop()
                left = stack.pop()
                stack.append(1 if _COMPARISONS[opcode](left, right) else 0)
            elif opcode is Opcode.IAND:
                right = stack.pop()
                left = stack.pop()
                stack.append(1 if _as_int(left) and _as_int(right) else 0)
            elif opcode is Opcode.IOR:
                right = stack.pop()
                left = stack.pop()
                stack.append(1 if _as_int(left) or _as_int(right) else 0)
            elif opcode is Opcode.GOTO:
                pc = int(instruction.operand)  # type: ignore[arg-type]
                continue
            elif opcode is Opcode.IFEQ:
                if _as_int(stack.pop()) == 0:
                    pc = int(instruction.operand)  # type: ignore[arg-type]
                    continue
            elif opcode is Opcode.IFNE:
                if _as_int(stack.pop()) != 0:
                    pc = int(instruction.operand)  # type: ignore[arg-type]
                    continue
            elif opcode in _INT_BRANCHES:
                right = stack.pop()
                left = stack.pop()
                if _INT_BRANCHES[opcode](left, right):
                    pc = int(instruction.operand)  # type: ignore[arg-type]
                    continue
            elif opcode is Opcode.ARETURN:
                return stack.pop()
            elif opcode is Opcode.RETURN:
                return None
            elif opcode is Opcode.NOP:
                pass
            else:  # pragma: no cover - defensive
                raise BytecodeError(f"unhandled opcode {opcode}")
            pc += 1

    def run_class_method(
        self, classfile: ClassFile, method_name: str, arguments: dict[str, Any]
    ) -> Any:
        """Execute a method of a classfile by name."""
        return self.run(classfile.method(method_name), arguments)

    # -- dispatch ---------------------------------------------------------------------------

    def _invoke(self, receiver: Any, method_name: str, args: tuple[Any, ...]) -> Any:
        if receiver is None:
            raise BytecodeError(f"NullPointerException calling {method_name!r}")
        if method_name == "equals" and len(args) == 1:
            return 1 if receiver == args[0] else 0
        if method_name == "iterator" and not hasattr(receiver, "hasNext"):
            return JavaIterator(iter(receiver))
        if method_name == "compareTo" and len(args) == 1:
            return (receiver > args[0]) - (receiver < args[0])
        attribute = getattr(receiver, method_name, None)
        if attribute is None:
            raise BytecodeError(
                f"{type(receiver).__name__} has no method {method_name!r}"
            )
        if callable(attribute):
            result = attribute(*args)
        else:
            if args:
                raise BytecodeError(f"{method_name!r} is a field, not a method")
            result = attribute
        if isinstance(result, bool):
            return 1 if result else 0
        return result


_ARITHMETIC = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: lambda a, b: _java_div(a, b),
    Opcode.REM: lambda a, b: a % b,
}

_COMPARISONS = {
    Opcode.CMPEQ: lambda a, b: a == b,
    Opcode.CMPNE: lambda a, b: a != b,
    Opcode.CMPLT: lambda a, b: a < b,
    Opcode.CMPLE: lambda a, b: a <= b,
    Opcode.CMPGT: lambda a, b: a > b,
    Opcode.CMPGE: lambda a, b: a >= b,
}

_INT_BRANCHES = {
    Opcode.IF_ICMPEQ: lambda a, b: a == b,
    Opcode.IF_ICMPNE: lambda a, b: a != b,
    Opcode.IF_ICMPLT: lambda a, b: a < b,
    Opcode.IF_ICMPLE: lambda a, b: a <= b,
    Opcode.IF_ICMPGT: lambda a, b: a > b,
    Opcode.IF_ICMPGE: lambda a, b: a >= b,
}


def _pop_args(stack: list[Any], count: int) -> tuple[Any, ...]:
    if count == 0:
        return ()
    args = tuple(stack[-count:])
    del stack[-count:]
    return args


def _as_int(value: Any) -> int:
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, (int, float)):
        return int(value)
    raise BytecodeError(f"expected an integer condition, got {value!r}")


def _java_div(left: Any, right: Any) -> Any:
    if isinstance(left, int) and isinstance(right, int):
        if right == 0:
            raise BytecodeError("ArithmeticException: division by zero")
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    return left / right
