"""Bytecode verifier for the mini-JVM.

Checks the structural properties the interpreter and the rewriter rely on:
branch targets in range, consistent operand-stack depth at every instruction
(via abstract interpretation over depths), no stack underflow, and locals
read only after being written (or being parameters).
"""

from __future__ import annotations

from repro.errors import BytecodeError
from repro.jvm.classfile import MethodInfo
from repro.jvm.instructions import (
    BRANCH_OPCODES,
    CONDITIONAL_BRANCHES,
    Instruction,
    Opcode,
    TERMINATORS,
)


def verify_method(method: MethodInfo) -> None:
    """Verify one method, raising :class:`BytecodeError` on problems."""
    instructions = method.instructions
    if not instructions:
        raise BytecodeError(f"method {method.name!r} has no instructions")

    _check_branch_targets(method)
    _check_stack_depths(method)
    _check_locals(method)

    last = instructions[-1]
    if last.opcode not in TERMINATORS and last.opcode not in BRANCH_OPCODES:
        raise BytecodeError(
            f"method {method.name!r} can fall off the end of its bytecode"
        )


def _check_branch_targets(method: MethodInfo) -> None:
    count = len(method.instructions)
    for index, instruction in enumerate(method.instructions):
        target = instruction.branch_target()
        if target is not None and not 0 <= target < count:
            raise BytecodeError(
                f"{method.name}: instruction {index} branches to invalid "
                f"target {target}"
            )


def _check_stack_depths(method: MethodInfo) -> None:
    instructions = method.instructions
    depths: dict[int, int] = {0: 0}
    worklist = [0]
    while worklist:
        index = worklist.pop()
        depth = depths[index]
        instruction = instructions[index]
        new_depth = depth + instruction.stack_effect()
        if new_depth < 0 or depth + _pops(instruction) > depth + max(0, _pops(instruction)):
            pass
        if depth - _pops(instruction) < 0:
            raise BytecodeError(
                f"{method.name}: stack underflow at instruction {index} "
                f"({instruction!r}, depth {depth})"
            )
        successors: list[int] = []
        target = instruction.branch_target()
        if target is not None:
            successors.append(target)
        if instruction.opcode not in TERMINATORS:
            if index + 1 < len(instructions):
                successors.append(index + 1)
        elif instruction.opcode is Opcode.GOTO:
            pass
        for successor in successors:
            if successor in depths:
                if depths[successor] != new_depth:
                    raise BytecodeError(
                        f"{method.name}: inconsistent stack depth at "
                        f"instruction {successor} "
                        f"({depths[successor]} vs {new_depth})"
                    )
            else:
                depths[successor] = new_depth
                worklist.append(successor)


def _pops(instruction: Instruction) -> int:
    """Number of values an instruction pops."""
    opcode = instruction.opcode
    if opcode in (Opcode.INVOKEVIRTUAL, Opcode.INVOKEINTERFACE):
        _, argc = instruction.operand  # type: ignore[misc]
        return int(argc) + 1
    if opcode is Opcode.INVOKESTATIC:
        _, argc = instruction.operand  # type: ignore[misc]
        return int(argc)
    if opcode is Opcode.NEWOBJ:
        _, argc = instruction.operand  # type: ignore[misc]
        return int(argc)
    if opcode is Opcode.NEWARRAY:
        return int(instruction.operand)  # type: ignore[arg-type]
    pops = {
        Opcode.LDC: 0, Opcode.ACONST_NULL: 0, Opcode.LOAD: 0, Opcode.STORE: 1,
        Opcode.DUP: 1, Opcode.POP: 1, Opcode.SWAP: 2, Opcode.CHECKCAST: 1,
        Opcode.GETFIELD: 1, Opcode.ADD: 2, Opcode.SUB: 2, Opcode.MUL: 2,
        Opcode.DIV: 2, Opcode.REM: 2, Opcode.NEG: 1, Opcode.CMPEQ: 2,
        Opcode.CMPNE: 2, Opcode.CMPLT: 2, Opcode.CMPLE: 2, Opcode.CMPGT: 2,
        Opcode.CMPGE: 2, Opcode.IAND: 2, Opcode.IOR: 2, Opcode.GOTO: 0,
        Opcode.IFEQ: 1, Opcode.IFNE: 1, Opcode.IF_ICMPEQ: 2, Opcode.IF_ICMPNE: 2,
        Opcode.IF_ICMPLT: 2, Opcode.IF_ICMPLE: 2, Opcode.IF_ICMPGT: 2,
        Opcode.IF_ICMPGE: 2, Opcode.RETURN: 0, Opcode.ARETURN: 1, Opcode.NOP: 0,
    }
    return pops[opcode]


def _check_locals(method: MethodInfo) -> None:
    """Every LOAD must be reachable only after a STORE of that local or the
    local being a parameter.  A conservative forward data-flow over the set
    of definitely-assigned locals."""
    instructions = method.instructions
    assigned_at: dict[int, frozenset[str]] = {0: frozenset(method.parameters)}
    worklist = [0]
    while worklist:
        index = worklist.pop()
        assigned = assigned_at[index]
        instruction = instructions[index]
        if instruction.opcode is Opcode.LOAD and instruction.operand not in assigned:
            raise BytecodeError(
                f"{method.name}: local {instruction.operand!r} may be read "
                f"before assignment at instruction {index}"
            )
        new_assigned = assigned
        if instruction.opcode is Opcode.STORE:
            new_assigned = assigned | {str(instruction.operand)}
        successors: list[int] = []
        target = instruction.branch_target()
        if target is not None:
            successors.append(target)
        if instruction.opcode not in TERMINATORS and index + 1 < len(instructions):
            successors.append(index + 1)
        for successor in successors:
            previous = assigned_at.get(successor)
            if previous is None:
                assigned_at[successor] = new_assigned
                worklist.append(successor)
            else:
                merged = previous & new_assigned
                if merged != previous:
                    assigned_at[successor] = merged
                    worklist.append(successor)
