"""Classfile model and binary serialisation for the mini-JVM.

A :class:`ClassFile` holds methods (with annotations such as ``@Query``);
methods hold assembled instructions.  The binary format is a small
length-prefixed encoding — enough to demonstrate that the rewriter operates
on *compiled artifacts* that can be written to disk, shipped, reloaded and
executed, like real Java classfiles.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from typing import BinaryIO, Iterable, Optional

from repro.errors import BytecodeError
from repro.jvm.instructions import Instruction, Opcode

_MAGIC = b"QLLC"
_VERSION = 1

# Constant tags used when serialising operands.
_TAG_NONE = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_STR = 3
_TAG_BOOL = 4
_TAG_NULL = 5
_TAG_PAIR = 6  # (string, int) pairs used by call operands


@dataclass
class MethodInfo:
    """One method of a classfile."""

    name: str
    parameters: list[str]
    instructions: list[Instruction] = field(default_factory=list)
    annotations: set[str] = field(default_factory=set)
    return_type: str = "Object"

    @property
    def is_query(self) -> bool:
        """True if the method carries the ``@Query`` annotation."""
        return "Query" in self.annotations

    def copy(self) -> "MethodInfo":
        """Deep-enough copy (instructions are copied, operands shared)."""
        return MethodInfo(
            name=self.name,
            parameters=list(self.parameters),
            instructions=[
                Instruction(instruction.opcode, instruction.operand)
                for instruction in self.instructions
            ],
            annotations=set(self.annotations),
            return_type=self.return_type,
        )


@dataclass
class ClassFile:
    """A compiled class: a name plus its methods."""

    name: str
    methods: dict[str, MethodInfo] = field(default_factory=dict)

    def add_method(self, method: MethodInfo) -> None:
        """Add a method (names must be unique)."""
        if method.name in self.methods:
            raise BytecodeError(f"method {method.name!r} already defined")
        self.methods[method.name] = method

    def method(self, name: str) -> MethodInfo:
        """Look up a method by name."""
        if name not in self.methods:
            raise BytecodeError(f"class {self.name!r} has no method {name!r}")
        return self.methods[name]

    def query_methods(self) -> list[MethodInfo]:
        """Methods annotated with ``@Query`` (the rewriter's targets)."""
        return [method for method in self.methods.values() if method.is_query]

    def copy(self) -> "ClassFile":
        """Copy the classfile (used by the rewriter to preserve the input)."""
        return ClassFile(
            name=self.name,
            methods={name: method.copy() for name, method in self.methods.items()},
        )

    # -- binary serialisation -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to the mini classfile format."""
        buffer = io.BytesIO()
        buffer.write(_MAGIC)
        buffer.write(struct.pack(">H", _VERSION))
        _write_str(buffer, self.name)
        buffer.write(struct.pack(">H", len(self.methods)))
        for method in self.methods.values():
            _write_method(buffer, method)
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "ClassFile":
        """Deserialise from :meth:`to_bytes` output."""
        buffer = io.BytesIO(data)
        magic = buffer.read(4)
        if magic != _MAGIC:
            raise BytecodeError("not a mini-JVM classfile (bad magic)")
        (version,) = struct.unpack(">H", buffer.read(2))
        if version != _VERSION:
            raise BytecodeError(f"unsupported classfile version {version}")
        name = _read_str(buffer)
        (method_count,) = struct.unpack(">H", buffer.read(2))
        classfile = cls(name=name)
        for _ in range(method_count):
            classfile.add_method(_read_method(buffer))
        return classfile


# -- serialisation helpers -----------------------------------------------------------------


def _write_str(buffer: BinaryIO, text: str) -> None:
    encoded = text.encode("utf-8")
    buffer.write(struct.pack(">I", len(encoded)))
    buffer.write(encoded)


def _read_str(buffer: BinaryIO) -> str:
    (length,) = struct.unpack(">I", buffer.read(4))
    return buffer.read(length).decode("utf-8")


def _write_operand(buffer: BinaryIO, operand: object) -> None:
    if operand is None:
        buffer.write(struct.pack(">B", _TAG_NONE))
    elif isinstance(operand, bool):
        buffer.write(struct.pack(">B?", _TAG_BOOL, operand))
    elif isinstance(operand, int):
        buffer.write(struct.pack(">Bq", _TAG_INT, operand))
    elif isinstance(operand, float):
        buffer.write(struct.pack(">Bd", _TAG_FLOAT, operand))
    elif isinstance(operand, str):
        buffer.write(struct.pack(">B", _TAG_STR))
        _write_str(buffer, operand)
    elif isinstance(operand, tuple) and len(operand) == 2:
        buffer.write(struct.pack(">B", _TAG_PAIR))
        _write_str(buffer, str(operand[0]))
        buffer.write(struct.pack(">q", int(operand[1])))
    elif operand is Ellipsis:
        buffer.write(struct.pack(">B", _TAG_NULL))
    else:
        raise BytecodeError(f"cannot serialise operand {operand!r}")


def _read_operand(buffer: BinaryIO) -> object:
    (tag,) = struct.unpack(">B", buffer.read(1))
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BOOL:
        (value,) = struct.unpack(">?", buffer.read(1))
        return value
    if tag == _TAG_INT:
        (value,) = struct.unpack(">q", buffer.read(8))
        return value
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack(">d", buffer.read(8))
        return value
    if tag == _TAG_STR:
        return _read_str(buffer)
    if tag == _TAG_PAIR:
        name = _read_str(buffer)
        (count,) = struct.unpack(">q", buffer.read(8))
        return (name, count)
    if tag == _TAG_NULL:
        return Ellipsis
    raise BytecodeError(f"unknown operand tag {tag}")


def _write_method(buffer: BinaryIO, method: MethodInfo) -> None:
    _write_str(buffer, method.name)
    _write_str(buffer, method.return_type)
    buffer.write(struct.pack(">H", len(method.parameters)))
    for parameter in method.parameters:
        _write_str(buffer, parameter)
    buffer.write(struct.pack(">H", len(method.annotations)))
    for annotation in sorted(method.annotations):
        _write_str(buffer, annotation)
    buffer.write(struct.pack(">I", len(method.instructions)))
    for instruction in method.instructions:
        buffer.write(struct.pack(">H", instruction.opcode.value))
        _write_operand(buffer, instruction.operand)


def _read_method(buffer: BinaryIO) -> MethodInfo:
    name = _read_str(buffer)
    return_type = _read_str(buffer)
    (parameter_count,) = struct.unpack(">H", buffer.read(2))
    parameters = [_read_str(buffer) for _ in range(parameter_count)]
    (annotation_count,) = struct.unpack(">H", buffer.read(2))
    annotations = {_read_str(buffer) for _ in range(annotation_count)}
    (instruction_count,) = struct.unpack(">I", buffer.read(4))
    instructions = []
    for _ in range(instruction_count):
        (opcode_value,) = struct.unpack(">H", buffer.read(2))
        operand = _read_operand(buffer)
        instructions.append(Instruction(Opcode(opcode_value), operand))
    return MethodInfo(
        name=name,
        parameters=parameters,
        instructions=instructions,
        annotations=annotations,
        return_type=return_type,
    )


def load_classfiles(blobs: Iterable[bytes]) -> list[ClassFile]:
    """Deserialise several classfiles."""
    return [ClassFile.from_bytes(blob) for blob in blobs]
