"""Operand-stack elimination: mini-JVM bytecode to three-address code.

This is the reproduction's Soot/Jimple step (the paper feeds ``@Query``
methods "into Sable's Soot framework for conversion into Jimple code" because
"three-address code is useful because it eliminates Java's execution
stack").  The conversion abstractly interprets the operand stack, building
symbolic expressions, and emits one TAC instruction per store, discarded
call, branch or return.
"""

from __future__ import annotations

from repro.core.expr import nodes
from repro.core.tac.instructions import (
    Assign,
    ExprStatement,
    Goto,
    IfGoto,
    Return,
)
from repro.core.tac.method import TacMethod
from repro.errors import BytecodeError
from repro.jvm.classfile import MethodInfo
from repro.jvm.instructions import Instruction, Opcode

_COMPARISON_OPS = {
    Opcode.CMPEQ: "==",
    Opcode.CMPNE: "!=",
    Opcode.CMPLT: "<",
    Opcode.CMPLE: "<=",
    Opcode.CMPGT: ">",
    Opcode.CMPGE: ">=",
}

_ARITHMETIC_OPS = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
    Opcode.DIV: "/",
    Opcode.REM: "%",
}

_BRANCH_COMPARISONS = {
    Opcode.IF_ICMPEQ: "==",
    Opcode.IF_ICMPNE: "!=",
    Opcode.IF_ICMPLT: "<",
    Opcode.IF_ICMPLE: "<=",
    Opcode.IF_ICMPGT: ">",
    Opcode.IF_ICMPGE: ">=",
}


class StackToTac:
    """Converts one method's bytecode to TAC."""

    def __init__(self, method: MethodInfo) -> None:
        self._method = method
        self._tac: list = []
        self._stack: list[nodes.Expression] = []
        self._tac_index_at: dict[int, int] = {}
        self._pending_stacks: dict[int, list[nodes.Expression]] = {}
        self._temp_counter = 0

    def convert(self) -> TacMethod:
        """Run the conversion."""
        instructions = self._method.instructions
        jump_targets = {
            instruction.branch_target()
            for instruction in instructions
            if instruction.branch_target() is not None
        }
        previous_falls_through = True
        for index, instruction in enumerate(instructions):
            self._tac_index_at[index] = len(self._tac)
            if index in jump_targets and not previous_falls_through:
                self._stack = list(self._pending_stacks.get(index, []))
            previous_falls_through = self._convert_one(instruction)

        method = TacMethod(
            name=self._method.name,
            parameters=list(self._method.parameters),
            instructions=self._tac,
            source_name=self._method.name,
        )
        end = len(self._tac)
        for instruction in method.instructions:
            if isinstance(instruction, (Goto, IfGoto)):
                instruction.target = self._tac_index_at.get(instruction.target, end)
        method.validate()
        return method

    # -- helpers -----------------------------------------------------------------------

    def _push(self, expression: nodes.Expression) -> None:
        self._stack.append(expression)

    def _pop(self) -> nodes.Expression:
        if not self._stack:
            raise BytecodeError(
                f"{self._method.name}: operand stack underflow during Jimple conversion"
            )
        return self._stack.pop()

    def _pop_many(self, count: int) -> list[nodes.Expression]:
        values = [self._pop() for _ in range(count)]
        values.reverse()
        return values

    def _emit(self, instruction) -> None:
        self._tac.append(instruction)

    def _new_temp(self) -> str:
        self._temp_counter += 1
        return f"$r{self._temp_counter}"

    def _remember_stack(self, target: int) -> None:
        if target not in self._pending_stacks:
            self._pending_stacks[target] = list(self._stack)

    def _push_call(self, call: nodes.Call) -> None:
        """Materialise a call result into a fresh temporary (Jimple style:
        ``$z3 = virtualinvoke $r15.equals("Seattle")``) and push the temp."""
        temp = self._new_temp()
        self._emit(Assign(temp, call))
        self._push(nodes.Var(temp))

    # -- conversion ---------------------------------------------------------------------

    def _convert_one(self, instruction: Instruction) -> bool:
        """Convert one bytecode instruction; returns fall-through."""
        opcode = instruction.opcode

        if opcode is Opcode.LDC:
            self._push(nodes.Constant(instruction.operand))  # type: ignore[arg-type]
        elif opcode is Opcode.ACONST_NULL:
            self._push(nodes.Constant(None))
        elif opcode is Opcode.LOAD:
            self._push(nodes.Var(str(instruction.operand)))
        elif opcode is Opcode.STORE:
            self._emit(Assign(str(instruction.operand), self._pop()))
        elif opcode is Opcode.DUP:
            top = self._pop()
            # Materialise into a temporary so both uses share one evaluation.
            if not isinstance(top, (nodes.Var, nodes.Constant)):
                temp = self._new_temp()
                self._emit(Assign(temp, top))
                top = nodes.Var(temp)
            self._push(top)
            self._push(top)
        elif opcode is Opcode.POP:
            value = self._pop()
            if isinstance(value, (nodes.Call, nodes.New)):
                self._emit(ExprStatement(value))
            elif isinstance(value, nodes.Var) and self._tac:
                # A call whose result is immediately discarded becomes a bare
                # invoke statement (as in Jimple), not a dead assignment.
                last = self._tac[-1]
                if (
                    isinstance(last, Assign)
                    and last.target == value.name
                    and isinstance(last.value, (nodes.Call, nodes.New))
                ):
                    self._tac[-1] = ExprStatement(last.value)
        elif opcode is Opcode.SWAP:
            first = self._pop()
            second = self._pop()
            self._push(first)
            self._push(second)
        elif opcode is Opcode.NEWOBJ:
            class_name, argc = instruction.operand  # type: ignore[misc]
            args = self._pop_many(int(argc))
            self._push(nodes.New(str(class_name), tuple(args)))
        elif opcode is Opcode.NEWARRAY:
            args = self._pop_many(int(instruction.operand))  # type: ignore[arg-type]
            self._push(nodes.New("tuple", tuple(args)))
        elif opcode is Opcode.CHECKCAST:
            self._push(nodes.Cast(str(instruction.operand), self._pop()))
        elif opcode is Opcode.GETFIELD:
            self._push(nodes.GetField(self._pop(), str(instruction.operand)))
        elif opcode in (Opcode.INVOKEVIRTUAL, Opcode.INVOKEINTERFACE):
            method_name, argc = instruction.operand  # type: ignore[misc]
            args = self._pop_many(int(argc))
            receiver = self._pop()
            self._push_call(nodes.Call(receiver, str(method_name), tuple(args)))
        elif opcode is Opcode.INVOKESTATIC:
            method_name, argc = instruction.operand  # type: ignore[misc]
            args = self._pop_many(int(argc))
            self._push_call(nodes.Call(None, str(method_name), tuple(args)))
        elif opcode in _ARITHMETIC_OPS:
            right = self._pop()
            left = self._pop()
            self._push(nodes.BinOp(_ARITHMETIC_OPS[opcode], left, right))
        elif opcode is Opcode.NEG:
            self._push(nodes.UnaryOp("neg", self._pop()))
        elif opcode in _COMPARISON_OPS:
            right = self._pop()
            left = self._pop()
            self._push(nodes.BinOp(_COMPARISON_OPS[opcode], left, right))
        elif opcode is Opcode.IAND:
            right = self._pop()
            left = self._pop()
            self._push(nodes.BinOp("&&", left, right))
        elif opcode is Opcode.IOR:
            right = self._pop()
            left = self._pop()
            self._push(nodes.BinOp("||", left, right))
        elif opcode is Opcode.GOTO:
            target = int(instruction.operand)  # type: ignore[arg-type]
            self._remember_stack(target)
            self._emit(Goto(target))
            return False
        elif opcode in (Opcode.IFEQ, Opcode.IFNE):
            value = self._pop()
            comparison = "==" if opcode is Opcode.IFEQ else "!="
            condition = nodes.BinOp(comparison, value, nodes.Constant(0))
            target = int(instruction.operand)  # type: ignore[arg-type]
            self._remember_stack(target)
            self._emit(IfGoto(condition, target))
        elif opcode in _BRANCH_COMPARISONS:
            right = self._pop()
            left = self._pop()
            condition = nodes.BinOp(_BRANCH_COMPARISONS[opcode], left, right)
            target = int(instruction.operand)  # type: ignore[arg-type]
            self._remember_stack(target)
            self._emit(IfGoto(condition, target))
        elif opcode is Opcode.ARETURN:
            self._emit(Return(self._pop()))
            return False
        elif opcode is Opcode.RETURN:
            self._emit(Return(None))
            return False
        elif opcode is Opcode.NOP:
            pass
        else:  # pragma: no cover - defensive
            raise BytecodeError(f"unhandled opcode {opcode} during conversion")
        return True


def method_to_tac(method: MethodInfo) -> TacMethod:
    """Convert a mini-JVM method to three-address code."""
    return StackToTac(method).convert()
