"""Queryll runtime library for the mini-JVM.

Rewritten bytecode calls the static method ``queryllExecuteQuery(em, key,
sql, params, dest)``; this module registers that method (and the standard
constructable classes) on a :class:`~repro.jvm.interpreter.JvmRuntime`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.rewriter import DEFAULT_REGISTRY, QueryRegistry
from repro.core.runtime import execute_generated_query
from repro.errors import BytecodeError
from repro.jvm.interpreter import JvmRuntime
from repro.orm.entity_manager import EntityManager
from repro.orm.queryset import QuerySet


def standard_runtime(registry: Optional[QueryRegistry] = None) -> JvmRuntime:
    """A JvmRuntime with the Queryll runtime entry point registered."""
    registry = registry if registry is not None else DEFAULT_REGISTRY
    runtime = JvmRuntime()

    def queryll_execute_query(
        entity_manager: object,
        key: object,
        sql: object,
        params: object,
        destination: object,
    ) -> object:
        if not isinstance(entity_manager, EntityManager):
            raise BytecodeError(
                "queryllExecuteQuery expects an EntityManager as its first argument"
            )
        if not isinstance(destination, QuerySet):
            raise BytecodeError(
                "queryllExecuteQuery expects a QuerySet destination"
            )
        generated = registry.lookup(int(key))  # type: ignore[arg-type]
        values = dict(zip(generated.parameter_sources, tuple(params)))  # type: ignore[arg-type]
        return execute_generated_query(entity_manager, generated, values, destination)

    runtime.register_static("queryllExecuteQuery", queryll_execute_query)
    return runtime
