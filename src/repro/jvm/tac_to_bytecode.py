"""Re-emission of three-address code as mini-JVM bytecode.

After the rewriter has replaced a query loop in the TAC form of a method, the
whole method is lowered back to bytecode so it can be stored in a classfile
and executed on the interpreter — completing the paper's round trip
(bytecode in, bytecode with SQL queries out).
"""

from __future__ import annotations

from repro.core.expr import nodes
from repro.core.tac.instructions import (
    Assign,
    ExprStatement,
    Goto,
    IfGoto,
    Nop,
    Return,
)
from repro.core.tac.method import TacMethod
from repro.errors import BytecodeError
from repro.jvm.classfile import MethodInfo
from repro.jvm.instructions import Instruction, Opcode

_ARITHMETIC = {"+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL, "/": Opcode.DIV, "%": Opcode.REM}
_COMPARISONS = {
    "==": Opcode.CMPEQ,
    "!=": Opcode.CMPNE,
    "<": Opcode.CMPLT,
    "<=": Opcode.CMPLE,
    ">": Opcode.CMPGT,
    ">=": Opcode.CMPGE,
}


class TacToBytecode:
    """Lowers one TAC method to bytecode instructions."""

    def __init__(self, method: TacMethod) -> None:
        self._method = method
        self._instructions: list[Instruction] = []
        self._bytecode_index_of_tac: dict[int, int] = {}
        self._fixups: list[tuple[int, int]] = []  # (bytecode index, tac target)

    def convert(self) -> list[Instruction]:
        """Lower every TAC instruction, resolving branch targets."""
        for tac_index, instruction in enumerate(self._method.instructions):
            self._bytecode_index_of_tac[tac_index] = len(self._instructions)
            self._lower(instruction)
        # A method must not fall off the end.
        if not self._instructions or self._instructions[-1].opcode not in (
            Opcode.RETURN,
            Opcode.ARETURN,
            Opcode.GOTO,
        ):
            self._instructions.append(Instruction(Opcode.RETURN))
        for bytecode_index, tac_target in self._fixups:
            target = self._bytecode_index_of_tac.get(tac_target)
            if target is None:
                target = len(self._instructions) - 1
            self._instructions[bytecode_index].operand = target
        return self._instructions

    # -- lowering --------------------------------------------------------------------------

    def _lower(self, instruction) -> None:
        if isinstance(instruction, Assign):
            self._eval(instruction.value)
            self._emit(Opcode.STORE, instruction.target)
        elif isinstance(instruction, ExprStatement):
            self._eval(instruction.value)
            self._emit(Opcode.POP)
        elif isinstance(instruction, IfGoto):
            self._eval_condition(instruction.condition)
            index = self._emit(Opcode.IFNE, -1)
            self._fixups.append((index, instruction.target))
        elif isinstance(instruction, Goto):
            index = self._emit(Opcode.GOTO, -1)
            self._fixups.append((index, instruction.target))
        elif isinstance(instruction, Return):
            if instruction.value is None:
                self._emit(Opcode.RETURN)
            else:
                self._eval(instruction.value)
                self._emit(Opcode.ARETURN)
        elif isinstance(instruction, Nop):
            self._emit(Opcode.NOP)
        else:  # pragma: no cover - defensive
            raise BytecodeError(f"cannot lower TAC instruction {instruction!r}")

    def _emit(self, opcode: Opcode, operand: object = None) -> int:
        self._instructions.append(Instruction(opcode, operand))
        return len(self._instructions) - 1

    def _eval_condition(self, expression: nodes.Expression) -> None:
        """Evaluate a condition so an integer (0/1) ends up on the stack."""
        self._eval(expression)

    def _eval(self, expression: nodes.Expression) -> None:
        if isinstance(expression, nodes.Constant):
            if expression.value is None:
                self._emit(Opcode.ACONST_NULL)
            elif isinstance(expression.value, bool):
                self._emit(Opcode.LDC, 1 if expression.value else 0)
            else:
                self._emit(Opcode.LDC, expression.value)
        elif isinstance(expression, nodes.Var):
            self._emit(Opcode.LOAD, expression.name)
        elif isinstance(expression, nodes.Cast):
            self._eval(expression.operand)
            self._emit(Opcode.CHECKCAST, expression.type_name)
        elif isinstance(expression, nodes.GetField):
            self._eval(expression.receiver)
            self._emit(Opcode.GETFIELD, expression.field)
        elif isinstance(expression, nodes.UnaryOp):
            if expression.op == "neg":
                self._eval(expression.operand)
                self._emit(Opcode.NEG)
            elif expression.op == "!":
                self._eval(expression.operand)
                self._emit(Opcode.LDC, 0)
                self._emit(Opcode.CMPEQ)
            else:
                raise BytecodeError(f"unknown unary operator {expression.op!r}")
        elif isinstance(expression, nodes.BinOp):
            self._eval(expression.left)
            self._eval(expression.right)
            op = expression.op
            if op in _ARITHMETIC:
                self._emit(_ARITHMETIC[op])
            elif op in _COMPARISONS:
                self._emit(_COMPARISONS[op])
            elif op == "&&":
                self._emit(Opcode.IAND)
            elif op == "||":
                self._emit(Opcode.IOR)
            else:
                raise BytecodeError(f"unknown binary operator {op!r}")
        elif isinstance(expression, nodes.Call):
            if expression.receiver is None:
                for argument in expression.args:
                    self._eval(argument)
                self._emit(Opcode.INVOKESTATIC, (expression.method, len(expression.args)))
            else:
                self._eval(expression.receiver)
                for argument in expression.args:
                    self._eval(argument)
                self._emit(
                    Opcode.INVOKEVIRTUAL, (expression.method, len(expression.args))
                )
        elif isinstance(expression, nodes.New):
            for argument in expression.args:
                self._eval(argument)
            if expression.class_name == "tuple":
                self._emit(Opcode.NEWARRAY, len(expression.args))
            else:
                self._emit(Opcode.NEWOBJ, (expression.class_name, len(expression.args)))
        elif isinstance(expression, nodes.SourceEntity):
            raise BytecodeError(
                "a SourceEntity marker cannot be lowered back to bytecode"
            )
        else:  # pragma: no cover - defensive
            raise BytecodeError(f"cannot lower expression {expression!r}")


def tac_to_instructions(method: TacMethod) -> list[Instruction]:
    """Lower a TAC method body to bytecode instructions."""
    return TacToBytecode(method).convert()


def tac_to_method(
    method: TacMethod, annotations: set[str] | None = None, return_type: str = "Object"
) -> MethodInfo:
    """Lower a TAC method to a complete :class:`MethodInfo`."""
    return MethodInfo(
        name=method.name,
        parameters=list(method.parameters),
        instructions=tac_to_instructions(method),
        annotations=set(annotations or ()),
        return_type=return_type,
    )
