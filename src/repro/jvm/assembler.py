"""Label-based assembler for mini-JVM methods.

Compilers (and tests) emit instructions through :class:`MethodAssembler`
using symbolic labels; ``finish()`` resolves labels to instruction indexes
and returns a :class:`~repro.jvm.classfile.MethodInfo`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BytecodeError
from repro.jvm.classfile import MethodInfo
from repro.jvm.instructions import BRANCH_OPCODES, Instruction, Opcode


@dataclass
class MethodAssembler:
    """Incrementally assembles one method."""

    name: str
    parameters: list[str]
    annotations: set[str] = field(default_factory=set)
    return_type: str = "Object"
    _instructions: list[Instruction] = field(default_factory=list)
    _labels: dict[str, int] = field(default_factory=dict)
    _fixups: list[tuple[int, str]] = field(default_factory=list)

    # -- emission -------------------------------------------------------------------

    def emit(self, opcode: Opcode, operand: object = None) -> int:
        """Emit one instruction and return its index."""
        if opcode in BRANCH_OPCODES and isinstance(operand, str):
            index = len(self._instructions)
            self._instructions.append(Instruction(opcode, -1))
            self._fixups.append((index, operand))
            return index
        self._instructions.append(Instruction(opcode, operand))
        return len(self._instructions) - 1

    def label(self, name: str) -> None:
        """Place a label at the next instruction."""
        if name in self._labels:
            raise BytecodeError(f"label {name!r} already placed")
        self._labels[name] = len(self._instructions)

    # Convenience emitters -------------------------------------------------------------

    def ldc(self, value: object) -> int:
        """Push a constant."""
        return self.emit(Opcode.LDC, value)

    def load(self, name: str) -> int:
        """Push a local variable."""
        return self.emit(Opcode.LOAD, name)

    def store(self, name: str) -> int:
        """Pop into a local variable."""
        return self.emit(Opcode.STORE, name)

    def invokevirtual(self, method: str, argc: int) -> int:
        """Call an instance method."""
        return self.emit(Opcode.INVOKEVIRTUAL, (method, argc))

    def invokeinterface(self, method: str, argc: int) -> int:
        """Call an interface method (identical to invokevirtual here)."""
        return self.emit(Opcode.INVOKEINTERFACE, (method, argc))

    def invokestatic(self, method: str, argc: int) -> int:
        """Call a static runtime method."""
        return self.emit(Opcode.INVOKESTATIC, (method, argc))

    def newobj(self, class_name: str, argc: int = 0) -> int:
        """Construct an object."""
        return self.emit(Opcode.NEWOBJ, (class_name, argc))

    def checkcast(self, type_name: str) -> int:
        """Checked cast of TOS."""
        return self.emit(Opcode.CHECKCAST, type_name)

    def goto(self, label: str) -> int:
        """Unconditional jump."""
        return self.emit(Opcode.GOTO, label)

    def ifeq(self, label: str) -> int:
        """Branch if TOS == 0."""
        return self.emit(Opcode.IFEQ, label)

    def ifne(self, label: str) -> int:
        """Branch if TOS != 0."""
        return self.emit(Opcode.IFNE, label)

    def areturn(self) -> int:
        """Return TOS."""
        return self.emit(Opcode.ARETURN)

    def return_void(self) -> int:
        """Return void."""
        return self.emit(Opcode.RETURN)

    # -- finish ----------------------------------------------------------------------

    def finish(self) -> MethodInfo:
        """Resolve labels and build the MethodInfo."""
        for index, label in self._fixups:
            if label not in self._labels:
                raise BytecodeError(f"label {label!r} was never placed")
            self._instructions[index].operand = self._labels[label]
        method = MethodInfo(
            name=self.name,
            parameters=list(self.parameters),
            instructions=list(self._instructions),
            annotations=set(self.annotations),
            return_type=self.return_type,
        )
        return method
