"""Cross-cutting observability: tracing, metrics, slow-query logging.

The one modular layer the middleware paper's AOP argument calls for:
every subsystem (engine, server, pools, coordinator, replication) records
into these primitives instead of growing its own, and every export
surface (``Database.stats()``, SERVER_STATS, the METRICS and TRACES wire
verbs, ``serve.py --metrics-port``) reads back out of them.

* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram + MetricsRegistry
  with Prometheus text rendering and collector bridging.
* :mod:`repro.obs.trace` — TraceContext on the wire, Span records in a
  bounded TraceBuffer, TracingOptions with a zero-cost disabled path.
* :mod:`repro.obs.slowlog` — structured JSON-lines slow-query log.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    start_metrics_http_server,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    ActiveSpan,
    Span,
    TraceBuffer,
    TraceContext,
    TracingOptions,
    new_root_context,
    new_span_id,
    new_trace_id,
    span_tree,
)

__all__ = [
    "ActiveSpan",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQueryLog",
    "Span",
    "TraceBuffer",
    "TraceContext",
    "TracingOptions",
    "new_root_context",
    "new_span_id",
    "new_trace_id",
    "span_tree",
    "start_metrics_http_server",
]
