"""Distributed tracing: contexts on the wire, spans in a ring buffer.

One statement's journey through the stack — pooled client, sharding
coordinator, shard primary, read replica — becomes one *trace*: a tree of
*spans*, one per node that did work, each carrying phase timings
(parse/plan/execute/fetch/WAL-fsync/2PC...).  The pieces:

* :class:`TraceContext` — what travels: a 128-bit trace id, the sender's
  span id (the receiver's parent), and a sampled flag.  25 bytes on the
  wire (see :meth:`TraceContext.to_wire_bytes`), appended to EXECUTE /
  PREPARE / FETCH / 2PC frames as an optional trailing field so old
  peers interoperate unchanged.
* :class:`Span` — what is recorded: ids, a name, the recording node,
  wall-clock start, duration, a ``phases`` dict of per-phase milliseconds,
  an ``events`` dict of counts (conflict retries), and a status.
* :class:`TraceBuffer` — a bounded in-memory ring per node; spans are
  queryable by trace id through ``Database.traces()`` and the TRACES wire
  verb, and old spans fall off the end instead of growing the heap.
* :class:`TracingOptions` — the on/off switch.  Disabled (the default)
  the hot path pays exactly one attribute check and no allocation.

Assembling a cross-node trace is pull-based: each node buffers only its
own spans; ``traces(trace_id)`` on a coordinator or routed pool fans the
question out and merges (see :mod:`repro.sharding.coordinator` and
:mod:`repro.netclient.pool`).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Wire size of an encoded context: 16-byte trace id + 8-byte span id +
#: 1 flag byte.
TRACE_CONTEXT_WIRE_BYTES = 25


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 hex characters."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 hex characters."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one traced request.

    ``span_id`` is always the *sender's* span: the node that decodes this
    context starts its own span with ``parent_span_id=ctx.span_id`` and
    forwards a context carrying its new span id.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def child_context(self, span_id: str) -> "TraceContext":
        """The context to forward once this node opened ``span_id``."""
        return TraceContext(self.trace_id, span_id, self.sampled)

    # -- wire form ------------------------------------------------------------

    def to_wire_bytes(self) -> bytes:
        return (
            bytes.fromhex(self.trace_id.rjust(32, "0"))
            + bytes.fromhex(self.span_id.rjust(16, "0"))
            + (b"\x01" if self.sampled else b"\x00")
        )

    @classmethod
    def from_wire_bytes(cls, payload: bytes) -> "TraceContext":
        if len(payload) != TRACE_CONTEXT_WIRE_BYTES:
            raise ValueError(
                f"trace context must be {TRACE_CONTEXT_WIRE_BYTES} bytes, "
                f"got {len(payload)}"
            )
        return cls(
            trace_id=payload[:16].hex(),
            span_id=payload[16:24].hex(),
            sampled=bool(payload[24] & 1),
        )


def new_root_context() -> TraceContext:
    """Start a new trace: no parent span yet — the first
    :class:`ActiveSpan` opened under this context becomes the root."""
    return TraceContext(new_trace_id(), "", True)


@dataclass
class Span:
    """One node's work on one traced request."""

    trace_id: str
    span_id: str
    parent_span_id: Optional[str]
    name: str
    node: str
    start_ts: float
    duration_ms: float = 0.0
    status: str = "ok"
    error: Optional[str] = None
    #: Per-phase wall milliseconds (parse, plan, execute, fetch,
    #: wal_fsync, 2pc_prepare, ...).
    phases: dict[str, float] = field(default_factory=dict)
    #: Event counts (conflict_retry, plan_cache_hit, ...).
    events: dict[str, int] = field(default_factory=dict)
    #: Free-form labels (sql, rows, route, shard, mode, ...).
    tags: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "name": self.name,
            "node": self.node,
            "start_ts": self.start_ts,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "error": self.error,
            "phases": dict(self.phases),
            "events": dict(self.events),
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, document: dict) -> "Span":
        return cls(
            trace_id=document["trace_id"],
            span_id=document["span_id"],
            parent_span_id=document.get("parent_span_id"),
            name=document.get("name", ""),
            node=document.get("node", ""),
            start_ts=document.get("start_ts", 0.0),
            duration_ms=document.get("duration_ms", 0.0),
            status=document.get("status", "ok"),
            error=document.get("error"),
            phases=dict(document.get("phases", {})),
            events=dict(document.get("events", {})),
            tags=dict(document.get("tags", {})),
        )


class ActiveSpan:
    """A span being recorded: phase/event/tag accumulation plus finish.

    Not thread-safe — a span belongs to the statement's thread, like the
    session executing it.
    """

    __slots__ = ("span", "context", "_buffer", "_t0", "_finished")

    def __init__(
        self,
        buffer: "TraceBuffer",
        context: TraceContext,
        name: str,
        node: str,
    ) -> None:
        self.context = context.child_context(new_span_id())
        self.span = Span(
            trace_id=context.trace_id,
            span_id=self.context.span_id,
            parent_span_id=context.span_id or None,
            name=name,
            node=node,
            start_ts=time.time(),
        )
        self._buffer = buffer
        self._t0 = time.perf_counter()
        self._finished = False

    def phase(self, name: str, seconds: float) -> None:
        phases = self.span.phases
        phases[name] = phases.get(name, 0.0) + seconds * 1000.0

    def event(self, name: str, count: int = 1) -> None:
        events = self.span.events
        events[name] = events.get(name, 0) + count

    def tag(self, **tags: object) -> None:
        self.span.tags.update(tags)

    def finish(self, error: Optional[BaseException] = None) -> None:
        if self._finished:
            return
        self._finished = True
        self.span.duration_ms = (time.perf_counter() - self._t0) * 1000.0
        if error is not None:
            self.span.status = "error"
            self.span.error = f"{type(error).__name__}: {error}"
        self._buffer.append(self.span)


class TraceBuffer:
    """A bounded ring of finished spans, newest evicting oldest."""

    def __init__(self, capacity: int = 512) -> None:
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=max(1, capacity))
        self._dropped = 0
        self._recorded = 0

    def append(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self._dropped += 1
            self._spans.append(span)
            self._recorded += 1

    def start_span(
        self, context: TraceContext, name: str, node: str
    ) -> ActiveSpan:
        return ActiveSpan(self, context, name, node)

    def spans(self, trace_id: Optional[str] = None) -> list[dict[str, object]]:
        """Buffered spans (as dicts), optionally filtered by trace id,
        oldest first."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [span for span in spans if span.trace_id == trace_id]
        return [span.as_dict() for span in spans]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids currently buffered, oldest first."""
        with self._lock:
            spans = list(self._spans)
        return list(dict.fromkeys(span.trace_id for span in spans))

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "buffered": len(self._spans),
                "capacity": self._spans.maxlen or 0,
                "recorded": self._recorded,
                "dropped": self._dropped,
            }

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


@dataclass(frozen=True)
class TracingOptions:
    """Whether (and how much) a node records and propagates traces.

    ``enabled=False`` — the default — is the hot-path contract: a
    statement with no inbound context pays one attribute check and
    allocates nothing.  An inbound context from a remote caller is always
    honoured (its ``sampled`` flag decides), so a cluster can trace from
    the edge without flipping every node's options.
    """

    enabled: bool = False
    #: Fraction of locally originated requests that start a trace
    #: (inbound contexts bypass this: their sampled bit already decided).
    sample_rate: float = 1.0
    buffer_size: int = 512

    def samples(self, counter: int) -> bool:
        """Deterministic sampling decision for the ``counter``-th local
        request (1-in-N spacing, no RNG on the hot path)."""
        if not self.enabled or self.sample_rate <= 0.0:
            return False
        if self.sample_rate >= 1.0:
            return True
        period = max(1, round(1.0 / self.sample_rate))
        return counter % period == 0


def span_tree(spans: Iterable[dict]) -> dict[Optional[str], list[dict]]:
    """Index spans by parent id: ``tree[None]`` are the roots; a span's
    children are ``tree[span["span_id"]]``.  Purely for assembling and
    asserting on traces — rendering stays the caller's business."""
    tree: dict[Optional[str], list[dict]] = {}
    known = {span["span_id"] for span in spans}
    for span in spans:
        parent = span.get("parent_span_id")
        if parent is not None and parent not in known:
            # The parent's node was not collected (or its buffer wrapped):
            # treat the span as a root rather than losing it.
            parent = None
        tree.setdefault(parent, []).append(span)
    for children in tree.values():
        children.sort(key=lambda span: span.get("start_ts", 0.0))
    return tree
