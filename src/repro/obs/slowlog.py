"""The structured slow-query log: JSON-lines records above a threshold.

Every statement slower than ``threshold_ms`` becomes one structured
record — SQL text, duration, row count, plan mode, shard route and trace
id — kept in a bounded in-memory ring (``recent()``) and, when a ``sink``
is given, appended to it as one JSON line per record.  The engine logs
its statements, the sharding coordinator logs routed ones (with the
route), so "what was slow last night?" is one ``jq`` away instead of a
profiler session.

Disabled (``threshold_ms=None``) the per-statement cost is one ``is
None`` check.
"""

from __future__ import annotations

import io
import json
import threading
import time
from collections import deque
from typing import Optional, TextIO


class SlowQueryLog:
    """A bounded ring of slow-statement records, optionally file-backed."""

    def __init__(
        self,
        threshold_ms: Optional[float] = None,
        capacity: int = 256,
        sink: Optional[TextIO] = None,
        node: str = "",
    ) -> None:
        self.threshold_ms = threshold_ms
        self.node = node
        self._lock = threading.Lock()
        self._records: deque[dict] = deque(maxlen=max(1, capacity))
        self._sink = sink
        self._logged = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def should_log(self, duration_ms: float) -> bool:
        return self.threshold_ms is not None and duration_ms >= self.threshold_ms

    def record(
        self,
        sql: str,
        duration_ms: float,
        *,
        rows: Optional[int] = None,
        mode: Optional[str] = None,
        route: Optional[str] = None,
        trace_id: Optional[str] = None,
        error: Optional[str] = None,
    ) -> Optional[dict]:
        """Log one statement if it crossed the threshold; returns the
        record (or None when below threshold / disabled)."""
        if not self.should_log(duration_ms):
            return None
        entry = {
            "ts": time.time(),
            "node": self.node,
            "sql": sql,
            "duration_ms": round(duration_ms, 3),
            "rows": rows,
            "mode": mode,
            "route": route,
            "trace_id": trace_id,
            "error": error,
        }
        line = None
        with self._lock:
            self._records.append(entry)
            self._logged += 1
            sink = self._sink
            if sink is not None:
                line = json.dumps(entry, separators=(",", ":"))
        if line is not None:
            try:
                sink.write(line + "\n")
                sink.flush()
            except (OSError, ValueError, io.UnsupportedOperation):
                pass  # a broken sink must not fail the statement
        return entry

    def recent(self, limit: Optional[int] = None) -> list[dict]:
        """The most recent records, oldest first."""
        with self._lock:
            records = list(self._records)
        if limit is not None:
            records = records[-limit:]
        return records

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "threshold_ms": self.threshold_ms,
                "buffered": len(self._records),
                "logged": self._logged,
            }

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
