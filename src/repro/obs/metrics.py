"""The unified metrics registry: counters, gauges and latency histograms.

The AOP-middleware argument in PAPERS.md is that monitoring is a
cross-cutting concern: every subsystem needs it, none should own its own
bespoke version.  Before this module the engine had exactly that problem —
``MvccController`` kept ints behind a lock, ``ColumnarMetrics`` kept a
different dict behind a different lock, the server, the pools and the
coordinator each invented another — and "why was this query slow?" meant
eyeballing a dozen disjoint snapshots with no percentiles anywhere.

Three primitives and a registry:

* :class:`Counter` — a monotonically increasing integer (``inc``).
* :class:`Gauge` — a value that goes both ways (``set``/``inc``/``dec``).
* :class:`Histogram` — fixed-bucket latency distribution with
  ``observe(seconds)`` and p50/p95/p99 extraction from the buckets.  The
  default buckets span 50µs .. ~26s in powers of two, which brackets
  everything from a plan-cache hit to a drained 2PC commit.
* :class:`MetricsRegistry` — names the instruments, snapshots them as one
  document, and renders the Prometheus text exposition format.  Existing
  subsystems that keep their own counters (for lock-locality on hot
  paths) join through *collector callbacks*: a callable returning a
  ``{name: value}`` mapping, pulled at snapshot/render time, so migrating
  a subsystem costs one registration, not a hot-path rewrite.

Everything is thread-safe and dependency-free; a registry costs nothing
until snapshotted.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Mapping, Optional, Sequence

#: Default histogram upper bounds in seconds: 50µs doubling up to ~26s.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    50e-6 * (2**exponent) for exponent in range(20)
)

_NAME_BAD = str.maketrans({c: "_" for c in " .-/:"})


def _prom_name(name: str) -> str:
    """A Prometheus-legal metric name (lowercase, [a-z0-9_])."""
    return name.lower().translate(_NAME_BAD)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down (pool sizes, backlog depths)."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket latency histogram with percentile extraction.

    ``observe`` takes seconds; rendering reports bucket counts plus sum
    and count (the Prometheus contract), and :meth:`percentile`
    interpolates within the winning bucket, which is exact enough for
    p50/p95/p99 dashboards at the default bucket resolution.
    """

    __slots__ = ("name", "help", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, seconds: float) -> None:
        index = self._bucket_index(seconds)
        with self._lock:
            self._counts[index] += 1
            self._sum += seconds
            self._count += 1

    def _bucket_index(self, seconds: float) -> int:
        # Linear scan: the list is short and observe() must stay cheap;
        # bisect would allocate a key tuple per call for no win at 20
        # buckets.
        for index, bound in enumerate(self.buckets):
            if seconds <= bound:
                return index
        return len(self.buckets)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, quantile: float) -> float:
        """The latency (seconds) at ``quantile`` in [0, 1], interpolated
        within the winning bucket; 0.0 with no observations."""
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        target = quantile * total
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self.buckets):
            in_bucket = counts[index]
            if cumulative + in_bucket >= target:
                if in_bucket == 0:
                    return bound
                fraction = (target - cumulative) / in_bucket
                return lower + (bound - lower) * fraction
            cumulative += in_bucket
            lower = bound
        return self.buckets[-1]

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            amount = self._sum
        summary = {
            "count": total,
            "sum_s": amount,
            "avg_ms": (amount / total * 1000.0) if total else 0.0,
        }
        for label, quantile in (("p50_ms", 0.5), ("p95_ms", 0.95), ("p99_ms", 0.99)):
            summary[label] = self.percentile(quantile) * 1000.0
        summary["buckets"] = counts
        return summary


class MetricsRegistry:
    """Names instruments and renders them as one coherent document.

    ``counter``/``gauge``/``histogram`` get-or-create by name (so two
    subsystems can safely ask for the same instrument), ``collect``
    registers a callback returning ``{name: number}`` pulled lazily at
    snapshot time, and ``render_prometheus`` emits the text exposition
    format a Prometheus scraper (or a human with curl) reads.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = _prom_name(namespace)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list[tuple[str, Callable[[], Mapping[str, object]]]] = []

    # -- instrument factories -------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name, help)
            return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, help)
            return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, help, buckets)
            return instrument

    def collect(
        self, prefix: str, callback: Callable[[], Mapping[str, object]]
    ) -> None:
        """Bridge a subsystem's own counters: ``callback`` returns a flat
        ``{name: number}`` mapping, re-read on every snapshot/render."""
        with self._lock:
            self._collectors.append((prefix, callback))

    # -- export ---------------------------------------------------------------

    def _collected(self) -> dict[str, object]:
        with self._lock:
            collectors = list(self._collectors)
        values: dict[str, object] = {}
        for prefix, callback in collectors:
            try:
                collected = callback()
            except Exception:  # a dying subsystem must not kill the scrape
                continue
            for name, value in collected.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    values[f"{prefix}_{name}" if prefix else name] = value
        return values

    def snapshot(self) -> dict[str, object]:
        """Every instrument and collected value as one JSON-able dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        document: dict[str, object] = {
            "counters": {name: c.snapshot() for name, c in counters.items()},
            "gauges": {name: g.snapshot() for name, g in gauges.items()},
            "histograms": {name: h.snapshot() for name, h in histograms.items()},
        }
        document["collected"] = self._collected()
        return document

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format, one scrape's worth."""
        lines: list[str] = []
        ns = self.namespace
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        for counter in counters:
            name = f"{ns}_{_prom_name(counter.name)}"
            if counter.help:
                lines.append(f"# HELP {name} {counter.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {counter.value}")
        for gauge in gauges:
            name = f"{ns}_{_prom_name(gauge.name)}"
            if gauge.help:
                lines.append(f"# HELP {name} {gauge.help}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {gauge.value}")
        for histogram in histograms:
            name = f"{ns}_{_prom_name(histogram.name)}"
            if histogram.help:
                lines.append(f"# HELP {name} {histogram.help}")
            lines.append(f"# TYPE {name} histogram")
            with histogram._lock:
                counts = list(histogram._counts)
                total = histogram._count
                amount = histogram._sum
            cumulative = 0
            for bound, count in zip(histogram.buckets, counts):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {total}')
            lines.append(f"{name}_sum {amount:g}")
            lines.append(f"{name}_count {total}")
        for name, value in sorted(self._collected().items()):
            full = f"{ns}_{_prom_name(name)}"
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {value:g}" if isinstance(value, float) else f"{full} {value}")
        return "\n".join(lines) + "\n"


def start_metrics_http_server(
    render: Callable[[], str], host: str = "127.0.0.1", port: int = 0
):
    """A Prometheus-style scrape endpoint over ``render`` (stdlib only).

    Serves ``GET /metrics`` (any path, really) with the rendered text on a
    daemon thread; returns the ``http.server`` instance — read
    ``server_address`` for the bound port, call ``shutdown()`` to stop.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            try:
                body = render().encode("utf-8")
                status = 200
            except Exception as error:  # pragma: no cover - render bug
                body = f"# render failed: {error}\n".encode("utf-8")
                status = 500
            self.send_response(status)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args) -> None:  # silence per-scrape stderr
            pass

    server = ThreadingHTTPServer((host, port), _Handler)
    thread = threading.Thread(
        target=server.serve_forever, name="metrics-http", daemon=True
    )
    thread.start()
    return server
