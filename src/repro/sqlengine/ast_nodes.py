"""AST node definitions for the SQL subset.

Expression nodes and statement nodes are plain dataclasses; the parser builds
them and the planner/executor consume them.  Nothing here knows about storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A constant value: integer, float, string, boolean or NULL (None)."""

    value: Union[int, float, str, bool, None]


@dataclass(frozen=True)
class Parameter:
    """A positional ``?`` parameter; ``index`` is its 0-based position."""

    index: int


@dataclass(frozen=True)
class ColumnRef:
    """A reference to a column, optionally qualified by a table alias."""

    table: Optional[str]
    column: str

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class UnaryOp:
    """Unary operation: ``-`` (negation) or ``NOT``."""

    op: str
    operand: "Expression"


@dataclass(frozen=True)
class BinaryOp:
    """Binary operation: arithmetic, comparison, AND/OR or LIKE."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class IsNull:
    """``expr IS NULL`` / ``expr IS NOT NULL``."""

    operand: "Expression"
    negated: bool


@dataclass(frozen=True)
class InList:
    """``expr IN (e1, e2, ...)``."""

    operand: "Expression"
    items: tuple["Expression", ...]
    negated: bool = False


@dataclass(frozen=True)
class FunctionCall:
    """A scalar or aggregate function call such as ``COUNT(*)``."""

    name: str
    args: tuple["Expression", ...]
    star: bool = False


Expression = Union[
    Literal, Parameter, ColumnRef, UnaryOp, BinaryOp, IsNull, InList, FunctionCall
]


# ---------------------------------------------------------------------------
# SELECT statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One item of the select list: an expression with an optional alias.

    ``star`` marks ``*`` and ``table_star`` marks ``alias.*``.
    """

    expression: Optional[Expression] = None
    alias: Optional[str] = None
    star: bool = False
    table_star: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause with an optional alias."""

    table: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name under which this table's columns are visible."""
        return self.alias if self.alias is not None else self.table


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: an expression plus direction."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed ``SELECT`` statement."""

    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    distinct: bool = False


# ---------------------------------------------------------------------------
# DML statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO table (cols) VALUES (...), (...)``."""

    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True)
class UpdateStatement:
    """``UPDATE table SET col = expr, ... WHERE expr``."""

    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM table WHERE expr``."""

    table: str
    where: Optional[Expression] = None


# ---------------------------------------------------------------------------
# DDL statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDefinition:
    """One column of a CREATE TABLE statement."""

    name: str
    type_name: str
    primary_key: bool = False
    unique: bool = False
    nullable: bool = True
    length: Optional[int] = None


@dataclass(frozen=True)
class CreateTableStatement:
    """``CREATE TABLE name (col type [PRIMARY KEY], ...)``."""

    table: str
    columns: tuple[ColumnDefinition, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class CreateIndexStatement:
    """``CREATE [UNIQUE] INDEX name ON table (col, ...)``."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False


@dataclass(frozen=True)
class DropTableStatement:
    """``DROP TABLE name``."""

    table: str


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN [ANALYZE] SELECT ...``: plan the query and return the
    cost-annotated operator tree as rows.  With ``ANALYZE`` the query is
    actually executed and every operator is annotated with the rows it
    produced and the wall time it spent (inclusive of its children)."""

    statement: "SelectStatement"
    analyze: bool = False


@dataclass(frozen=True)
class TransactionStatement:
    """A transaction-control statement.

    ``action`` is one of ``BEGIN``, ``COMMIT``, ``ROLLBACK``, ``SAVEPOINT``,
    ``ROLLBACK TO`` or ``RELEASE``; the latter three carry the savepoint
    name in ``savepoint``.  Sessions interpret these against their own
    transaction context (see :class:`repro.sqlengine.engine.Session`).
    """

    action: str
    savepoint: Optional[str] = None


@dataclass(frozen=True)
class CheckpointStatement:
    """``CHECKPOINT``: snapshot the database and truncate the write-ahead
    log.  A no-op on an in-memory (non-durable) database."""


Statement = Union[
    SelectStatement,
    InsertStatement,
    UpdateStatement,
    DeleteStatement,
    CreateTableStatement,
    CreateIndexStatement,
    DropTableStatement,
    ExplainStatement,
    TransactionStatement,
    CheckpointStatement,
]
