"""Recursive-descent parser for the SQL subset.

Grammar (roughly)::

    statement      := select | insert | update | delete | create_table
                    | create_index | drop_table | transaction
    transaction    := (BEGIN | COMMIT | ROLLBACK) [TRANSACTION | WORK]
                    | ROLLBACK [TRANSACTION | WORK] TO [SAVEPOINT] name
                    | SAVEPOINT name | RELEASE [SAVEPOINT] name
    select         := SELECT [DISTINCT] select_list FROM table_list
                      [WHERE expr] [ORDER BY order_list]
                      [LIMIT n [OFFSET m] | LIMIT m ',' n]
    expr           := or_expr
    or_expr        := and_expr (OR and_expr)*
    and_expr       := not_expr (AND not_expr)*
    not_expr       := NOT not_expr | comparison
    comparison     := additive (cmp_op additive | IS [NOT] NULL
                      | [NOT] IN '(' expr_list ')' | [NOT] LIKE additive)?
    additive       := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary          := '-' unary | primary
    primary        := literal | '?' | column_ref | function_call | '(' expr ')'
"""

from __future__ import annotations

from typing import Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.lexer import Token, TokenType, tokenize

_COMPARISON_OPERATORS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


class SqlParser:
    """Parses a single SQL statement from text."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = tokenize(text)
        self._index = 0
        self._param_count = 0

    # -- public API ---------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse one statement and require the input to be fully consumed."""
        statement = self._parse_statement()
        if self._check_punct(";"):
            self._advance()
        if not self._at_end():
            token = self._peek()
            raise SqlParseError(
                f"unexpected trailing token {token.value!r}", token.position
            )
        return statement

    @property
    def parameter_count(self) -> int:
        """Number of ``?`` placeholders seen while parsing."""
        return self._param_count

    # -- statements ---------------------------------------------------------

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("EXPLAIN"):
            self._advance()
            analyze = False
            if self._peek().is_keyword("ANALYZE"):
                self._advance()
                analyze = True
            inner = self._parse_statement()
            if not isinstance(inner, ast.SelectStatement):
                raise SqlParseError(
                    "EXPLAIN supports only SELECT statements", token.position
                )
            return ast.ExplainStatement(statement=inner, analyze=analyze)
        if token.is_keyword("SELECT"):
            return self._parse_select()
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("UPDATE"):
            return self._parse_update()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("CREATE"):
            return self._parse_create()
        if token.is_keyword("DROP"):
            return self._parse_drop()
        if token.is_keyword("BEGIN", "COMMIT", "ROLLBACK"):
            self._advance()
            if self._peek().is_keyword("TRANSACTION", "WORK"):
                self._advance()
            if token.value == "ROLLBACK" and self._peek().is_keyword("TO"):
                self._advance()
                if self._peek().is_keyword("SAVEPOINT"):
                    self._advance()
                return ast.TransactionStatement(
                    action="ROLLBACK TO", savepoint=self._expect_name()
                )
            return ast.TransactionStatement(action=token.value)
        if token.is_keyword("SAVEPOINT"):
            self._advance()
            return ast.TransactionStatement(
                action="SAVEPOINT", savepoint=self._expect_name()
            )
        if token.is_keyword("CHECKPOINT"):
            self._advance()
            return ast.CheckpointStatement()
        if token.is_keyword("RELEASE"):
            self._advance()
            if self._peek().is_keyword("SAVEPOINT"):
                self._advance()
            return ast.TransactionStatement(
                action="RELEASE", savepoint=self._expect_name()
            )
        raise SqlParseError(f"unexpected token {token.value!r}", token.position)

    def _parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        distinct = False
        if self._peek().is_keyword("DISTINCT"):
            distinct = True
            self._advance()

        items = [self._parse_select_item()]
        while self._check_punct(","):
            self._advance()
            items.append(self._parse_select_item())

        self._expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        while self._check_punct(","):
            self._advance()
            tables.append(self._parse_table_ref())

        where = None
        if self._peek().is_keyword("WHERE"):
            self._advance()
            where = self._parse_expression()

        order_by: list[ast.OrderItem] = []
        if self._peek().is_keyword("ORDER"):
            self._advance()
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._check_punct(","):
                self._advance()
                order_by.append(self._parse_order_item())

        limit = None
        offset = None
        if self._peek().is_keyword("LIMIT"):
            self._advance()
            first = self._parse_expression()
            if self._check_punct(","):
                # MySQL-style "LIMIT offset, count" as used by TPC-W.
                self._advance()
                offset = first
                limit = self._parse_expression()
            else:
                limit = first
                if self._peek().is_keyword("OFFSET"):
                    self._advance()
                    offset = self._parse_expression()

        return ast.SelectStatement(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.SelectItem(star=True)
        # "alias.*"
        if (
            token.type is TokenType.IDENTIFIER
            and self._peek(1).type is TokenType.PUNCTUATION
            and self._peek(1).value == "."
            and self._peek(2).type is TokenType.OPERATOR
            and self._peek(2).value == "*"
        ):
            self._advance()
            self._advance()
            self._advance()
            return ast.SelectItem(table_star=token.value)
        expression = self._parse_expression()
        alias = None
        if self._peek().is_keyword("AS"):
            self._advance()
            alias = self._expect_name()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_name()
        return ast.SelectItem(expression=expression, alias=alias)

    def _parse_table_ref(self) -> ast.TableRef:
        table = self._expect_name()
        alias = None
        if self._peek().is_keyword("AS"):
            self._advance()
            alias = self._expect_name()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_name()
        return ast.TableRef(table=table, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._peek().is_keyword("ASC"):
            self._advance()
        elif self._peek().is_keyword("DESC"):
            descending = True
            self._advance()
        return ast.OrderItem(expression=expression, descending=descending)

    def _parse_insert(self) -> ast.InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_name()
        columns: list[str] = []
        if self._check_punct("("):
            self._advance()
            columns.append(self._expect_name())
            while self._check_punct(","):
                self._advance()
                columns.append(self._expect_name())
            self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self._check_punct(","):
            self._advance()
            rows.append(self._parse_value_row())
        return ast.InsertStatement(
            table=table, columns=tuple(columns), rows=tuple(rows)
        )

    def _parse_value_row(self) -> tuple[ast.Expression, ...]:
        self._expect_punct("(")
        values = [self._parse_expression()]
        while self._check_punct(","):
            self._advance()
            values.append(self._parse_expression())
        self._expect_punct(")")
        return tuple(values)

    def _parse_update(self) -> ast.UpdateStatement:
        self._expect_keyword("UPDATE")
        table = self._expect_name()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._check_punct(","):
            self._advance()
            assignments.append(self._parse_assignment())
        where = None
        if self._peek().is_keyword("WHERE"):
            self._advance()
            where = self._parse_expression()
        return ast.UpdateStatement(
            table=table, assignments=tuple(assignments), where=where
        )

    def _parse_assignment(self) -> tuple[str, ast.Expression]:
        column = self._expect_name()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in {"=", "=="}:
            self._advance()
        else:
            raise SqlParseError("expected '=' in assignment", token.position)
        return column, self._parse_expression()

    def _parse_delete(self) -> ast.DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_name()
        where = None
        if self._peek().is_keyword("WHERE"):
            self._advance()
            where = self._parse_expression()
        return ast.DeleteStatement(table=table, where=where)

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        unique = False
        if self._peek().is_keyword("UNIQUE"):
            unique = True
            self._advance()
        if self._peek().is_keyword("TABLE"):
            self._advance()
            return self._parse_create_table()
        if self._peek().is_keyword("INDEX"):
            self._advance()
            return self._parse_create_index(unique)
        token = self._peek()
        raise SqlParseError(
            f"expected TABLE or INDEX after CREATE, got {token.value!r}",
            token.position,
        )

    def _parse_create_table(self) -> ast.CreateTableStatement:
        table = self._expect_name()
        self._expect_punct("(")
        columns = [self._parse_column_definition()]
        while self._check_punct(","):
            self._advance()
            columns.append(self._parse_column_definition())
        self._expect_punct(")")
        return ast.CreateTableStatement(table=table, columns=tuple(columns))

    def _parse_column_definition(self) -> ast.ColumnDefinition:
        name = self._expect_name()
        type_token = self._peek()
        if type_token.type not in (TokenType.KEYWORD, TokenType.IDENTIFIER):
            raise SqlParseError(
                f"expected column type, got {type_token.value!r}", type_token.position
            )
        self._advance()
        type_name = type_token.value.upper()
        length: Optional[int] = None
        if self._check_punct("("):
            self._advance()
            length_token = self._peek()
            if length_token.type is not TokenType.INTEGER:
                raise SqlParseError("expected integer length", length_token.position)
            length = int(length_token.value)
            self._advance()
            self._expect_punct(")")
        primary_key = False
        unique = False
        nullable = True
        while True:
            token = self._peek()
            if token.is_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                primary_key = True
                nullable = False
            elif token.is_keyword("UNIQUE"):
                self._advance()
                unique = True
            elif token.is_keyword("NOT"):
                self._advance()
                self._expect_keyword("NULL")
                nullable = False
            elif token.is_keyword("NULL"):
                self._advance()
                nullable = True
            else:
                break
        return ast.ColumnDefinition(
            name=name,
            type_name=type_name,
            primary_key=primary_key,
            unique=unique,
            nullable=nullable,
            length=length,
        )

    def _parse_create_index(self, unique: bool) -> ast.CreateIndexStatement:
        name = self._expect_name()
        self._expect_keyword("ON")
        table = self._expect_name()
        self._expect_punct("(")
        columns = [self._expect_name()]
        while self._check_punct(","):
            self._advance()
            columns.append(self._expect_name())
        self._expect_punct(")")
        return ast.CreateIndexStatement(
            name=name, table=table, columns=tuple(columns), unique=unique
        )

    def _parse_drop(self) -> ast.DropTableStatement:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        return ast.DropTableStatement(table=self._expect_name())

    # -- expressions --------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._peek().is_keyword("OR"):
            self._advance()
            right = self._parse_and()
            left = ast.BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._peek().is_keyword("AND"):
            self._advance()
            right = self._parse_not()
            left = ast.BinaryOp("AND", left, right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self._peek().is_keyword("NOT"):
            self._advance()
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPERATORS:
            self._advance()
            right = self._parse_additive()
            op = token.value
            if op == "==":
                op = "="
            if op == "<>":
                op = "!="
            return ast.BinaryOp(op, left, right)
        if token.is_keyword("IS"):
            self._advance()
            negated = False
            if self._peek().is_keyword("NOT"):
                negated = True
                self._advance()
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = False
        if token.is_keyword("NOT") and self._peek(1).is_keyword("IN", "LIKE"):
            negated = True
            self._advance()
            token = self._peek()
        if token.is_keyword("IN"):
            self._advance()
            self._expect_punct("(")
            items = [self._parse_expression()]
            while self._check_punct(","):
                self._advance()
                items.append(self._parse_expression())
            self._expect_punct(")")
            return ast.InList(left, tuple(items), negated)
        if token.is_keyword("LIKE"):
            self._advance()
            right = self._parse_additive()
            expr: ast.Expression = ast.BinaryOp("LIKE", left, right)
            if negated:
                expr = ast.UnaryOp("NOT", expr)
            return expr
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in {"+", "-"}:
                self._advance()
                right = self._parse_multiplicative()
                left = ast.BinaryOp(token.value, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in {"*", "/", "%"}:
                self._advance()
                right = self._parse_unary()
                left = ast.BinaryOp(token.value, left, right)
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            return ast.UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.INTEGER:
            self._advance()
            return ast.Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self._advance()
            return ast.Literal(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            parameter = ast.Parameter(self._param_count)
            self._param_count += 1
            return parameter
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("COUNT") or (
            token.type is TokenType.IDENTIFIER
            and self._peek(1).type is TokenType.PUNCTUATION
            and self._peek(1).value == "("
        ):
            return self._parse_function_call()
        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self._advance()
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        if token.type is TokenType.IDENTIFIER or token.type is TokenType.KEYWORD:
            return self._parse_column_ref()
        raise SqlParseError(f"unexpected token {token.value!r}", token.position)

    def _parse_function_call(self) -> ast.Expression:
        name_token = self._peek()
        self._advance()
        self._expect_punct("(")
        star = False
        args: list[ast.Expression] = []
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            star = True
            self._advance()
        elif not self._check_punct(")"):
            args.append(self._parse_expression())
            while self._check_punct(","):
                self._advance()
                args.append(self._parse_expression())
        self._expect_punct(")")
        return ast.FunctionCall(
            name=name_token.value.upper(), args=tuple(args), star=star
        )

    def _parse_column_ref(self) -> ast.ColumnRef:
        first = self._expect_name()
        if self._check_punct("."):
            self._advance()
            second = self._expect_name()
            return ast.ColumnRef(table=first, column=second)
        return ast.ColumnRef(table=None, column=first)

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _at_end(self) -> bool:
        return self._peek().type is TokenType.EOF

    def _check_punct(self, value: str) -> bool:
        token = self._peek()
        return token.type is TokenType.PUNCTUATION and token.value == value

    def _expect_punct(self, value: str) -> None:
        if not self._check_punct(value):
            token = self._peek()
            raise SqlParseError(
                f"expected {value!r}, got {token.value!r}", token.position
            )
        self._advance()

    def _expect_keyword(self, keyword: str) -> None:
        token = self._peek()
        if not token.is_keyword(keyword):
            raise SqlParseError(
                f"expected {keyword}, got {token.value!r}", token.position
            )
        self._advance()

    def _expect_name(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value
        # Allow non-reserved keywords (e.g. a column named "date") as names.
        if token.type is TokenType.KEYWORD and token.value not in {
            "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "ORDER", "LIMIT",
            "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "VALUES", "SET",
        }:
            self._advance()
            return token.value
        raise SqlParseError(f"expected identifier, got {token.value!r}", token.position)


def parse_statement(text: str) -> ast.Statement:
    """Parse a single SQL statement from ``text``."""
    return SqlParser(text).parse_statement()


def count_parameters(text: str) -> int:
    """Return how many ``?`` placeholders appear in ``text``."""
    parser = SqlParser(text)
    parser.parse_statement()
    return parser.parameter_count
