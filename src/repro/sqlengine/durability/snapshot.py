"""Checkpoint snapshots: the full database state in one atomic file.

A snapshot serialises the catalog (every table schema), the index
definitions and the row storage — including tombstone positions, so row
identifiers survive a round trip and the write-ahead log's exact-position
redo records keep applying.  Indexes themselves are *not* stored: they are
rebuilt from their definitions while loading, which also re-derives the
incremental distinct-key statistics the cost-based planner reads.

File layout::

    MAGIC "RSNAP1\\n" | u32 version | u64 epoch | u32 table count
    per table: u32 length | payload | u32 crc32(payload)

Each table payload is a varint-length JSON header (schema, index
definitions, slot count) followed by the rows in the WAL's binary row
codec, each prefixed with its row id.  The snapshot is written to a
temporary file, fsynced and atomically renamed over ``snapshot.db``; a
crash mid-checkpoint therefore leaves the previous snapshot (and the log
files it needs) fully intact.
"""

from __future__ import annotations

import os
import struct
import json
from dataclasses import dataclass
from typing import Optional
from zlib import crc32

from repro.sqlengine.catalog import Catalog, ColumnSchema, SqlType, TableSchema
from repro.sqlengine.durability.wal import (
    WalError,
    decode_row,
    decode_varint,
    encode_row,
    encode_varint,
)
from repro.sqlengine.indexes import OrderedIndex
from repro.sqlengine.storage import TableData

MAGIC = b"RSNAP1\n"
VERSION = 1
SNAPSHOT_NAME = "snapshot.db"

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class SnapshotError(WalError):
    """A snapshot file failed validation."""


# -- schema <-> JSON ---------------------------------------------------------


def schema_to_payload(schema: TableSchema) -> dict:
    """A JSON-serialisable description of one table schema."""
    return {
        "name": schema.name,
        "columns": [
            {
                "name": column.name,
                "type": column.sql_type.value,
                "primary_key": column.primary_key,
                "unique": column.unique,
                "nullable": column.nullable,
                "length": column.length,
            }
            for column in schema.columns
        ],
    }


def schema_from_payload(payload: dict) -> TableSchema:
    """Rebuild a :class:`TableSchema` from :func:`schema_to_payload` output."""
    return TableSchema(
        name=payload["name"],
        columns=tuple(
            ColumnSchema(
                name=column["name"],
                sql_type=SqlType(column["type"]),
                primary_key=column["primary_key"],
                unique=column["unique"],
                nullable=column["nullable"],
                length=column["length"],
            )
            for column in payload["columns"]
        ),
    )


def index_definitions(data: TableData) -> list[dict]:
    """JSON-serialisable definitions of every index on a table."""
    return [
        {
            "name": name,
            "columns": list(index.columns),
            "unique": index.unique,
            "ordered": isinstance(index, OrderedIndex),
        }
        for name, index in data.indexes().items()
    ]


def apply_index_definitions(data: TableData, definitions: list[dict]) -> None:
    """Create every index that does not already exist (the primary-key index
    is created by ``TableData.__init__`` and is skipped here)."""
    existing = set(data.indexes())
    for definition in definitions:
        if definition["name"] in existing:
            continue
        data.create_index(
            definition["name"],
            tuple(definition["columns"]),
            unique=definition["unique"],
            ordered=definition["ordered"],
        )


# -- write -------------------------------------------------------------------


def _encode_table(data: TableData) -> bytes:
    header = {
        "schema": schema_to_payload(data.schema),
        "indexes": index_definitions(data),
        "slot_count": data.slot_count(),
    }
    raw_header = json.dumps(header, separators=(",", ":"), sort_keys=True).encode("utf-8")
    out = bytearray()
    encode_varint(len(raw_header), out)
    out.extend(raw_header)
    rows = list(data.scan())
    encode_varint(len(rows), out)
    for row_id, row in rows:
        encode_varint(row_id, out)
        encode_row(row, out)
    return bytes(out)


def write_snapshot(
    data_dir: str, epoch: int, tables: dict[str, TableData]
) -> str:
    """Write an atomic snapshot of ``tables`` tagged with ``epoch``.

    Returns the final snapshot path.  Callers must hold the database write
    lock so the serialised state contains no uncommitted data.
    """
    final_path = os.path.join(data_dir, SNAPSHOT_NAME)
    tmp_path = final_path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(_U32.pack(VERSION))
        handle.write(_U64.pack(epoch))
        handle.write(_U32.pack(len(tables)))
        for data in tables.values():
            payload = _encode_table(data)
            handle.write(_U32.pack(len(payload)))
            handle.write(payload)
            handle.write(_U32.pack(crc32(payload)))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, final_path)
    _fsync_directory(data_dir)
    return final_path


def _fsync_directory(path: str) -> None:
    """Persist a rename/unlink by fsyncing the containing directory."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# -- read --------------------------------------------------------------------


@dataclass
class LoadedSnapshot:
    """A decoded snapshot: the epoch it was cut at plus the rebuilt tables."""

    epoch: int
    schemas: list[TableSchema]
    tables: dict[str, TableData]


def load_snapshot(data_dir: str) -> Optional[LoadedSnapshot]:
    """Load ``snapshot.db`` from ``data_dir``; None when no snapshot exists."""
    path = os.path.join(data_dir, SNAPSHOT_NAME)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        data = handle.read()
    return parse_snapshot(data, source=path)


def snapshot_epoch(data: bytes, source: str = "<bytes>") -> int:
    """The epoch a snapshot image was cut at, from its header alone.

    The BOOTSTRAP streamer uses this to stamp the terminating LSN without
    decoding every table server-side.
    """
    if not data.startswith(MAGIC):
        raise SnapshotError(f"{source}: bad snapshot magic")
    if len(MAGIC) + 16 > len(data):
        raise SnapshotError(f"{source}: truncated snapshot header")
    (epoch,) = _U64.unpack_from(data, len(MAGIC) + 4)
    return epoch


def parse_snapshot(data: bytes, source: str = "<bytes>") -> LoadedSnapshot:
    """Decode a complete snapshot image (a file's contents, or the chunks
    of a BOOTSTRAP stream reassembled).

    Unlike the log (whose tail may legitimately be torn), a snapshot is
    written atomically, so any validation failure raises
    :class:`SnapshotError` instead of being silently skipped.
    """
    if not data.startswith(MAGIC):
        raise SnapshotError(f"{source}: bad snapshot magic")
    offset = len(MAGIC)
    if offset + 16 > len(data):
        raise SnapshotError(f"{source}: truncated snapshot header")
    (version,) = _U32.unpack_from(data, offset)
    if version != VERSION:
        raise SnapshotError(f"{source}: unsupported snapshot version {version}")
    (epoch,) = _U64.unpack_from(data, offset + 4)
    (table_count,) = _U32.unpack_from(data, offset + 12)
    offset += 16
    schemas: list[TableSchema] = []
    tables: dict[str, TableData] = {}
    for _ in range(table_count):
        if offset + 4 > len(data):
            raise SnapshotError(f"{source}: truncated table frame")
        (length,) = _U32.unpack_from(data, offset)
        end = offset + 4 + length + 4
        if end > len(data):
            raise SnapshotError(f"{source}: truncated table payload")
        payload = data[offset + 4:offset + 4 + length]
        (expected,) = _U32.unpack_from(data, offset + 4 + length)
        if crc32(payload) != expected:
            raise SnapshotError(f"{source}: table payload checksum mismatch")
        schema, table = _decode_table(payload)
        schemas.append(schema)
        tables[schema.name.lower()] = table
        offset = end
    return LoadedSnapshot(epoch=epoch, schemas=schemas, tables=tables)


def _decode_table(payload: bytes) -> tuple[TableSchema, TableData]:
    header_length, offset = decode_varint(payload, 0)
    header = json.loads(payload[offset:offset + header_length].decode("utf-8"))
    offset += header_length
    schema = schema_from_payload(header["schema"])
    data = TableData(schema)
    apply_index_definitions(data, header["indexes"])
    row_count, offset = decode_varint(payload, offset)
    rows: list[tuple[int, tuple[object, ...]]] = []
    for _ in range(row_count):
        row_id, offset = decode_varint(payload, offset)
        row, offset = decode_row(payload, offset)
        rows.append((row_id, row))
    data.restore_rows(rows, header["slot_count"])
    return schema, data
