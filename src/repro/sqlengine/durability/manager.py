"""The durability manager: one object owning a database's on-disk state.

A :class:`~repro.sqlengine.engine.Database` opened with ``data_dir=...``
constructs one :class:`DurabilityManager`.  The manager

* runs crash recovery at construction (snapshot load + log replay into the
  engine's catalog/tables),
* owns the live :class:`~repro.sqlengine.durability.wal.WalWriter` and
  translates committed transactions, bulk loads and DDL into log records,
* cuts checkpoints — atomically snapshotting the tables, rotating to a
  fresh log epoch and deleting the log files the snapshot supersedes —
  either on demand (the ``CHECKPOINT`` statement) or automatically when the
  live log grows past ``checkpoint_log_bytes``.

Locking contract: the ``log_*`` methods for transactions must be called
while holding the engine's MVCC commit lock (appends then happen in commit
order); bulk-load/DDL logging and :meth:`checkpoint` run under the MVCC
exclusive gate (all statements drained, so snapshots see no uncommitted
data); :meth:`sync` must be called *without* either, so waiting for the
disk never serialises other sessions.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.sqlengine.catalog import Catalog, TableSchema
from repro.sqlengine.durability import wal
from repro.sqlengine.durability.recovery import (
    RecoveryInfo,
    list_wal_epochs,
    recover,
    wal_path,
)
from repro.sqlengine.durability.snapshot import (
    SNAPSHOT_NAME,
    schema_to_payload,
    write_snapshot,
)
from repro.sqlengine.storage import TableData


@dataclass(frozen=True)
class DurabilityOptions:
    """Knobs of the durability subsystem.

    ``fsync`` selects the commit durability policy: ``"always"`` fsyncs in
    every commit's append, ``"group"`` (the default) batches one fsync
    across concurrently committing sessions, ``"off"`` leaves flushing to
    the OS (process-crash safe, power-loss unsafe).  ``checkpoint_log_bytes``
    triggers an automatic checkpoint when the live log (bytes replayed at
    startup plus bytes appended since) exceeds it; ``None`` disables
    automatic checkpoints.
    """

    fsync: str = "group"
    checkpoint_log_bytes: Optional[int] = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.fsync not in wal.FSYNC_POLICIES:
            raise wal.WalError(
                f"unknown fsync policy {self.fsync!r}; "
                f"expected one of {wal.FSYNC_POLICIES}"
            )


class DurabilityManager:
    """Write-ahead logging, checkpointing and recovery for one database."""

    def __init__(
        self,
        data_dir: str,
        options: DurabilityOptions,
        catalog: Catalog,
        tables: dict[str, TableData],
    ) -> None:
        self.data_dir = data_dir
        self.options = options
        self._catalog = catalog
        self._tables = tables
        os.makedirs(data_dir, exist_ok=True)
        self.recovery_info: RecoveryInfo = recover(data_dir, catalog, tables)
        self._epoch = self.recovery_info.next_epoch
        self._writer = wal.WalWriter(
            wal_path(data_dir, self._epoch), fsync=options.fsync
        )
        # Log volume that the *next* checkpoint would absorb: everything
        # replayed at startup plus everything appended since.
        self._carried_bytes = self.recovery_info.bytes_replayed
        self._txn_lock = threading.Lock()
        self._next_txn = self.recovery_info.transactions_committed + 1
        self._closed = False
        #: Checkpoints cut over this manager's lifetime.
        self.checkpoints_taken = 0
        # Replication streamers park an Event here; every append (and every
        # epoch rotation) sets all of them so tailers wake without polling.
        self._append_watchers: set[threading.Event] = set()
        self._watchers_lock = threading.Lock()
        self._writer.on_append = self._notify_appends

    # -- logging (call with the commit lock / exclusive gate held) ------------
    #
    # Every log_* method returns an opaque *ticket* — (writer, sequence) —
    # that :meth:`sync` later redeems.  Binding the writer instance into
    # the ticket matters: a checkpoint may rotate ``self._writer`` between
    # a commit's append (under the commit lock) and its sync
    # (after releasing it), and the new writer's sequence numbers restart
    # from zero.  Redeeming the ticket against the *original* writer is
    # always correct — a rotated-away writer was flushed and fsynced by
    # ``close()``, which marks every appended batch synced and wakes any
    # waiter, so a stale ticket's sync returns immediately.

    def log_commit(self, undo_entries: Iterable[tuple]) -> tuple:
        """Append one committed transaction's redo batch; returns a ticket
        to pass to :meth:`sync` after releasing the commit lock."""
        with self._txn_lock:
            txn = self._next_txn
            self._next_txn += 1
        writer = self._writer
        return writer, writer.append(wal.redo_records(txn, undo_entries))

    def log_prepare(self, gid: str, undo_entries: Iterable[tuple]) -> tuple:
        """Append a prepared transaction's redo batch terminated by a
        PREPARE frame (two-phase commit, phase one); returns a sync ticket.
        The transaction is in doubt on disk until :meth:`log_commit_prepared`
        or :meth:`log_abort_prepared` decides it."""
        with self._txn_lock:
            txn = self._next_txn
            self._next_txn += 1
        writer = self._writer
        return writer, writer.append(wal.prepare_records(txn, gid, undo_entries))

    def log_adopted_prepare(self, gid: str, records: Iterable[wal.WalRecord]) -> tuple:
        """Append an adopted (already-decoded) in-doubt batch as a fresh
        PREPARE batch — a promoted replica carrying the stream's prepared
        transactions into its own log.  Returns a sync ticket."""
        with self._txn_lock:
            txn = self._next_txn
            self._next_txn += 1
        writer = self._writer
        return writer, writer.append(wal.reencode_prepare(txn, gid, records))

    def log_commit_prepared(self, gid: str) -> tuple:
        """Append the COMMIT decision for a prepared transaction."""
        writer = self._writer
        return writer, writer.append(
            [wal.encode_decision(wal.COMMIT_PREPARED, gid)]
        )

    def log_abort_prepared(self, gid: str) -> tuple:
        """Append the ABORT decision for a prepared transaction."""
        writer = self._writer
        return writer, writer.append(
            [wal.encode_decision(wal.ABORT_PREPARED, gid)]
        )

    def log_bulk_insert(
        self, table: str, rows: Iterable[tuple[int, tuple[object, ...]]]
    ) -> tuple:
        """Append a non-transactional bulk load (``Database.insert_rows``)
        as one committed transaction; returns a sync ticket."""
        with self._txn_lock:
            txn = self._next_txn
            self._next_txn += 1
        records = [wal.encode_marker(wal.BEGIN, txn)]
        for row_id, row in rows:
            records.append(wal.encode_insert(txn, table, row_id, row))
        records.append(wal.encode_marker(wal.COMMIT, txn))
        writer = self._writer
        return writer, writer.append(records)

    def log_create_table(self, schema: TableSchema) -> tuple:
        """Append a CREATE TABLE record; returns a sync ticket."""
        return self._append_ddl(
            {"kind": "create_table", "schema": schema_to_payload(schema)}
        )

    def log_create_index(
        self,
        table: str,
        name: str,
        columns: tuple[str, ...],
        unique: bool,
        ordered: bool,
    ) -> tuple:
        """Append a CREATE INDEX record; returns a sync ticket."""
        return self._append_ddl(
            {
                "kind": "create_index",
                "table": table,
                "index": {
                    "name": name,
                    "columns": list(columns),
                    "unique": unique,
                    "ordered": ordered,
                },
            }
        )

    def log_drop_table(self, table: str) -> tuple:
        """Append a DROP TABLE record; returns a sync ticket."""
        return self._append_ddl({"kind": "drop_table", "table": table})

    def _append_ddl(self, payload: dict) -> tuple:
        writer = self._writer
        return writer, writer.append([wal.encode_ddl(payload)])

    # -- durability wait (call withOUT the commit lock) -----------------------

    def sync(self, ticket: tuple) -> None:
        """Wait until the ticket's batch is durable per the fsync policy."""
        writer, seq = ticket
        writer.sync(seq)

    # -- checkpointing ---------------------------------------------------------

    @property
    def log_bytes(self) -> int:
        """Live log volume a checkpoint would absorb right now."""
        return self._carried_bytes + self._writer.bytes_written

    def should_checkpoint(self) -> bool:
        """Whether the automatic size trigger has fired."""
        limit = self.options.checkpoint_log_bytes
        return limit is not None and self.log_bytes > limit

    def checkpoint(self) -> int:
        """Cut a checkpoint; returns the new log epoch.

        Must be called under the MVCC exclusive gate (statements drained,
        no open write transaction): the snapshot then contains exactly the
        committed state, and no commit can append to the outgoing log file
        while it is being superseded.
        """
        old_epoch = self._epoch
        new_epoch = old_epoch + 1
        self._writer.close()
        self._writer = wal.WalWriter(
            wal_path(self.data_dir, new_epoch), fsync=self.options.fsync
        )
        self._writer.on_append = self._notify_appends
        marker_seq = self._writer.append([wal.encode_checkpoint(new_epoch)])
        self._writer.sync(marker_seq)
        self._epoch = new_epoch
        write_snapshot(self.data_dir, new_epoch, self._tables)
        for epoch in list_wal_epochs(self.data_dir):
            if epoch < new_epoch:
                os.remove(wal_path(self.data_dir, epoch))
        self._carried_bytes = 0
        self.checkpoints_taken += 1
        self._notify_appends()
        return new_epoch

    # -- replication hooks -----------------------------------------------------

    def wal_position(self) -> tuple[int, int]:
        """The current end-of-log position as an ``(epoch, offset)`` LSN.

        Offsets restart at zero in each epoch file, so LSNs compare
        lexicographically.  A checkpoint may rotate the writer concurrently;
        the retry loop makes the torn case conservative (never ahead of the
        log) rather than pairing a new epoch with a stale offset.
        """
        while True:
            epoch = self._epoch
            writer = self._writer
            if epoch == self._epoch:
                return epoch, writer.bytes_written

    def watch_appends(self) -> threading.Event:
        """Register and return an Event set on every append/rotation."""
        event = threading.Event()
        with self._watchers_lock:
            self._append_watchers.add(event)
        return event

    def unwatch_appends(self, event: threading.Event) -> None:
        """Deregister an Event returned by :meth:`watch_appends`."""
        with self._watchers_lock:
            self._append_watchers.discard(event)

    def _notify_appends(self) -> None:
        with self._watchers_lock:
            watchers = list(self._append_watchers)
        for event in watchers:
            event.set()

    def replication_bootstrappable(self) -> bool:
        """Whether a brand-new replica can rebuild this database from the
        log alone.  Once a checkpoint has been cut the oldest log files are
        gone and the snapshot is required — shipping snapshots is out of
        scope, so replicas must attach before the first checkpoint."""
        return not os.path.exists(os.path.join(self.data_dir, SNAPSHOT_NAME))

    # -- lifecycle -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Flush and close the live log file (no checkpoint is cut — a
        clean close and a crash recover identically, by design)."""
        if not self._closed:
            self._closed = True
            self._writer.close()

    # -- observability ---------------------------------------------------------

    def info(self) -> dict[str, object]:
        """Counters for tests, benchmarks and debugging."""
        return {
            "data_dir": self.data_dir,
            "fsync": self.options.fsync,
            "epoch": self._epoch,
            "log_bytes": self.log_bytes,
            "batches_appended": self._writer.batches_appended,
            "syncs_issued": self._writer.syncs_issued,
            "checkpoints_taken": self.checkpoints_taken,
            "recovered_transactions": self.recovery_info.transactions_committed,
            "recovered_records": self.recovery_info.records_scanned,
        }
