"""Durability subsystem for the SQL engine: WAL, checkpoints, recovery.

Three cooperating pieces give the engine its persistence story:

* :mod:`~repro.sqlengine.durability.wal` — the binary write-ahead log
  (length-prefixed, checksummed records) with a group-commit
  :class:`~repro.sqlengine.durability.wal.WalWriter`;
* :mod:`~repro.sqlengine.durability.snapshot` — atomic full-state
  checkpoint files that let the log be truncated;
* :mod:`~repro.sqlengine.durability.recovery` — the restart path: load the
  latest snapshot, replay the surviving log epochs, discard uncommitted
  tails.

:class:`~repro.sqlengine.durability.manager.DurabilityManager` wires them
together; the engine constructs one when opened with ``data_dir=...`` and
otherwise pays nothing (in-memory operation stays the default).  See
``docs/durability.md`` for the record format and the protocols.
"""

from repro.sqlengine.durability.wal import WalError, WalWriter
from repro.sqlengine.durability.manager import DurabilityManager, DurabilityOptions
from repro.sqlengine.durability.recovery import RecoveryInfo, recover

__all__ = [
    "DurabilityManager",
    "DurabilityOptions",
    "RecoveryInfo",
    "WalError",
    "WalWriter",
    "recover",
]
