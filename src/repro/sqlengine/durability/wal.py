"""Write-ahead log: binary record format, writer with group commit, reader.

The log is a sequence of length-prefixed, checksummed frames::

    <u32 payload length> <payload bytes> <u32 crc32(payload)>

A frame's payload starts with a one-byte record kind followed by
kind-specific fields encoded with a small tag-based value codec (see
:func:`encode_value`).  The engine stores only ``None``, ``int``, ``float``,
``bool`` and ``str`` cell values (:meth:`SqlType.coerce` guarantees it), so
the codec covers exactly those.

The engine uses *redo-only commit logging*: a transaction's surviving row
operations are appended as one contiguous ``BEGIN … ops … COMMIT`` batch at
commit time, under the engine's commit lock, so batch order in the file is
commit order and uncommitted work never reaches the log except as a torn
final batch after a crash.  Recovery therefore applies a transaction's
records only once its COMMIT frame has been read intact and discards
everything else — which handles both torn tails and (defensively)
interleaved or aborted transactions.

Group commit: :meth:`WalWriter.append` writes frames under the append lock
and returns a monotonically increasing sequence number; :meth:`WalWriter.sync`
makes that sequence durable according to the fsync policy.  Under the
``group`` policy one committer becomes the *leader*: it snapshots the
current append sequence, issues a single ``fsync`` covering every batch
appended so far, and wakes all waiting committers whose sequence that sync
covered — so N concurrently committing sessions pay one fsync, not N.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator, Optional
from zlib import crc32

from repro.sqlengine.errors import SqlExecutionError

# -- record kinds ------------------------------------------------------------

BEGIN = 1
INSERT = 2
UPDATE = 3
DELETE = 4
COMMIT = 5
ABORT = 6
DDL = 7
CHECKPOINT = 8
#: Two-phase commit (sharding): a PREPARE frame terminates a transaction's
#: redo batch instead of COMMIT, naming a *global transaction id* chosen by
#: the distributed coordinator.  The transaction stays in doubt until a
#: later COMMIT_PREPARED or ABORT_PREPARED frame decides it — possibly in a
#: later log epoch, possibly after a crash.
PREPARE = 9
COMMIT_PREPARED = 10
ABORT_PREPARED = 11

KIND_NAMES = {
    BEGIN: "BEGIN",
    INSERT: "INSERT",
    UPDATE: "UPDATE",
    DELETE: "DELETE",
    COMMIT: "COMMIT",
    ABORT: "ABORT",
    DDL: "DDL",
    CHECKPOINT: "CHECKPOINT",
    PREPARE: "PREPARE",
    COMMIT_PREPARED: "COMMIT_PREPARED",
    ABORT_PREPARED: "ABORT_PREPARED",
}

#: Upper bound on a single frame payload; anything larger read back from a
#: log is treated as corruption rather than allocated blindly.
MAX_PAYLOAD = 1 << 30

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")

FSYNC_POLICIES = ("always", "group", "off")


class WalError(SqlExecutionError):
    """A write-ahead-log invariant was violated."""


# -- value codec -------------------------------------------------------------

_TAG_NONE = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_STR = 3
_TAG_TRUE = 4
_TAG_FALSE = 5


def encode_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise WalError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode an unsigned varint at ``offset``; returns (value, new offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WalError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _zigzag(value: int) -> int:
    """Map a signed int to unsigned so small magnitudes stay small.

    Python ints are unbounded, so this is the arbitrary-precision form of
    protobuf's zigzag encoding rather than the fixed-width XOR trick.
    """
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


def encode_value(value: object, out: bytearray) -> None:
    """Append one cell value (None/bool/int/float/str) to ``out``."""
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        encode_varint(_zigzag(value), out)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.extend(_F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        encode_varint(len(raw), out)
        out.extend(raw)
    else:
        raise WalError(f"cannot encode value of type {type(value).__name__}")


def decode_value(data: bytes, offset: int) -> tuple[object, int]:
    """Decode one cell value at ``offset``; returns (value, new offset)."""
    if offset >= len(data):
        raise WalError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        raw, offset = decode_varint(data, offset)
        return _unzigzag(raw), offset
    if tag == _TAG_FLOAT:
        if offset + 8 > len(data):
            raise WalError("truncated float")
        return _F64.unpack_from(data, offset)[0], offset + 8
    if tag == _TAG_STR:
        length, offset = decode_varint(data, offset)
        if offset + length > len(data):
            raise WalError("truncated string")
        return data[offset:offset + length].decode("utf-8"), offset + length
    raise WalError(f"unknown value tag {tag}")


def encode_row(row: Iterable[object], out: bytearray) -> None:
    """Append a row: a varint column count followed by the values."""
    values = tuple(row)
    encode_varint(len(values), out)
    for value in values:
        encode_value(value, out)


def decode_row(data: bytes, offset: int) -> tuple[tuple[object, ...], int]:
    """Decode a row at ``offset``; returns (row, new offset)."""
    count, offset = decode_varint(data, offset)
    values = []
    for _ in range(count):
        value, offset = decode_value(data, offset)
        values.append(value)
    return tuple(values), offset


def _encode_str(text: str, out: bytearray) -> None:
    raw = text.encode("utf-8")
    encode_varint(len(raw), out)
    out.extend(raw)


def _decode_str(data: bytes, offset: int) -> tuple[str, int]:
    length, offset = decode_varint(data, offset)
    if offset + length > len(data):
        raise WalError("truncated string")
    return data[offset:offset + length].decode("utf-8"), offset + length


# -- records -----------------------------------------------------------------


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record.

    ``table``/``row_id``/``row`` are populated for row operations,
    ``payload`` for DDL (the parsed JSON object) and ``epoch`` for
    CHECKPOINT markers.
    """

    kind: int
    txn: int = 0
    table: str = ""
    row_id: int = 0
    row: Optional[tuple[object, ...]] = None
    payload: Optional[dict] = None
    epoch: int = 0
    #: Global transaction id for the two-phase-commit record kinds.
    gid: str = ""

    @property
    def kind_name(self) -> str:
        """Human-readable record kind."""
        return KIND_NAMES.get(self.kind, f"?{self.kind}")


def encode_marker(kind: int, txn: int) -> bytes:
    """Encode a BEGIN/COMMIT/ABORT record."""
    out = bytearray([kind])
    encode_varint(txn, out)
    return bytes(out)


def encode_insert(txn: int, table: str, row_id: int, row: Iterable[object]) -> bytes:
    """Encode an INSERT redo record (row placed at an exact row id)."""
    out = bytearray([INSERT])
    encode_varint(txn, out)
    _encode_str(table, out)
    encode_varint(row_id, out)
    encode_row(row, out)
    return bytes(out)


def encode_update(txn: int, table: str, row_id: int, new_row: Iterable[object]) -> bytes:
    """Encode an UPDATE redo record (the full new row image)."""
    out = bytearray([UPDATE])
    encode_varint(txn, out)
    _encode_str(table, out)
    encode_varint(row_id, out)
    encode_row(new_row, out)
    return bytes(out)


def encode_delete(txn: int, table: str, row_id: int) -> bytes:
    """Encode a DELETE redo record."""
    out = bytearray([DELETE])
    encode_varint(txn, out)
    _encode_str(table, out)
    encode_varint(row_id, out)
    return bytes(out)


def encode_ddl(payload: dict) -> bytes:
    """Encode a DDL record; the payload is a JSON-serialisable description."""
    raw = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return bytes([DDL]) + raw


def encode_prepare(txn: int, gid: str) -> bytes:
    """Encode a PREPARE record terminating a prepared transaction's batch."""
    out = bytearray([PREPARE])
    encode_varint(txn, out)
    _encode_str(gid, out)
    return bytes(out)


def encode_decision(kind: int, gid: str) -> bytes:
    """Encode a COMMIT_PREPARED or ABORT_PREPARED decision record."""
    if kind not in (COMMIT_PREPARED, ABORT_PREPARED):
        raise WalError(f"record kind {kind} is not a 2PC decision")
    out = bytearray([kind])
    _encode_str(gid, out)
    return bytes(out)


def encode_checkpoint(epoch: int) -> bytes:
    """Encode a CHECKPOINT marker naming the new log epoch."""
    out = bytearray([CHECKPOINT])
    encode_varint(epoch, out)
    return bytes(out)


def decode_record(payload: bytes) -> WalRecord:
    """Decode one frame payload into a :class:`WalRecord`."""
    if not payload:
        raise WalError("empty record payload")
    kind = payload[0]
    offset = 1
    if kind in (BEGIN, COMMIT, ABORT):
        txn, _ = decode_varint(payload, offset)
        return WalRecord(kind=kind, txn=txn)
    if kind in (INSERT, UPDATE):
        txn, offset = decode_varint(payload, offset)
        table, offset = _decode_str(payload, offset)
        row_id, offset = decode_varint(payload, offset)
        row, _ = decode_row(payload, offset)
        return WalRecord(kind=kind, txn=txn, table=table, row_id=row_id, row=row)
    if kind == DELETE:
        txn, offset = decode_varint(payload, offset)
        table, offset = _decode_str(payload, offset)
        row_id, _ = decode_varint(payload, offset)
        return WalRecord(kind=kind, txn=txn, table=table, row_id=row_id)
    if kind == DDL:
        return WalRecord(kind=kind, payload=json.loads(payload[offset:].decode("utf-8")))
    if kind == CHECKPOINT:
        epoch, _ = decode_varint(payload, offset)
        return WalRecord(kind=kind, epoch=epoch)
    if kind == PREPARE:
        txn, offset = decode_varint(payload, offset)
        gid, _ = _decode_str(payload, offset)
        return WalRecord(kind=kind, txn=txn, gid=gid)
    if kind in (COMMIT_PREPARED, ABORT_PREPARED):
        gid, _ = _decode_str(payload, offset)
        return WalRecord(kind=kind, gid=gid)
    raise WalError(f"unknown record kind {kind}")


def redo_records(txn: int, undo_entries: Iterable[tuple]) -> list[bytes]:
    """Translate a transaction's undo journal into its redo batch.

    The undo journal records each surviving row operation in execution
    order with the exact information redo needs — the row id, the inserted
    or deleted row, and an update's new image — so the commit path derives
    the redo batch from it instead of paying a second journal on the write
    path (keeping in-memory operation zero-overhead).
    """
    records = [encode_marker(BEGIN, txn)]
    records.extend(_operation_records(txn, undo_entries))
    records.append(encode_marker(COMMIT, txn))
    return records


def prepare_records(txn: int, gid: str, undo_entries: Iterable[tuple]) -> list[bytes]:
    """A prepared transaction's batch: like :func:`redo_records` but
    terminated by a PREPARE frame instead of COMMIT, leaving the
    transaction in doubt until a decision record names its ``gid``."""
    records = [encode_marker(BEGIN, txn)]
    records.extend(_operation_records(txn, undo_entries))
    records.append(encode_prepare(txn, gid))
    return records


def reencode_prepare(txn: int, gid: str, records: Iterable[WalRecord]) -> list[bytes]:
    """Re-encode an already-decoded in-doubt batch as a fresh PREPARE batch.

    A promoted replica making itself durable carries the prepared
    transactions it saw over the stream into its *own* log this way, so the
    coordinator's eventual decision survives a crash of the new primary too.
    """
    out = [encode_marker(BEGIN, txn)]
    for record in records:
        if record.kind == INSERT:
            out.append(encode_insert(txn, record.table, record.row_id, record.row or ()))
        elif record.kind == UPDATE:
            out.append(encode_update(txn, record.table, record.row_id, record.row or ()))
        elif record.kind == DELETE:
            out.append(encode_delete(txn, record.table, record.row_id))
        else:
            raise WalError(
                f"record kind {KIND_NAMES.get(record.kind, record.kind)} "
                f"cannot appear inside a prepared batch"
            )
    out.append(encode_prepare(txn, gid))
    return out


def _operation_records(txn: int, undo_entries: Iterable[tuple]) -> list[bytes]:
    records = []
    for entry in undo_entries:
        kind = entry[0]
        if kind == "insert":
            _, table, row_id, row = entry
            records.append(encode_insert(txn, table.schema.name, row_id, row))
        elif kind in ("delete", "vdelete"):
            _, table, row_id, row = entry
            records.append(encode_delete(txn, table.schema.name, row_id))
        else:  # update / vupdate — the MVCC variant redoes identically
            _, table, row_id, _old_row, new_row = entry
            records.append(encode_update(txn, table.schema.name, row_id, new_row))
    return records


# -- framing -----------------------------------------------------------------


def frame(payload: bytes) -> bytes:
    """Wrap a payload in the length-prefixed, checksummed frame format."""
    return _U32.pack(len(payload)) + payload + _U32.pack(crc32(payload))


def read_frames(data: bytes) -> Iterator[tuple[bytes, int]]:
    """Yield (payload, end offset) for every intact frame in ``data``.

    Iteration stops silently at the first torn or corrupt frame — a short
    length prefix, a payload cut off mid-way, a missing checksum, or a
    checksum mismatch.  That is exactly the crash-recovery contract: a
    partially written final batch is discarded wholesale because its COMMIT
    frame never decodes.
    """
    offset = 0
    total = len(data)
    while offset + 4 <= total:
        (length,) = _U32.unpack_from(data, offset)
        if length > MAX_PAYLOAD:
            return
        end = offset + 4 + length + 4
        if end > total:
            return
        payload = data[offset + 4:offset + 4 + length]
        (expected,) = _U32.unpack_from(data, offset + 4 + length)
        if crc32(payload) != expected:
            return
        yield payload, end
        offset = end


def read_wal(path: str) -> Iterator[tuple[WalRecord, int]]:
    """Yield (record, end offset) for every intact record in a log file.

    Decode failures inside an intact frame are treated like torn frames:
    the scan stops, discarding the rest of the file.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    for payload, end in read_frames(data):
        try:
            record = decode_record(payload)
        except (WalError, ValueError):
            return
        yield record, end


# -- writer ------------------------------------------------------------------


class WalWriter:
    """Appends framed records to one log file with a configurable fsync
    policy and group commit.

    Thread safety: :meth:`append` may be called from any thread (the engine
    calls it under its commit lock, which also fixes the batch order);
    :meth:`sync` is called *outside* that lock so waiting for the disk
    never blocks other sessions' transactions.
    """

    def __init__(self, path: str, fsync: str = "group") -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        self.path = path
        self.fsync = fsync
        self._file: BinaryIO = open(path, "ab")
        self._append_lock = threading.Lock()
        self._group = threading.Condition()
        self._appended_seq = 0
        self._synced_seq = 0
        self._leader_active = False
        self._closing = False
        #: Number of fsync() calls issued (observability: group commit should
        #: show fewer syncs than commits under concurrency).
        self.syncs_issued = 0
        #: Number of sequences appended (== commit batches + standalone records).
        self.batches_appended = 0
        self.bytes_written = 0
        #: Optional zero-argument callback invoked after every append (the
        #: replication streamer registers one to wake its tailers promptly).
        self.on_append = None

    # -- append side ---------------------------------------------------------

    def append(self, payloads: Iterable[bytes]) -> int:
        """Append a batch of record payloads as one atomic unit.

        Returns the batch's sequence number for :meth:`sync`.  The frames
        are pushed to the OS (``flush``) before returning, so a reopened
        reader in the same machine sees them even under ``fsync=off`` —
        only a *machine* crash can lose them in that mode.
        """
        chunk = b"".join(frame(payload) for payload in payloads)
        with self._append_lock:
            self._file.write(chunk)
            self._file.flush()
            if self.fsync == "always":
                os.fsync(self._file.fileno())
                self.syncs_issued += 1
            self._appended_seq += 1
            self.batches_appended += 1
            self.bytes_written += len(chunk)
            seq = self._appended_seq
        if self.fsync == "always":
            with self._group:
                self._synced_seq = max(self._synced_seq, seq)
        callback = self.on_append
        if callback is not None:
            callback()
        return seq

    # -- sync side -----------------------------------------------------------

    def sync(self, seq: int) -> None:
        """Block until batch ``seq`` is durable under the current policy.

        ``off`` returns immediately; ``always`` already synced during
        :meth:`append`; ``group`` elects a leader that issues one fsync for
        every batch appended so far and wakes the followers it covered.
        """
        if self.fsync != "group":
            return
        while True:
            with self._group:
                if self._synced_seq >= seq:
                    return
                if self._leader_active or self._closing:
                    # ``closing``: close() is about to fsync everything
                    # appended so far and publish it; becoming a leader now
                    # would race the file descriptor being closed.
                    self._group.wait()
                    continue
                self._leader_active = True
            durable = False
            try:
                # Leader: snapshot the append frontier, then fsync outside
                # both locks so new appends keep flowing while the disk works.
                with self._append_lock:
                    target = self._appended_seq
                    if self._file.closed:
                        # close() already flushed and fsynced everything; a
                        # checkpoint rotated the log under a racing sync.
                        fd = None
                    else:
                        self._file.flush()
                        fd = self._file.fileno()
                if fd is not None:
                    os.fsync(fd)
                    self.syncs_issued += 1
                durable = True
            finally:
                with self._group:
                    self._leader_active = False
                    if durable:
                        # Publish only on success: a failed fsync (EIO,
                        # ENOSPC) must not let waiting followers report
                        # durability that was never achieved — they wake,
                        # retry as leaders and surface the error themselves.
                        self._synced_seq = max(self._synced_seq, target)
                    self._group.notify_all()
            # Loop: our own seq is necessarily <= target, so the next pass
            # returns; the loop form keeps the invariant obvious.

    def close(self) -> None:
        """Flush, fsync (unless ``off``) and close the file.

        Coordinates with group commit: it first drains any in-flight sync
        leader and blocks new ones (the leader fsyncs the captured file
        descriptor outside the locks, and closing — possibly letting the
        OS reuse that descriptor for the next log epoch — under its feet
        would fsync the wrong file).  Everything appended so far is then
        made durable and published, waking any committer still waiting in
        :meth:`sync`, so a checkpoint rotating the log strands nobody.
        """
        with self._group:
            self._closing = True
            while self._leader_active:
                self._group.wait()
        with self._append_lock:
            if self._file.closed:
                return
            self._file.flush()
            if self.fsync != "off":
                os.fsync(self._file.fileno())
                self.syncs_issued += 1
            self._file.close()
            appended = self._appended_seq
        with self._group:
            self._synced_seq = max(self._synced_seq, appended)
            self._group.notify_all()
