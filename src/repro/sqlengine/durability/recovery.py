"""Crash recovery: load the latest snapshot, then replay the log chain.

Recovery is deterministic and idempotent: starting from the snapshot (or an
empty database when none exists), every log epoch at or above the
snapshot's epoch is scanned in ascending order.  Row operations are
buffered per transaction and applied only when that transaction's COMMIT
record is read intact; a torn tail, an ABORT record or a missing COMMIT all
make the transaction vanish without a trace — exactly the atomicity
contract the in-memory undo log provides for a running engine.

DDL records apply at their own log position (the engine's DDL is
non-transactional and auto-committed, so this matches live execution
order); records that reference a table dropped later in the same log are
skipped, mirroring how the live engine leaves such a transaction's
already-applied rows attached to the detached storage.

Because transactions are replayed through the normal ``TableData``
operations — inserts placed at their original row ids, updates and deletes
by row id — the rebuilt indexes and their incremental distinct-key
statistics are byte-for-byte what a from-scratch rebuild produces, so the
cost-based planner and the plan cache behave identically after a restart.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from repro.sqlengine.catalog import Catalog
from repro.sqlengine.durability import wal
from repro.sqlengine.durability.snapshot import (
    apply_index_definitions,
    load_snapshot,
    schema_from_payload,
)
from repro.sqlengine.storage import TableData

#: Log files are named ``wal-<epoch>.log``; epochs grow monotonically and a
#: checkpoint deletes every epoch older than the one it opens.
WAL_PATTERN = re.compile(r"^wal-(\d{8})\.log$")


def wal_path(data_dir: str, epoch: int) -> str:
    """Path of the log file for ``epoch``."""
    return os.path.join(data_dir, f"wal-{epoch:08d}.log")


def list_wal_epochs(data_dir: str) -> list[int]:
    """Epoch numbers of every log file present, ascending."""
    epochs = []
    for name in os.listdir(data_dir):
        match = WAL_PATTERN.match(name)
        if match:
            epochs.append(int(match.group(1)))
    return sorted(epochs)


@dataclass
class RecoveryInfo:
    """What recovery did, for observability, tests and the benchmark."""

    snapshot_epoch: int = 0
    epochs_replayed: list[int] = field(default_factory=list)
    records_scanned: int = 0
    transactions_committed: int = 0
    transactions_discarded: int = 0
    ddl_applied: int = 0
    bytes_replayed: int = 0
    #: The epoch the engine should write to next (max seen + 1).
    next_epoch: int = 1
    #: Two-phase commit: prepared transactions whose decision record never
    #: arrived, keyed by global transaction id.  Each maps to the redo
    #: records the coordinator's eventual decision will apply or discard;
    #: the engine re-registers them so it can honour COMMIT_PREPARED /
    #: ABORT_PREPARED after a restart.  Prepared batches may be decided in
    #: a *later* epoch than they were logged in, so this state is threaded
    #: through the whole epoch chain rather than reset per file.
    in_doubt: dict[str, list[wal.WalRecord]] = field(default_factory=dict)
    #: Decisions already replayed, gid -> "commit" | "abort" — kept so a
    #: coordinator retrying a decision after our crash gets an idempotent
    #: success instead of an unknown-gid error.
    decided_gids: dict[str, str] = field(default_factory=dict)


def recover(data_dir: str, catalog: Catalog, tables: dict[str, TableData]) -> RecoveryInfo:
    """Rebuild ``catalog``/``tables`` in place from ``data_dir``.

    Both containers must be empty; after the call they hold the state of
    every transaction whose COMMIT record survived, and nothing else.
    """
    info = RecoveryInfo()
    snapshot = load_snapshot(data_dir)
    if snapshot is not None:
        info.snapshot_epoch = snapshot.epoch
        for schema in snapshot.schemas:
            catalog.create_table(schema)
        tables.update(snapshot.tables)
    epochs = list_wal_epochs(data_dir)
    info.next_epoch = max(epochs, default=info.snapshot_epoch or 0) + 1
    for epoch in epochs:
        if epoch < info.snapshot_epoch:
            # Superseded by the snapshot; a checkpoint crashed between its
            # atomic rename and its log deletion.  Clean it up now.
            os.remove(wal_path(data_dir, epoch))
            continue
        info.epochs_replayed.append(epoch)
        _replay_epoch(wal_path(data_dir, epoch), catalog, tables, info)
    return info


def _replay_epoch(
    path: str,
    catalog: Catalog,
    tables: dict[str, TableData],
    info: RecoveryInfo,
) -> None:
    """Replay one log file; stops at its first torn or corrupt record."""
    pending: dict[int, list[wal.WalRecord]] = {}
    last_good = 0
    for record, end in wal.read_wal(path):
        info.records_scanned += 1
        last_good = end
        kind = record.kind
        if kind == wal.BEGIN:
            pending[record.txn] = []
        elif kind in (wal.INSERT, wal.UPDATE, wal.DELETE):
            pending.setdefault(record.txn, []).append(record)
        elif kind == wal.COMMIT:
            operations = pending.pop(record.txn, [])
            for operation in operations:
                _apply(operation, tables)
            info.transactions_committed += 1
        elif kind == wal.ABORT:
            pending.pop(record.txn, None)
            info.transactions_discarded += 1
        elif kind == wal.PREPARE:
            # The batch is intact up to its PREPARE frame: the transaction
            # is in doubt until a decision record names its gid (which may
            # sit in a later epoch, or never arrive before the coordinator
            # resolves it against the live engine).
            info.in_doubt[record.gid] = pending.pop(record.txn, [])
        elif kind == wal.COMMIT_PREPARED:
            operations = info.in_doubt.pop(record.gid, None)
            if operations is not None:
                for operation in operations:
                    _apply(operation, tables)
                info.transactions_committed += 1
            info.decided_gids[record.gid] = "commit"
        elif kind == wal.ABORT_PREPARED:
            if info.in_doubt.pop(record.gid, None) is not None:
                info.transactions_discarded += 1
            info.decided_gids[record.gid] = "abort"
        elif kind == wal.DDL:
            _apply_ddl(record.payload or {}, catalog, tables)
            info.ddl_applied += 1
        # CHECKPOINT markers carry no state; they only label the epoch.
    info.transactions_discarded += len(pending)
    info.bytes_replayed += last_good


def _apply(record: wal.WalRecord, tables: dict[str, TableData]) -> None:
    data = tables.get(record.table.lower())
    if data is None:
        # The table was dropped by later (non-transactional) DDL that was
        # already replayed at its own log position; the rows are moot.
        return
    if record.kind == wal.INSERT:
        data.redo_insert(record.row_id, record.row or ())
    elif record.kind == wal.UPDATE:
        data.update(record.row_id, record.row or ())
    else:  # DELETE
        data.delete(record.row_id)


def _apply_ddl(
    payload: dict, catalog: Catalog, tables: dict[str, TableData]
) -> None:
    kind = payload.get("kind")
    if kind == "create_table":
        schema = schema_from_payload(payload["schema"])
        if catalog.has_table(schema.name):
            return
        catalog.create_table(schema)
        tables[schema.name.lower()] = TableData(schema)
    elif kind == "create_index":
        data = tables.get(payload["table"].lower())
        if data is not None:
            apply_index_definitions(data, [payload["index"]])
    elif kind == "drop_table":
        name = payload["table"]
        if catalog.has_table(name):
            catalog.drop_table(name)
        tables.pop(name.lower(), None)
