"""Secondary index structures for the in-memory SQL engine.

Two index kinds are provided:

* :class:`HashIndex` — equality lookups (used automatically for primary keys
  and explicitly created unique/secondary indexes).
* :class:`OrderedIndex` — a sorted structure supporting range scans, useful
  for ORDER BY acceleration experiments in the ablation benchmarks.

Indexes map a key (a tuple of column values) to the set of row identifiers
holding that key.  Row identifiers are assigned by
:class:`repro.sqlengine.storage.TableData`.
"""

from __future__ import annotations

import bisect
from typing import Hashable, Iterable, Iterator

from repro.sqlengine.errors import UniqueViolationError


class Index:
    """Common interface for index implementations."""

    def __init__(self, name: str, columns: tuple[str, ...], unique: bool = False) -> None:
        self.name = name
        self.columns = columns
        self.unique = unique

    def insert(self, key: Hashable, row_id: int, enforce_unique: bool = True) -> None:
        """Add ``row_id`` under ``key``.

        ``enforce_unique=False`` skips the duplicate check on a unique
        index: the MVCC storage layer uses it when a key is only a
        *transient* duplicate — the other row id under the key is a dead
        version kept for older snapshots (see ``TableData``), which plain
        uniqueness cannot distinguish from a live row.
        """
        raise NotImplementedError

    def delete(self, key: Hashable, row_id: int) -> None:
        raise NotImplementedError

    def lookup(self, key: Hashable) -> list[int]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def distinct_keys(self) -> int:
        """Number of distinct keys currently in the index.

        Maintained incrementally, so it is exact and O(1) to read; the
        planner's cost model uses it as the NDV (number of distinct values)
        statistic for the indexed column(s).  Because transaction rollback
        replays inverse operations through :meth:`insert`/:meth:`delete`,
        the estimate stays correct across ROLLBACK as well.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HashIndex(Index):
    """Dictionary-backed equality index."""

    def __init__(self, name: str, columns: tuple[str, ...], unique: bool = False) -> None:
        super().__init__(name, columns, unique)
        self._entries: dict[Hashable, list[int]] = {}
        self._size = 0

    def insert(self, key: Hashable, row_id: int, enforce_unique: bool = True) -> None:
        bucket = self._entries.setdefault(key, [])
        if self.unique and bucket and enforce_unique:
            raise UniqueViolationError(
                f"unique index {self.name!r} violated for key {key!r}",
                index=self.name,
                key=key,
            )
        bucket.append(row_id)
        self._size += 1

    def delete(self, key: Hashable, row_id: int) -> None:
        bucket = self._entries.get(key)
        if not bucket or row_id not in bucket:
            return
        bucket.remove(row_id)
        self._size -= 1
        if not bucket:
            del self._entries[key]

    def lookup(self, key: Hashable) -> list[int]:
        return list(self._entries.get(key, ()))

    def keys(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._size = 0

    def distinct_keys(self) -> int:
        return len(self._entries)

    def __len__(self) -> int:
        return self._size


class OrderedIndex(Index):
    """Sorted-list index supporting equality and range lookups.

    Keys must be mutually comparable (the engine only builds ordered indexes
    over single columns of one type, so this holds in practice).
    """

    def __init__(self, name: str, columns: tuple[str, ...], unique: bool = False) -> None:
        super().__init__(name, columns, unique)
        self._keys: list[Hashable] = []
        self._row_ids: list[int] = []
        self._distinct = 0

    def insert(self, key: Hashable, row_id: int, enforce_unique: bool = True) -> None:
        left = bisect.bisect_left(self._keys, key)  # type: ignore[arg-type]
        position = bisect.bisect_right(self._keys, key)  # type: ignore[arg-type]
        if self.unique and left != position and enforce_unique:
            raise UniqueViolationError(
                f"unique index {self.name!r} violated for key {key!r}",
                index=self.name,
                key=key,
            )
        if left == position:
            self._distinct += 1
        self._keys.insert(position, key)
        self._row_ids.insert(position, row_id)

    def delete(self, key: Hashable, row_id: int) -> None:
        left = bisect.bisect_left(self._keys, key)  # type: ignore[arg-type]
        right = bisect.bisect_right(self._keys, key)  # type: ignore[arg-type]
        for position in range(left, right):
            if self._row_ids[position] == row_id:
                del self._keys[position]
                del self._row_ids[position]
                if right - left == 1:
                    self._distinct -= 1
                return

    def lookup(self, key: Hashable) -> list[int]:
        left = bisect.bisect_left(self._keys, key)  # type: ignore[arg-type]
        right = bisect.bisect_right(self._keys, key)  # type: ignore[arg-type]
        return self._row_ids[left:right]

    def range(
        self,
        low: Hashable | None = None,
        high: Hashable | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[int]:
        """Row ids whose keys fall in the [low, high] interval."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._keys, low)  # type: ignore[arg-type]
        else:
            start = bisect.bisect_right(self._keys, low)  # type: ignore[arg-type]
        if high is None:
            end = len(self._keys)
        elif include_high:
            end = bisect.bisect_right(self._keys, high)  # type: ignore[arg-type]
        else:
            end = bisect.bisect_left(self._keys, high)  # type: ignore[arg-type]
        return self._row_ids[start:end]

    def ordered_row_ids(self, descending: bool = False) -> list[int]:
        """All row ids in key order."""
        if descending:
            return list(reversed(self._row_ids))
        return list(self._row_ids)

    def clear(self) -> None:
        self._keys.clear()
        self._row_ids.clear()
        self._distinct = 0

    def distinct_keys(self) -> int:
        return self._distinct

    def __len__(self) -> int:
        return len(self._row_ids)


def make_key(values: Iterable[object]) -> Hashable:
    """Build an index key from column values.

    Single-column keys are stored unwrapped so that lookups with a scalar
    value work; multi-column keys become tuples.
    """
    values = tuple(values)
    if len(values) == 1:
        return values[0]
    return values
