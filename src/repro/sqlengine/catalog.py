"""Catalog: table and column metadata for the in-memory SQL engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from repro.sqlengine.errors import SqlCatalogError, SqlTypeError


class SqlType(Enum):
    """Column types supported by the engine.

    The mapping from SQL type names is intentionally generous (e.g. both
    ``VARCHAR`` and ``TEXT`` map to :attr:`TEXT`), matching what the TPC-W
    schema and the ORM need.
    """

    INTEGER = "INTEGER"
    DOUBLE = "DOUBLE"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"

    @classmethod
    def from_name(cls, name: str) -> "SqlType":
        """Map a SQL type name (``VARCHAR``, ``INT``, ...) to a SqlType."""
        upper = name.upper()
        mapping = {
            "INTEGER": cls.INTEGER,
            "INT": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "DOUBLE": cls.DOUBLE,
            "FLOAT": cls.DOUBLE,
            "REAL": cls.DOUBLE,
            "NUMERIC": cls.DOUBLE,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "TEXT": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "DATE": cls.DATE,
            "TIMESTAMP": cls.DATE,
        }
        if upper not in mapping:
            raise SqlCatalogError(f"unknown SQL type {name!r}")
        return mapping[upper]

    def coerce(self, value: object) -> object:
        """Coerce ``value`` to this type, raising :class:`SqlTypeError` if
        the value cannot represent the type."""
        if value is None:
            return None
        try:
            if self is SqlType.INTEGER:
                if isinstance(value, bool):
                    return int(value)
                if isinstance(value, (int, float)):
                    return int(value)
                return int(str(value))
            if self is SqlType.DOUBLE:
                return float(value)  # type: ignore[arg-type]
            if self is SqlType.BOOLEAN:
                if isinstance(value, str):
                    return value.strip().lower() in {"true", "t", "1", "yes"}
                return bool(value)
            # TEXT and DATE are stored as strings.
            return value if isinstance(value, str) else str(value)
        except (TypeError, ValueError) as exc:
            raise SqlTypeError(f"cannot convert {value!r} to {self.value}") from exc


@dataclass(frozen=True)
class ColumnSchema:
    """Metadata for a single column."""

    name: str
    sql_type: SqlType
    primary_key: bool = False
    unique: bool = False
    nullable: bool = True
    length: Optional[int] = None


@dataclass
class TableSchema:
    """Metadata for a table: ordered columns plus derived lookups."""

    name: str
    columns: tuple[ColumnSchema, ...]
    _by_name: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        by_name: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in by_name:
                raise SqlCatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            by_name[key] = position
        self._by_name = by_name

    @property
    def column_names(self) -> list[str]:
        """Ordered list of column names."""
        return [column.name for column in self.columns]

    @property
    def primary_key_columns(self) -> list[str]:
        """Names of the primary-key columns (possibly empty)."""
        return [column.name for column in self.columns if column.primary_key]

    def has_column(self, name: str) -> bool:
        """True if a column with the given (case-insensitive) name exists."""
        return name.lower() in self._by_name

    def column_index(self, name: str) -> int:
        """Position of the column, raising :class:`SqlCatalogError` if absent."""
        key = name.lower()
        if key not in self._by_name:
            raise SqlCatalogError(
                f"table {self.name!r} has no column {name!r}"
            )
        return self._by_name[key]

    def column(self, name: str) -> ColumnSchema:
        """The :class:`ColumnSchema` for the given column name."""
        return self.columns[self.column_index(name)]

    def coerce_row(self, values: Iterable[object]) -> tuple[object, ...]:
        """Coerce a full row of values to the column types."""
        values = tuple(values)
        if len(values) != len(self.columns):
            raise SqlTypeError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        return tuple(
            column.sql_type.coerce(value)
            for column, value in zip(self.columns, values)
        )


@dataclass(frozen=True)
class TableStatistics:
    """Cheap per-table statistics for the cost-based planner.

    Statistics are derived from live storage state, so they are always
    up to date: ``row_count`` is the live-row counter and the distinct
    counts come from the indexes' incremental distinct-key tracking (which
    transaction rollback keeps correct by replaying inverse index
    operations).  Columns without a single-column index have no NDV entry;
    the planner falls back to default selectivities for them.
    """

    table: str
    row_count: int
    #: NDV (number of distinct values) per single-column-indexed column.
    column_distinct: dict[str, int]
    #: Distinct key count per index (multi-column indexes included).
    index_distinct: dict[str, int]

    def distinct(self, column: str) -> Optional[int]:
        """NDV of ``column`` if an index tracks it, else None."""
        return self.column_distinct.get(column.lower())


class Catalog:
    """The set of tables known to a :class:`~repro.sqlengine.engine.Database`."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}

    def create_table(self, schema: TableSchema) -> None:
        """Register a new table schema."""
        key = schema.name.lower()
        if key in self._tables:
            raise SqlCatalogError(f"table {schema.name!r} already exists")
        self._tables[key] = schema

    def drop_table(self, name: str) -> None:
        """Remove a table schema."""
        key = name.lower()
        if key not in self._tables:
            raise SqlCatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def has_table(self, name: str) -> bool:
        """True if a table with the given (case-insensitive) name exists."""
        return name.lower() in self._tables

    def table(self, name: str) -> TableSchema:
        """Look up a table schema by name."""
        key = name.lower()
        if key not in self._tables:
            raise SqlCatalogError(f"table {name!r} does not exist")
        return self._tables[key]

    def table_names(self) -> list[str]:
        """All registered table names (original casing)."""
        return [schema.name for schema in self._tables.values()]
