"""Statement execution for the in-memory SQL engine.

The executor owns the table data dictionary and knows how to run every
statement kind produced by the parser.  SELECT statements are delegated to
the :class:`~repro.sqlengine.planner.Planner`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog, ColumnSchema, SqlType, TableSchema
from repro.sqlengine.columnar import BatchOperator, ColumnarMetrics
from repro.sqlengine.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.expressions import ExpressionCompiler, is_truthy
from repro.sqlengine.operators import materialise
from repro.sqlengine.planner import Planner, PlannerOptions, SelectPlan
from repro.sqlengine.storage import TableData
from repro.sqlengine.transactions import MvccController, Transaction, UndoLog


@dataclass
class StatementResult:
    """Result of executing one statement."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple[object, ...]] = field(default_factory=list)
    rowcount: int = 0


def _instrument_plan(root) -> dict[int, dict[str, float]]:
    """Patch every operator in a plan tree (in place, via instance
    attributes) so executing it records per-operator actual row counts and
    wall time, keyed by ``id(operator)``.

    Time is *inclusive*: while an operator waits on ``next()`` from its
    child, both clocks run — the same convention PostgreSQL's EXPLAIN
    ANALYZE uses.  Row operators count yielded tuples; batch operators are
    wrapped around ``batches()`` and count ``Batch.n``, so both execution
    modes report true row cardinalities.  Only ever applied to a freshly
    planned tree: the patches would otherwise leak into cached plans.
    """
    stats: dict[int, dict[str, float]] = {}

    def patch(op) -> None:
        record = stats[id(op)] = {"rows": 0, "time_s": 0.0, "loops": 0}
        batch = isinstance(op, BatchOperator)
        inner = op.batches if batch else op.execute

        def wrapped(params, _inner=inner, _record=record, _batch=batch):
            _record["loops"] += 1
            t0 = time.perf_counter()
            iterator = _inner(params)
            _record["time_s"] += time.perf_counter() - t0
            while True:
                t0 = time.perf_counter()
                try:
                    item = next(iterator)
                except StopIteration:
                    _record["time_s"] += time.perf_counter() - t0
                    return
                _record["time_s"] += time.perf_counter() - t0
                _record["rows"] += item.n if _batch else 1
                yield item

        if batch:
            op.batches = wrapped
        else:
            op.execute = wrapped
        for child in op.children():
            patch(child)

    patch(root)
    return stats


class Executor:
    """Executes parsed statements against catalog + storage."""

    def __init__(
        self,
        catalog: Catalog,
        tables: dict[str, TableData],
        planner_options: PlannerOptions | None = None,
        mvcc: MvccController | None = None,
        columnar_metrics: "ColumnarMetrics | None" = None,
    ) -> None:
        self._catalog = catalog
        self._tables = tables
        self._planner_options = planner_options or PlannerOptions()
        self._mvcc = mvcc
        self._columnar_metrics = columnar_metrics

    # -- planning ------------------------------------------------------------

    def plan_select(self, statement: ast.SelectStatement) -> SelectPlan:
        """Plan a SELECT statement (exposed for plan caching and EXPLAIN)."""
        planner = Planner(
            self._catalog,
            self._tables,
            self._planner_options,
            metrics=self._columnar_metrics,
        )
        return planner.plan_select(statement)

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        statement: ast.Statement,
        params: Sequence[object] = (),
        plan: Optional[SelectPlan] = None,
        undo: Optional[UndoLog] = None,
        txn: Optional[Transaction] = None,
    ) -> StatementResult:
        """Execute ``statement`` with positional ``params``.

        ``txn``, when given, routes DML through the MVCC write path: rows
        are locked (first-updater-wins), inverse operations land in the
        transaction's undo log, and write-write conflicts raise
        :class:`~repro.sqlengine.errors.TransactionConflictError`.  The
        legacy ``undo`` parameter keeps the unversioned path for callers
        without a transaction (recovery tooling, standalone tests).  DDL is
        not transactional and records nothing either way.
        """
        if txn is not None:
            undo = txn.undo
        if isinstance(statement, ast.SelectStatement):
            select_plan = plan if plan is not None else self.plan_select(statement)
            rows = materialise(select_plan.root, params)
            return StatementResult(
                columns=list(select_plan.column_names),
                rows=rows,
                rowcount=len(rows),
            )
        if isinstance(statement, ast.ExplainStatement):
            if statement.analyze:
                return self._execute_explain_analyze(statement, params)
            select_plan = (
                plan if plan is not None else self.plan_select(statement.statement)
            )
            lines = select_plan.explain().splitlines()
            return StatementResult(
                columns=["query plan"],
                rows=[(line,) for line in lines],
                rowcount=len(lines),
            )
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(statement, params, undo, txn)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(statement, params, undo, txn)
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement, params, undo, txn)
        if isinstance(statement, ast.CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateIndexStatement):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.DropTableStatement):
            self._catalog.drop_table(statement.table)
            self._tables.pop(statement.table.lower(), None)
            return StatementResult()
        if isinstance(statement, ast.TransactionStatement):
            # Transaction control is interpreted by the Session owning the
            # statement; a bare Executor has no transaction context, so the
            # statement is accepted as a no-op here.
            return StatementResult()
        raise SqlExecutionError(f"cannot execute statement {statement!r}")

    # -- EXPLAIN ANALYZE -----------------------------------------------------

    def _execute_explain_analyze(
        self, statement: ast.ExplainStatement, params: Sequence[object]
    ) -> StatementResult:
        """Plan afresh (instance-level instrumentation must never touch a
        plan shared through the statement cache), execute for real, and
        annotate every operator line with the rows it actually produced
        and its inclusive wall time."""
        select_plan = self.plan_select(statement.statement)
        stats = _instrument_plan(select_plan.root)
        started = time.perf_counter()
        rows = materialise(select_plan.root, params)
        total_ms = (time.perf_counter() - started) * 1000.0

        def annotate(op) -> str:
            record = stats.get(id(op))
            if record is None:
                return ""
            return (
                f"[actual rows={record['rows']} "
                f"time={record['time_s'] * 1000.0:.3f}ms "
                f"loops={record['loops']}]"
            )

        lines = select_plan.explain(annotate=annotate).splitlines()
        lines.append(f"Execution: rows={len(rows)} time={total_ms:.3f}ms")
        return StatementResult(
            columns=["query plan"],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
        )

    # -- DML -----------------------------------------------------------------

    def _execute_insert(
        self,
        statement: ast.InsertStatement,
        params: Sequence[object],
        undo: Optional[UndoLog] = None,
        txn: Optional[Transaction] = None,
    ) -> StatementResult:
        schema = self._catalog.table(statement.table)
        data = self._tables[schema.name.lower()]
        versioned = txn is not None and data._controller is not None
        compiler = ExpressionCompiler()
        count = 0
        for value_row in statement.rows:
            columns = statement.columns or tuple(schema.column_names)
            if len(columns) != len(value_row):
                raise SqlExecutionError(
                    f"INSERT into {schema.name!r}: {len(columns)} columns "
                    f"but {len(value_row)} values"
                )
            values: list[object] = [None] * len(schema.columns)
            for column, expression in zip(columns, value_row):
                position = schema.column_index(column)
                values[position] = compiler.compile(expression)({}, params)
            row = schema.coerce_row(values)
            if versioned:
                row_id = data.mvcc_insert(row, txn)
            else:
                row_id = data.insert(row)
            if undo is not None:
                undo.record_insert(data, row_id, row)
            count += 1
        return StatementResult(rowcount=count)

    def _single_table_compiler(
        self, schema: TableSchema, binding: str
    ) -> ExpressionCompiler:
        """A slot-mode compiler over one table's stored rows: column
        references compile to positions in the stored tuple, so predicates
        and assignments evaluate directly against storage without building a
        per-row environment."""

        def resolve(ref: ast.ColumnRef) -> int:
            if ref.table is not None and ref.table.lower() != binding:
                raise SqlCatalogError(f"unknown table alias {ref.table!r}")
            return schema.column_index(ref.column)

        return ExpressionCompiler(resolve)

    def _execute_update(
        self,
        statement: ast.UpdateStatement,
        params: Sequence[object],
        undo: Optional[UndoLog] = None,
        txn: Optional[Transaction] = None,
    ) -> StatementResult:
        schema = self._catalog.table(statement.table)
        data = self._tables[schema.name.lower()]
        versioned = txn is not None and data._controller is not None
        compiler = self._single_table_compiler(schema, statement.table.lower())
        predicate = (
            compiler.compile(statement.where) if statement.where is not None else None
        )
        assignments = [
            (schema.column_index(column), compiler.compile(expression))
            for column, expression in statement.assignments
        ]
        updated = 0
        # Materialise matching row ids first so index updates cannot affect
        # the scan in progress.
        matches: list[tuple[int, tuple[object, ...]]] = []
        for row_id, row in data.scan():
            if predicate is None or is_truthy(predicate(row, params)):
                matches.append((row_id, row))
        for row_id, row in matches:
            if versioned:
                # Lock first: a conflicting writer aborts us before any
                # mutation; on success the matched row is re-read in case a
                # commit landed between the scan and the lock (the lock's
                # snapshot check ensures any such commit predates ours).
                data.mvcc_lock_row(row_id, txn)
                row = data._rows[row_id]
            new_row = list(row)
            for position, evaluate in assignments:
                new_row[position] = evaluate(row, params)
            coerced = schema.coerce_row(new_row)
            if versioned:
                undo.record_versioned_update(data, row_id, row, coerced)
                data.mvcc_update(row_id, coerced, txn)
            else:
                if undo is not None:
                    # Recorded before the update so a failure partway
                    # through re-indexing is still restorable.
                    undo.record_update(data, row_id, row, coerced)
                data.update(row_id, coerced)
            updated += 1
        return StatementResult(rowcount=updated)

    def _execute_delete(
        self,
        statement: ast.DeleteStatement,
        params: Sequence[object],
        undo: Optional[UndoLog] = None,
        txn: Optional[Transaction] = None,
    ) -> StatementResult:
        schema = self._catalog.table(statement.table)
        data = self._tables[schema.name.lower()]
        versioned = txn is not None and data._controller is not None
        compiler = self._single_table_compiler(schema, statement.table.lower())
        predicate = (
            compiler.compile(statement.where) if statement.where is not None else None
        )
        to_delete: list[tuple[int, tuple[object, ...]]] = []
        for row_id, row in data.scan():
            if predicate is None or is_truthy(predicate(row, params)):
                to_delete.append((row_id, row))
        for row_id, row in to_delete:
            if versioned:
                data.mvcc_lock_row(row_id, txn)
                row = data._rows[row_id]
                if row is None:
                    continue
                undo.record_versioned_delete(data, row_id, row)
                data.mvcc_delete(row_id, txn)
            else:
                if undo is not None:
                    undo.record_delete(data, row_id, row)
                data.delete(row_id)
        return StatementResult(rowcount=len(to_delete))

    # -- DDL -----------------------------------------------------------------

    def _execute_create_table(
        self, statement: ast.CreateTableStatement
    ) -> StatementResult:
        columns = tuple(
            ColumnSchema(
                name=definition.name,
                sql_type=SqlType.from_name(definition.type_name),
                primary_key=definition.primary_key,
                unique=definition.unique,
                nullable=definition.nullable,
                length=definition.length,
            )
            for definition in statement.columns
        )
        schema = TableSchema(name=statement.table, columns=columns)
        self._catalog.create_table(schema)
        data = TableData(schema)
        if self._mvcc is not None:
            data.attach_mvcc(self._mvcc)
        self._tables[schema.name.lower()] = data
        return StatementResult()

    def _execute_create_index(
        self, statement: ast.CreateIndexStatement
    ) -> StatementResult:
        schema = self._catalog.table(statement.table)
        data = self._tables[schema.name.lower()]
        data.create_index(
            statement.name, tuple(statement.columns), unique=statement.unique
        )
        return StatementResult()
