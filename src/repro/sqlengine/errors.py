"""Exceptions raised by the in-memory SQL engine."""

from __future__ import annotations

from repro.errors import SqlError


class SqlParseError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class SqlCatalogError(SqlError):
    """A statement referenced an unknown table or column, or redefined one."""


class SqlTypeError(SqlError):
    """A value did not match the declared column type."""


class SqlExecutionError(SqlError):
    """A statement failed during execution (e.g. bad parameter count)."""


class UniqueViolationError(SqlExecutionError):
    """A row would duplicate an existing key in a unique index."""

    def __init__(self, message: str, index: str | None = None, key: object = None) -> None:
        super().__init__(message)
        self.index = index
        self.key = key


class TransactionConflictError(SqlExecutionError):
    """Two transactions tried to write the same row (write-write conflict).

    Under snapshot isolation the first updater wins: the transaction that
    touches an already-owned row — or a row committed after its snapshot —
    is aborted with this error.  It is safe (and expected) for clients to
    roll back and retry the whole transaction; auto-commit statements are
    retried by the engine itself.
    """


class ReadOnlyError(SqlExecutionError):
    """A write statement reached a read-only server (a replica).

    Replicas apply the primary's log stream and accept only reads; the
    routing pool uses this as a signal that a statement landed on the wrong
    node.  Promotion clears the flag and the same server starts accepting
    writes.
    """


class ReplicationError(SqlExecutionError):
    """The replication stream cannot continue from the requested position.

    Raised when a replica asks for a log epoch the primary has checkpointed
    away (the replica must re-bootstrap), or when a closed epoch file turns
    out to be torn (on-disk corruption).
    """


class ShardError(SqlExecutionError):
    """A distributed statement could not be completed across the shards.

    Raised by the sharding coordinator when a shard node fails mid-fan-out
    (no partial merge is ever returned), when a statement cannot be routed
    (e.g. an UPDATE that would move a row between shards by changing its
    partition key), or when two-phase commit cannot reach a decision.
    """


class StaleShardMapError(ShardError):
    """The shard map changed underneath an in-flight operation.

    Shard maps are versioned; installing a newer map invalidates every
    routing decision taken under an older version.  Callers retry against
    the current map.
    """
