"""Exceptions raised by the in-memory SQL engine."""

from __future__ import annotations

from repro.errors import SqlError


class SqlParseError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class SqlCatalogError(SqlError):
    """A statement referenced an unknown table or column, or redefined one."""


class SqlTypeError(SqlError):
    """A value did not match the declared column type."""


class SqlExecutionError(SqlError):
    """A statement failed during execution (e.g. bad parameter count)."""
