"""Vectorized (columnar) batch operators for the SQL engine.

The row engine in :mod:`repro.sqlengine.operators` is an iterator over
positional tuples: every row crosses every operator as one Python-level
step, which is the dominant cost on scan- and aggregate-heavy queries.
The operators here process **column batches** instead: a batch carries
whole column value arrays (shared, immutable — captured from the storage
column cache) plus a *selection vector* of row indices that survived the
predicates so far.  Hot loops become list comprehensions and C-level
built-ins (``sum``/``min``/``max``/``zip``/``list.count``) over columns,
amortising the interpreter overhead across the batch.

Layout contract: batch columns are keyed by the planner's global *slot*
numbers, the same slots compiled expressions read — so the row engine's
evaluators run unchanged against a batch through :class:`_RowView` when a
predicate or output expression is too complex to vectorise.

Pushdown contract (with :meth:`repro.sqlengine.storage.TableData.
columnar_scan_state`): the scan receives only the column positions the
query references (projection pushdown — unreferenced columns are never
materialised) and evaluates simple comparison/range/IN/LIKE/IS NULL
predicates as whole-column selection passes before any operator sees a
batch (selection pushdown).  MVCC: the scan takes a zero-copy fast path
when the table has no version entries at capture time (see the storage
module docstring for why that proves universal visibility), and otherwise
patches a private copy of the arrays, resolving exactly the versioned rows
through per-row visibility checks.

The plan roots (:class:`BatchOutput`, :class:`BatchAggregate`) are regular
:class:`~repro.sqlengine.operators.PlanOperator` instances yielding output
tuples, so ``materialise``, the executor, EXPLAIN and result streaming all
work unchanged above a batch plan.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import SqlExecutionError
from repro.sqlengine.expressions import (
    Evaluator,
    ExpressionCompiler,
    Params,
    _like_to_regex,
    collect_column_refs,
    is_truthy,
)
from repro.sqlengine.operators import PlanOperator, _sort_key
from repro.sqlengine.storage import TableData

#: Default number of row slots per scan batch.
DEFAULT_BATCH_SIZE = 1024

#: A columnwise selection pass: (columns, selection, params) -> selection.
ColumnPredicate = Callable[[dict, Sequence[int], Params], list]


class ColumnarMetrics:
    """Engine-wide counters for the columnar subsystem (thread-safe).

    Surfaced as the ``columnar`` section of ``Database.stats()`` /
    SERVER_STATS; per-table column-array rebuild counters live on
    :class:`~repro.sqlengine.storage.TableData` and are merged in there.

    The values live in :class:`repro.obs.metrics.Counter` instruments —
    pass the engine's :class:`~repro.obs.metrics.MetricsRegistry` to share
    them with the unified export (``METRICS`` verb, Prometheus render);
    without one a private registry keeps the historical standalone
    behaviour.  ``snapshot()`` keys are unchanged.
    """

    _FIELDS = (
        "batches_produced",
        "rows_filtered_by_pushdown",
        "fast_path_scans",
        "fallback_scans",
    )

    def __init__(self, registry=None) -> None:
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self._counters = {
            name: registry.counter(
                f"columnar_{name}", "columnar execution counter"
            )
            for name in self._FIELDS
        }

    def count(self, field: str, amount: int = 1) -> None:
        self._counters[field].inc(amount)

    def snapshot(self) -> dict[str, int]:
        return {name: counter.value for name, counter in self._counters.items()}


class Batch:
    """One unit of columnar data flow.

    ``cols`` maps slot -> value array; ``sel`` is the selection vector:
    the indices into those arrays (in row order) that are part of the
    batch.  Arrays may be shared between batches (scans hand out the same
    captured column arrays with per-chunk selections) and are immutable by
    contract.  ``n`` is ``len(sel)``.
    """

    __slots__ = ("cols", "sel", "n")

    def __init__(self, cols: dict, sel, n: int) -> None:
        self.cols = cols
        self.sel = sel
        self.n = n


class _RowView:
    """Adapter presenting one batch row to slot-mode evaluators.

    Compiled expressions read ``row[slot]``; this resolves that against the
    batch columns at the current index, so arbitrary row-engine evaluators
    run on batches without materialising tuples.  One instance is reused
    per batch with ``i`` advanced between calls.
    """

    __slots__ = ("cols", "i")

    def __init__(self, cols: dict) -> None:
        self.cols = cols
        self.i = 0

    def __getitem__(self, slot: int):
        return self.cols[slot][self.i]


class BatchOperator(PlanOperator):
    """Base for operators that produce column batches.

    Inherits the EXPLAIN machinery from :class:`PlanOperator`; only plan
    roots implement row-wise ``execute``.
    """

    def batches(self, params: Params) -> Iterator[Batch]:
        raise NotImplementedError

    def execute(self, params: Params):
        raise SqlExecutionError(
            f"{type(self).__name__} produces batches, not rows"
        )


class BatchScan(BatchOperator):
    """Columnar table scan with projection and selection pushdown.

    Captures the required column arrays from the table's column cache and
    emits fixed-size batches whose selection vectors already exclude rows
    rejected by the pushed-down predicates.  MVCC fast path / fallback is
    decided per scan from the captured version-entry set (see the module
    docstring).
    """

    def __init__(
        self,
        table: TableData,
        binding: str,
        positions: Sequence[int],
        slots: Sequence[int],
        batch_size: int,
        pushdown: Sequence[ColumnPredicate],
        metrics: ColumnarMetrics,
    ) -> None:
        self._table = table
        self._binding = binding
        self._positions = list(positions)
        self._slots = list(slots)
        self._batch_size = max(1, batch_size)
        self._pushdown = list(pushdown)
        self._metrics = metrics

    def batches(self, params: Params) -> Iterator[Batch]:
        table = self._table
        metrics = self._metrics
        by_position, live, count, versioned = table.columnar_scan_state(
            self._positions
        )
        if versioned:
            # Fallback: some rows have version entries — their array values
            # are the *newest* content, not necessarily what this snapshot
            # reads.  Patch private copies, resolving exactly those rows.
            metrics.count("fallback_scans")
            controller = table._controller
            assert controller is not None
            snapshot, txn = controller.read_context()
            by_position = {
                position: list(array) for position, array in by_position.items()
            }
            live = list(live)
            for row_id in versioned:
                if row_id >= count:
                    continue
                visible = table._visible_row(row_id, snapshot, txn)
                if visible is None:
                    live[row_id] = False
                else:
                    live[row_id] = True
                    for position, array in by_position.items():
                        array[row_id] = visible[position]
        else:
            metrics.count("fast_path_scans")
        cols = {
            slot: by_position[position]
            for slot, position in zip(self._slots, self._positions)
        }
        pushdown = self._pushdown
        batch_size = self._batch_size
        produced = 0
        filtered = 0
        for low in range(0, count, batch_size):
            high = min(low + batch_size, count)
            sel: Sequence[int] = [i for i in range(low, high) if live[i]]
            if pushdown:
                before = len(sel)
                for predicate in pushdown:
                    if not sel:
                        break
                    sel = predicate(cols, sel, params)
                filtered += before - len(sel)
            if not sel:
                continue
            produced += 1
            yield Batch(cols, sel, len(sel))
        if produced:
            metrics.count("batches_produced", produced)
        if filtered:
            metrics.count("rows_filtered_by_pushdown", filtered)

    def describe(self) -> str:
        total = len(self._table.schema.columns)
        text = (
            f"BatchScan({self._table.schema.name} AS {self._binding}, "
            f"cols={len(self._slots)}/{total}"
        )
        if self._pushdown:
            text += f", pushdown={len(self._pushdown)}"
        return text + ")"


class BatchFilter(BatchOperator):
    """Row-at-a-time predicate over batches (the non-vectorisable rest).

    Predicates the columnwise compiler cannot handle (ORs, arithmetic,
    functions) evaluate through :class:`_RowView` — still cheaper than row
    mode because rows below the filter never materialise as tuples.
    """

    def __init__(
        self, child: BatchOperator, predicate: Evaluator, label: str = ""
    ) -> None:
        self._child = child
        self._predicate = predicate
        self._label = label

    def batches(self, params: Params) -> Iterator[Batch]:
        predicate = self._predicate
        for batch in self._child.batches(params):
            view = _RowView(batch.cols)
            sel = []
            append = sel.append
            for i in batch.sel:
                view.i = i
                if is_truthy(predicate(view, params)):
                    append(i)
            if sel:
                yield Batch(batch.cols, sel, len(sel))

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"BatchFilter({self._label})" if self._label else "BatchFilter"


class BatchHashJoin(BatchOperator):
    """Equi-join over batches: build on the right child, probe with the left.

    The build side is consolidated into compact column arrays keyed by join
    key; probing gathers matched left/right indices first and then builds
    each output column with one list comprehension (columnar: per-column
    gathers instead of per-row tuple surgery).  NULL join keys match
    nothing, as in the row engine's :class:`HashJoin`.
    """

    def __init__(
        self,
        left: BatchOperator,
        right: BatchOperator,
        probe_slots: Sequence[int],
        build_slots: Sequence[int],
        left_out_slots: Sequence[int],
        right_out_slots: Sequence[int],
    ) -> None:
        self._left = left
        self._right = right
        self._probe_slots = list(probe_slots)
        self._build_slots = list(build_slots)
        self._left_out_slots = list(left_out_slots)
        self._right_out_slots = list(right_out_slots)

    def batches(self, params: Params) -> Iterator[Batch]:
        build_slots = self._build_slots
        right_out = self._right_out_slots
        build_cols: dict[int, list] = {slot: [] for slot in right_out}
        matches: dict[object, list[int]] = {}
        single_build = build_slots[0] if len(build_slots) == 1 else None
        size = 0
        for batch in self._right.batches(params):
            cols = batch.cols
            out_pairs = [(build_cols[slot].append, cols[slot]) for slot in right_out]
            if single_build is not None:
                key_col = cols[single_build]
                for i in batch.sel:
                    key = key_col[i]
                    if key is None:
                        continue
                    matches.setdefault(key, []).append(size)
                    for append, col in out_pairs:
                        append(col[i])
                    size += 1
            else:
                key_cols = [cols[slot] for slot in build_slots]
                for i in batch.sel:
                    key = tuple(col[i] for col in key_cols)
                    if any(value is None for value in key):
                        continue
                    matches.setdefault(key, []).append(size)
                    for append, col in out_pairs:
                        append(col[i])
                    size += 1
        if not matches:
            return
        probe_slots = self._probe_slots
        single_probe = probe_slots[0] if len(probe_slots) == 1 else None
        left_out = self._left_out_slots
        get = matches.get
        for batch in self._left.batches(params):
            cols = batch.cols
            matched_left: list[int] = []
            matched_right: list[int] = []
            if single_probe is not None:
                key_col = cols[single_probe]
                for i in batch.sel:
                    key = key_col[i]
                    if key is None:
                        continue
                    hits = get(key)
                    if hits:
                        for j in hits:
                            matched_left.append(i)
                            matched_right.append(j)
            else:
                key_cols = [cols[slot] for slot in probe_slots]
                for i in batch.sel:
                    key = tuple(col[i] for col in key_cols)
                    if any(value is None for value in key):
                        continue
                    hits = get(key)
                    if hits:
                        for j in hits:
                            matched_left.append(i)
                            matched_right.append(j)
            if not matched_left:
                continue
            out = {
                slot: [cols[slot][i] for i in matched_left] for slot in left_out
            }
            for slot in right_out:
                col = build_cols[slot]
                out[slot] = [col[j] for j in matched_right]
            total = len(matched_left)
            yield Batch(out, range(total), total)

    def children(self) -> Sequence[PlanOperator]:
        return (self._left, self._right)

    def describe(self) -> str:
        return f"BatchHashJoin(keys={len(self._probe_slots)})"


class BatchSort(BatchOperator):
    """Sort: consolidate every batch, order a permutation vector, emit one
    batch whose selection vector *is* the sort order.

    Stable multi-key semantics match the row engine's :class:`Sort`
    (repeated stable sorts from the least significant key, NULLs first
    ascending) via the shared ``_sort_key`` normaliser.
    """

    def __init__(
        self,
        child: BatchOperator,
        keys: Sequence[tuple[Optional[int], Optional[Evaluator], bool]],
    ) -> None:
        self._child = child
        self._keys = list(keys)

    def batches(self, params: Params) -> Iterator[Batch]:
        consolidated: Optional[dict[int, list]] = None
        for batch in self._child.batches(params):
            if consolidated is None:
                consolidated = {slot: [] for slot in batch.cols}
            sel = batch.sel
            for slot, out in consolidated.items():
                col = batch.cols[slot]
                out.extend([col[i] for i in sel])
        if not consolidated:
            return
        total = len(next(iter(consolidated.values())))
        if not total:
            return
        order = list(range(total))
        for slot, evaluator, descending in reversed(self._keys):
            if slot is not None:
                values = consolidated[slot]
            else:
                assert evaluator is not None
                view = _RowView(consolidated)
                values = []
                for i in range(total):
                    view.i = i
                    values.append(evaluator(view, params))
            keyed = [_sort_key(value) for value in values]
            order.sort(key=keyed.__getitem__, reverse=descending)
        yield Batch(consolidated, order, total)

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"BatchSort(keys={len(self._keys)})"


class BatchOutput(PlanOperator):
    """Plan root adapting batches to output tuples.

    Mirrors the row engine's :class:`Project`: a pure slot gather when every
    select item is a plain column (``zip`` builds the tuples at C speed),
    falling back to per-row evaluators through :class:`_RowView` otherwise.
    """

    def __init__(
        self,
        child: BatchOperator,
        columns: Sequence[tuple[str, Evaluator]],
        slots: Sequence[int] | None,
    ) -> None:
        self._child = child
        self._columns = list(columns)
        self._slots = list(slots) if slots is not None else None

    @property
    def column_names(self) -> list[str]:
        return [name for name, _ in self._columns]

    def execute(self, params: Params):
        if self._slots is not None:
            out_slots = self._slots
            if len(out_slots) == 1:
                only = out_slots[0]
                for batch in self._child.batches(params):
                    col = batch.cols[only]
                    sel = batch.sel
                    yield from zip([col[i] for i in sel])
                return
            for batch in self._child.batches(params):
                cols = batch.cols
                sel = batch.sel
                yield from zip(*([cols[slot][i] for i in sel] for slot in out_slots))
            return
        evaluators = [evaluate for _, evaluate in self._columns]
        for batch in self._child.batches(params):
            view = _RowView(batch.cols)
            for i in batch.sel:
                view.i = i
                yield tuple(evaluate(view, params) for evaluate in evaluators)

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"BatchOutput({', '.join(self.column_names)})"


class BatchAggregate(PlanOperator):
    """Plan root for ungrouped aggregates over batches.

    Each spec is ``(name, function, slot, evaluator)``: ``slot`` set means
    the argument is a plain column (vectorised: one gather comprehension
    per batch, then C-level ``sum``/``min``/``max``); ``evaluator`` set
    means an expression argument (evaluated through :class:`_RowView`);
    both ``None`` means ``COUNT(*)``.  NULL handling and empty-input
    results match the row engine's :class:`Aggregate` exactly.
    """

    def __init__(
        self,
        child: BatchOperator,
        specs: Sequence[tuple[str, str, Optional[int], Optional[Evaluator]]],
    ) -> None:
        self._child = child
        self._specs = list(specs)

    @property
    def column_names(self) -> list[str]:
        return [name for name, _, _, _ in self._specs]

    def execute(self, params: Params):
        specs = self._specs
        counts = [0] * len(specs)
        sums: list[object] = [None] * len(specs)
        minima: list[object] = [None] * len(specs)
        maxima: list[object] = [None] * len(specs)
        for batch in self._child.batches(params):
            sel = batch.sel
            cols = batch.cols
            for position, (_, function, slot, evaluator) in enumerate(specs):
                if slot is None and evaluator is None:  # COUNT(*)
                    counts[position] += batch.n
                    continue
                if slot is not None:
                    col = cols[slot]
                    values = [col[i] for i in sel if col[i] is not None]
                else:
                    assert evaluator is not None
                    view = _RowView(cols)
                    values = []
                    for i in sel:
                        view.i = i
                        value = evaluator(view, params)
                        if value is not None:
                            values.append(value)
                if not values:
                    continue
                counts[position] += len(values)
                if function in ("SUM", "AVG"):
                    try:
                        subtotal = sum(values)
                    except TypeError:
                        # Non-numeric addition (the row engine folds with
                        # ``+`` whatever the type): fold explicitly.
                        subtotal = values[0]
                        for value in values[1:]:
                            subtotal = subtotal + value  # type: ignore[operator]
                    current = sums[position]
                    sums[position] = (
                        subtotal if current is None else current + subtotal  # type: ignore[operator]
                    )
                elif function == "MIN":
                    lowest = min(values)
                    current = minima[position]
                    if current is None or lowest < current:  # type: ignore[operator]
                        minima[position] = lowest
                elif function == "MAX":
                    highest = max(values)
                    current = maxima[position]
                    if current is None or highest > current:  # type: ignore[operator]
                        maxima[position] = highest
        out: list[object] = []
        for position, (_, function, _, _) in enumerate(specs):
            if function == "COUNT":
                out.append(counts[position])
            elif function == "SUM":
                out.append(sums[position])
            elif function == "AVG":
                total = sums[position]
                out.append(None if total is None else total / counts[position])  # type: ignore[operator]
            elif function == "MIN":
                out.append(minima[position])
            else:  # MAX
                out.append(maxima[position])
        yield tuple(out)

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        functions = ", ".join(function for _, function, _, _ in self._specs)
        return f"BatchAggregate({functions})"


# -- columnwise predicate compilation ---------------------------------------


def compile_columnwise(
    conjunct: ast.Expression,
    resolve_slot: Callable[[ast.ColumnRef], int],
    compiler: ExpressionCompiler,
) -> Optional[ColumnPredicate]:
    """Compile a pushed-down conjunct into a whole-column selection pass.

    Supported shapes (everything else returns None and stays row-wise in a
    :class:`BatchFilter`): column-vs-constant/parameter comparisons and
    ranges, column-vs-column comparisons, ``IS [NOT] NULL``, ``IN`` over
    constant/parameter lists, and ``LIKE`` with a constant/parameter
    pattern.  Semantics mirror the row engine's compiled evaluators under
    ``is_truthy`` — NULL operands never satisfy a predicate — so batch and
    row plans select identical rows.
    """
    if isinstance(conjunct, ast.IsNull):
        if not isinstance(conjunct.operand, ast.ColumnRef):
            return None
        slot = resolve_slot(conjunct.operand)
        if conjunct.negated:
            def not_null(cols: dict, sel, params: Params) -> list:
                col = cols[slot]
                return [i for i in sel if col[i] is not None]
            return not_null

        def null(cols: dict, sel, params: Params) -> list:
            col = cols[slot]
            return [i for i in sel if col[i] is None]
        return null

    if isinstance(conjunct, ast.InList):
        if not isinstance(conjunct.operand, ast.ColumnRef):
            return None
        if any(collect_column_refs(item) for item in conjunct.items):
            return None
        slot = resolve_slot(conjunct.operand)
        item_evaluators = [compiler.compile(item) for item in conjunct.items]
        negated = conjunct.negated

        def in_list(cols: dict, sel, params: Params) -> list:
            options = tuple(
                value
                for value in (
                    evaluate((), params) for evaluate in item_evaluators
                )
                if value is not None
            )
            col = cols[slot]
            if negated:
                return [
                    i for i in sel if col[i] is not None and col[i] not in options
                ]
            return [i for i in sel if col[i] is not None and col[i] in options]
        return in_list

    if not isinstance(conjunct, ast.BinaryOp):
        return None
    op = conjunct.op

    if op == "LIKE":
        if not isinstance(conjunct.left, ast.ColumnRef):
            return None
        if collect_column_refs(conjunct.right):
            return None
        slot = resolve_slot(conjunct.left)
        pattern_evaluator = compiler.compile(conjunct.right)

        def like(cols: dict, sel, params: Params) -> list:
            pattern = pattern_evaluator((), params)
            if pattern is None:
                return []
            match = _like_to_regex(str(pattern)).match
            col = cols[slot]
            return [
                i
                for i in sel
                if col[i] is not None and match(str(col[i])) is not None
            ]
        return like

    if op not in ("=", "!=", "<", "<=", ">", ">="):
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef):
        return _column_column_compare(
            resolve_slot(left), op, resolve_slot(right)
        )
    for column_side, value_side, flipped in (
        (left, right, False),
        (right, left, True),
    ):
        if not isinstance(column_side, ast.ColumnRef):
            continue
        if collect_column_refs(value_side):
            continue
        effective = _FLIPPED_OPS[op] if flipped else op
        return _column_value_compare(
            resolve_slot(column_side), effective, compiler.compile(value_side)
        )
    return None


#: ``value OP column`` rewritten as ``column OP' value``.
_FLIPPED_OPS = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _column_value_compare(
    slot: int, op: str, value_evaluator: Evaluator
) -> ColumnPredicate:
    def compare(cols: dict, sel, params: Params) -> list:
        value = value_evaluator((), params)
        if value is None:
            return []
        col = cols[slot]
        try:
            if op == "=":
                return [i for i in sel if col[i] is not None and col[i] == value]
            if op == "!=":
                return [i for i in sel if col[i] is not None and col[i] != value]
            if op == "<":
                return [i for i in sel if col[i] is not None and col[i] < value]
            if op == "<=":
                return [i for i in sel if col[i] is not None and col[i] <= value]
            if op == ">":
                return [i for i in sel if col[i] is not None and col[i] > value]
            return [i for i in sel if col[i] is not None and col[i] >= value]
        except TypeError as exc:
            raise SqlExecutionError(
                f"cannot compare column values and {value!r}"
            ) from exc
    return compare


def _column_column_compare(
    left_slot: int, op: str, right_slot: int
) -> ColumnPredicate:
    def compare(cols: dict, sel, params: Params) -> list:
        a = cols[left_slot]
        b = cols[right_slot]
        try:
            if op == "=":
                return [
                    i for i in sel
                    if a[i] is not None and b[i] is not None and a[i] == b[i]
                ]
            if op == "!=":
                return [
                    i for i in sel
                    if a[i] is not None and b[i] is not None and a[i] != b[i]
                ]
            if op == "<":
                return [
                    i for i in sel
                    if a[i] is not None and b[i] is not None and a[i] < b[i]
                ]
            if op == "<=":
                return [
                    i for i in sel
                    if a[i] is not None and b[i] is not None and a[i] <= b[i]
                ]
            if op == ">":
                return [
                    i for i in sel
                    if a[i] is not None and b[i] is not None and a[i] > b[i]
                ]
            return [
                i for i in sel
                if a[i] is not None and b[i] is not None and a[i] >= b[i]
            ]
        except TypeError as exc:
            raise SqlExecutionError(
                "cannot compare values of the two columns"
            ) from exc
    return compare
