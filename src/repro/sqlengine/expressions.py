"""Expression compilation and evaluation for the SQL engine.

Expressions are compiled once per statement into Python closures that take a
*row* and the positional parameter list, and return the value of the
expression.  Two row representations are supported, selected by what the
resolver returns for a column reference:

* **slot mode** (the planner and executor hot paths): the resolver maps a
  :class:`~repro.sqlengine.ast_nodes.ColumnRef` to an integer slot index and
  rows are positional tuples — a column read compiles to ``row[slot]``;
* **environment mode** (the default, kept for ad-hoc evaluation): the
  resolver returns a string key and rows are dictionaries mapping
  qualified/unqualified column names to values.

NULL handling follows a simplified SQL model: any comparison or arithmetic
involving NULL yields NULL, and NULL in a filter position is treated as
false.  ``IS NULL`` / ``IS NOT NULL`` test NULL explicitly.
"""

from __future__ import annotations

import operator
import re
from typing import Callable, Mapping, Sequence, Union

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import SqlExecutionError

RowEnv = Mapping[str, object]
#: A positional row (slot mode) — what every plan operator passes around.
Row = Sequence[object]
Params = Sequence[object]
Evaluator = Callable[[Union[RowEnv, Row], Params], object]

_ARITHMETIC_OPS: dict[str, Callable[[object, object], object]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "%": operator.mod,
}

_COMPARISON_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def is_truthy(value: object) -> bool:
    """SQL filter semantics: NULL and false are filtered out."""
    return bool(value) and value is not None


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE)


def column_key(table: str | None, column: str) -> str:
    """Canonical environment key for a column reference."""
    if table:
        return f"{table.lower()}.{column.lower()}"
    return column.lower()


class ExpressionCompiler:
    """Compiles AST expressions into evaluator closures.

    ``resolver`` maps a :class:`~repro.sqlengine.ast_nodes.ColumnRef` to
    either an integer slot index (slot mode: rows are positional tuples and
    the reference compiles to ``row[slot]``) or an environment key (rows are
    dictionaries).  The planner supplies a slot resolver that also validates
    the reference against the catalog.
    """

    def __init__(
        self, resolver: Callable[[ast.ColumnRef], Union[str, int]] | None = None
    ) -> None:
        self._resolver = resolver or (
            lambda ref: column_key(ref.table, ref.column)
        )

    def compile(self, expression: ast.Expression) -> Evaluator:
        """Compile ``expression`` into an evaluator closure."""
        if isinstance(expression, ast.Literal):
            value = expression.value
            return lambda env, params: value
        if isinstance(expression, ast.Parameter):
            index = expression.index
            def eval_parameter(env: RowEnv, params: Params) -> object:
                if index >= len(params):
                    raise SqlExecutionError(
                        f"missing value for parameter {index + 1}"
                    )
                return params[index]
            return eval_parameter
        if isinstance(expression, ast.ColumnRef):
            target = self._resolver(expression)
            if isinstance(target, int):
                slot = target
                def eval_slot(row: Row, params: Params) -> object:
                    return row[slot]
                return eval_slot
            key = target
            def eval_column(env: RowEnv, params: Params) -> object:
                try:
                    return env[key]
                except KeyError as exc:
                    raise SqlExecutionError(f"unknown column {key!r}") from exc
            return eval_column
        if isinstance(expression, ast.UnaryOp):
            return self._compile_unary(expression)
        if isinstance(expression, ast.BinaryOp):
            return self._compile_binary(expression)
        if isinstance(expression, ast.IsNull):
            inner = self.compile(expression.operand)
            negated = expression.negated
            def eval_isnull(env: RowEnv, params: Params) -> object:
                value = inner(env, params)
                return (value is not None) if negated else (value is None)
            return eval_isnull
        if isinstance(expression, ast.InList):
            return self._compile_in(expression)
        if isinstance(expression, ast.FunctionCall):
            return self._compile_function(expression)
        raise SqlExecutionError(f"cannot compile expression {expression!r}")

    # -- helpers -------------------------------------------------------------

    def _compile_unary(self, expression: ast.UnaryOp) -> Evaluator:
        inner = self.compile(expression.operand)
        if expression.op == "-":
            def eval_negate(env: RowEnv, params: Params) -> object:
                value = inner(env, params)
                if value is None:
                    return None
                return -value  # type: ignore[operator]
            return eval_negate
        if expression.op == "NOT":
            def eval_not(env: RowEnv, params: Params) -> object:
                value = inner(env, params)
                if value is None:
                    return None
                return not is_truthy(value)
            return eval_not
        raise SqlExecutionError(f"unknown unary operator {expression.op!r}")

    def _compile_binary(self, expression: ast.BinaryOp) -> Evaluator:
        op = expression.op
        left = self.compile(expression.left)
        right = self.compile(expression.right)

        if op == "AND":
            def eval_and(env: RowEnv, params: Params) -> object:
                left_value = left(env, params)
                if left_value is not None and not is_truthy(left_value):
                    return False
                right_value = right(env, params)
                if left_value is None or right_value is None:
                    return None
                return is_truthy(right_value)
            return eval_and
        if op == "OR":
            def eval_or(env: RowEnv, params: Params) -> object:
                left_value = left(env, params)
                if left_value is not None and is_truthy(left_value):
                    return True
                right_value = right(env, params)
                if right_value is not None and is_truthy(right_value):
                    return True
                if left_value is None or right_value is None:
                    return None
                return False
            return eval_or
        if op == "LIKE":
            def eval_like(env: RowEnv, params: Params) -> object:
                value = left(env, params)
                pattern = right(env, params)
                if value is None or pattern is None:
                    return None
                return _like_to_regex(str(pattern)).match(str(value)) is not None
            return eval_like
        if op == "/":
            def eval_divide(env: RowEnv, params: Params) -> object:
                left_value = left(env, params)
                right_value = right(env, params)
                if left_value is None or right_value is None:
                    return None
                if right_value == 0:
                    raise SqlExecutionError("division by zero")
                return left_value / right_value  # type: ignore[operator]
            return eval_divide
        if op in _ARITHMETIC_OPS:
            func = _ARITHMETIC_OPS[op]
            def eval_arith(env: RowEnv, params: Params) -> object:
                left_value = left(env, params)
                right_value = right(env, params)
                if left_value is None or right_value is None:
                    return None
                return func(left_value, right_value)
            return eval_arith
        if op in _COMPARISON_OPS:
            func = _COMPARISON_OPS[op]
            def eval_compare(env: RowEnv, params: Params) -> object:
                left_value = left(env, params)
                right_value = right(env, params)
                if left_value is None or right_value is None:
                    return None
                left_value, right_value = _normalise_pair(left_value, right_value)
                try:
                    return func(left_value, right_value)
                except TypeError as exc:
                    raise SqlExecutionError(
                        f"cannot compare {left_value!r} and {right_value!r}"
                    ) from exc
            return eval_compare
        raise SqlExecutionError(f"unknown binary operator {op!r}")

    def _compile_in(self, expression: ast.InList) -> Evaluator:
        operand = self.compile(expression.operand)
        items = [self.compile(item) for item in expression.items]
        negated = expression.negated
        def eval_in(env: RowEnv, params: Params) -> object:
            value = operand(env, params)
            if value is None:
                return None
            values = [item(env, params) for item in items]
            found = any(
                value == other
                for other in values
                if other is not None
            )
            return (not found) if negated else found
        return eval_in

    def _compile_function(self, expression: ast.FunctionCall) -> Evaluator:
        name = expression.name.upper()
        args = [self.compile(arg) for arg in expression.args]
        if name == "LOWER" and len(args) == 1:
            return lambda env, params: _maybe_str(args[0](env, params), str.lower)
        if name == "UPPER" and len(args) == 1:
            return lambda env, params: _maybe_str(args[0](env, params), str.upper)
        if name == "LENGTH" and len(args) == 1:
            def eval_length(env: RowEnv, params: Params) -> object:
                value = args[0](env, params)
                return None if value is None else len(str(value))
            return eval_length
        if name == "ABS" and len(args) == 1:
            def eval_abs(env: RowEnv, params: Params) -> object:
                value = args[0](env, params)
                return None if value is None else abs(value)  # type: ignore[arg-type]
            return eval_abs
        raise SqlExecutionError(f"unsupported function {expression.name!r}")


def _maybe_str(value: object, func: Callable[[str], str]) -> object:
    return None if value is None else func(str(value))


def _normalise_pair(left: object, right: object) -> tuple[object, object]:
    """Allow comparisons between ints and floats and between bools and ints;
    otherwise require matching types (string/number comparisons raise)."""
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, (bool, int)) and isinstance(right, (bool, int)):
            return int(left), int(right)  # type: ignore[arg-type]
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    return left, right


def collect_column_refs(expression: ast.Expression) -> list[ast.ColumnRef]:
    """Return every column reference appearing in ``expression``."""
    found: list[ast.ColumnRef] = []

    def walk(node: ast.Expression) -> None:
        if isinstance(node, ast.ColumnRef):
            found.append(node)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.FunctionCall):
            for arg in node.args:
                walk(arg)

    walk(expression)
    return found


def split_conjuncts(expression: ast.Expression | None) -> list[ast.Expression]:
    """Split an expression on top-level ANDs into a list of conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.op == "AND":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]
