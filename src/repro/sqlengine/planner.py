"""Query planner: turns a parsed SELECT statement into an operator tree.

The planner performs the standard basic optimisations a relational engine
needs for the paper's workload:

* predicate pushdown of single-table conjuncts onto their scans,
* index selection for equality predicates on indexed columns,
* equi-join detection with a choice of index nested-loop join (when the join
  key hits an index on the build side) or hash join,
* greedy join ordering starting from the most selective access path,
* sort / limit / distinct handling.

Planner behaviour can be tuned via :class:`PlannerOptions`; the ablation
benchmarks exercise those switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog, TableSchema
from repro.sqlengine.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.expressions import (
    Evaluator,
    ExpressionCompiler,
    collect_column_refs,
    split_conjuncts,
)
from repro.sqlengine.operators import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    IndexLookupScan,
    IndexNestedLoopJoin,
    IndexOrLookupJoin,
    Limit,
    NestedLoopJoin,
    PlanOperator,
    Project,
    SeqScan,
    Sort,
)
from repro.sqlengine.storage import TableData


@dataclass
class PlannerOptions:
    """Switches controlling which access paths the planner may use."""

    use_indexes: bool = True
    use_index_nested_loop_join: bool = True
    use_hash_join: bool = True


@dataclass
class SelectPlan:
    """A planned SELECT: the operator tree plus its output column names."""

    root: PlanOperator
    column_names: list[str]

    def explain(self) -> str:
        """Human-readable plan tree."""
        return self.root.explain()


@dataclass
class _Binding:
    """One FROM-clause entry resolved against the catalog."""

    name: str
    schema: TableSchema
    data: TableData
    conjuncts: list[ast.Expression] = field(default_factory=list)


class Planner:
    """Plans SELECT statements against a catalog and its table data."""

    def __init__(
        self,
        catalog: Catalog,
        tables: dict[str, TableData],
        options: PlannerOptions | None = None,
    ) -> None:
        self._catalog = catalog
        self._tables = tables
        self._options = options or PlannerOptions()

    # -- public API ----------------------------------------------------------

    def plan_select(self, statement: ast.SelectStatement) -> SelectPlan:
        """Build an executable plan for ``statement``."""
        bindings = self._resolve_bindings(statement)
        compiler = ExpressionCompiler(self._make_resolver(bindings))

        join_conjuncts: list[ast.Expression] = []
        residual_conjuncts: list[ast.Expression] = []
        for conjunct in split_conjuncts(statement.where):
            used = self._bindings_used(conjunct, bindings)
            if len(used) <= 1:
                if used:
                    bindings[next(iter(used))].conjuncts.append(conjunct)
                else:
                    residual_conjuncts.append(conjunct)
            elif len(used) == 2 and self._is_equi_join(conjunct, bindings):
                join_conjuncts.append(conjunct)
            else:
                residual_conjuncts.append(conjunct)

        root = self._plan_joins(
            statement, bindings, join_conjuncts, residual_conjuncts, compiler
        )

        aggregate_plan = self._maybe_plan_aggregate(statement, root, compiler)
        if aggregate_plan is not None:
            return aggregate_plan

        if statement.order_by:
            keys = [
                (compiler.compile(item.expression), item.descending)
                for item in statement.order_by
            ]
            root = Sort(root, keys)

        columns = self._output_columns(statement, bindings, compiler)
        root = Project(root, columns)
        column_names = [name for name, _ in columns]

        if statement.distinct:
            root = Distinct(root, column_names)

        if statement.limit is not None or statement.offset is not None:
            limit = compiler.compile(statement.limit) if statement.limit else None
            offset = compiler.compile(statement.offset) if statement.offset else None
            root = Limit(root, limit, offset)

        return SelectPlan(root=root, column_names=column_names)

    # -- binding resolution ---------------------------------------------------

    def _resolve_bindings(
        self, statement: ast.SelectStatement
    ) -> dict[str, _Binding]:
        bindings: dict[str, _Binding] = {}
        for table_ref in statement.tables:
            schema = self._catalog.table(table_ref.table)
            data = self._tables[schema.name.lower()]
            name = table_ref.binding.lower()
            if name in bindings:
                raise SqlCatalogError(f"duplicate table alias {table_ref.binding!r}")
            bindings[name] = _Binding(name=name, schema=schema, data=data)
        return bindings

    def _make_resolver(self, bindings: dict[str, _Binding]):
        def resolve(ref: ast.ColumnRef) -> str:
            return self._resolve_column(ref, bindings)[0]

        return resolve

    def _resolve_column(
        self, ref: ast.ColumnRef, bindings: dict[str, _Binding]
    ) -> tuple[str, str]:
        """Resolve a column reference to (environment key, binding name)."""
        if ref.table is not None:
            name = ref.table.lower()
            if name not in bindings:
                raise SqlCatalogError(f"unknown table alias {ref.table!r}")
            binding = bindings[name]
            if not binding.schema.has_column(ref.column):
                raise SqlCatalogError(
                    f"table {binding.schema.name!r} has no column {ref.column!r}"
                )
            return f"{name}.{ref.column.lower()}", name
        matches = [
            name
            for name, binding in bindings.items()
            if binding.schema.has_column(ref.column)
        ]
        if not matches:
            raise SqlCatalogError(f"unknown column {ref.column!r}")
        if len(matches) > 1:
            raise SqlCatalogError(f"ambiguous column {ref.column!r}")
        return f"{matches[0]}.{ref.column.lower()}", matches[0]

    def _bindings_used(
        self, expression: ast.Expression, bindings: dict[str, _Binding]
    ) -> set[str]:
        used: set[str] = set()
        for ref in collect_column_refs(expression):
            _, binding = self._resolve_column(ref, bindings)
            used.add(binding)
        return used

    @staticmethod
    def _is_equi_join(
        expression: ast.Expression, bindings: dict[str, _Binding]
    ) -> bool:
        return (
            isinstance(expression, ast.BinaryOp)
            and expression.op == "="
            and isinstance(expression.left, ast.ColumnRef)
            and isinstance(expression.right, ast.ColumnRef)
        )

    # -- scans ---------------------------------------------------------------

    def _column_keys(
        self, binding: _Binding, bindings: dict[str, _Binding]
    ) -> list[list[str]]:
        """For each column of ``binding``, the environment keys it publishes."""
        counts: dict[str, int] = {}
        for other in bindings.values():
            for column in other.schema.column_names:
                key = column.lower()
                counts[key] = counts.get(key, 0) + 1
        keys: list[list[str]] = []
        for column in binding.schema.column_names:
            lowered = column.lower()
            column_keys = [f"{binding.name}.{lowered}"]
            if counts[lowered] == 1:
                column_keys.append(lowered)
            keys.append(column_keys)
        return keys

    def _plan_scan(
        self,
        binding: _Binding,
        bindings: dict[str, _Binding],
        compiler: ExpressionCompiler,
    ) -> PlanOperator:
        """Plan the access path for a single table, honouring its pushed-down
        conjuncts (index lookup when possible, otherwise scan + filter)."""
        column_keys = self._column_keys(binding, bindings)
        remaining = list(binding.conjuncts)
        scan: PlanOperator | None = None

        if self._options.use_indexes:
            scan, remaining = self._try_index_lookup(
                binding, column_keys, remaining, compiler
            )
        if scan is None:
            scan = SeqScan(binding.data, binding.name, column_keys)
        for conjunct in remaining:
            scan = Filter(scan, compiler.compile(conjunct), label=binding.name)
        return scan

    def _try_index_lookup(
        self,
        binding: _Binding,
        column_keys: list[list[str]],
        conjuncts: list[ast.Expression],
        compiler: ExpressionCompiler,
    ) -> tuple[Optional[PlanOperator], list[ast.Expression]]:
        """Try to satisfy some equality conjuncts with an index lookup."""
        equalities: dict[str, tuple[ast.Expression, ast.Expression]] = {}
        for conjunct in conjuncts:
            column_and_value = self._extract_column_equality(conjunct, binding)
            if column_and_value is not None:
                column, value_expr = column_and_value
                equalities.setdefault(column.lower(), (conjunct, value_expr))
        if not equalities:
            return None, conjuncts

        for index_name, index in binding.data.indexes().items():
            index_columns = [column.lower() for column in index.columns]
            if all(column in equalities for column in index_columns):
                consumed = {equalities[column][0] for column in index_columns}
                key_evaluators = [
                    compiler.compile(equalities[column][1])
                    for column in index_columns
                ]
                scan = IndexLookupScan(
                    binding.data,
                    binding.name,
                    column_keys,
                    index_name,
                    key_evaluators,
                )
                remaining = [c for c in conjuncts if c not in consumed]
                return scan, remaining
        return None, conjuncts

    def _extract_column_equality(
        self, conjunct: ast.Expression, binding: _Binding
    ) -> Optional[tuple[str, ast.Expression]]:
        """If ``conjunct`` is ``binding.column = <constant or parameter>``,
        return (column, value expression)."""
        if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
            return None
        left, right = conjunct.left, conjunct.right
        for column_side, value_side in ((left, right), (right, left)):
            if not isinstance(column_side, ast.ColumnRef):
                continue
            if collect_column_refs(value_side):
                continue
            if column_side.table is not None and column_side.table.lower() != binding.name:
                continue
            if not binding.schema.has_column(column_side.column):
                continue
            return column_side.column, value_side
        return None

    # -- joins ----------------------------------------------------------------

    def _plan_joins(
        self,
        statement: ast.SelectStatement,
        bindings: dict[str, _Binding],
        join_conjuncts: list[ast.Expression],
        residual_conjuncts: list[ast.Expression],
        compiler: ExpressionCompiler,
    ) -> PlanOperator:
        order = list(bindings)
        # Start from the binding with the most selective-looking access path:
        # one that has an equality conjunct usable with an index.
        def selectivity_rank(name: str) -> tuple[int, int]:
            binding = bindings[name]
            has_index_eq = 0
            if self._options.use_indexes:
                scan, remaining = self._try_index_lookup(
                    binding,
                    self._column_keys(binding, bindings),
                    list(binding.conjuncts),
                    compiler,
                )
                has_index_eq = 0 if scan is not None else 1
            return (has_index_eq, order.index(name))

        start = min(order, key=selectivity_rank)
        joined = {start}
        current = self._plan_scan(bindings[start], bindings, compiler)
        pending_joins = list(join_conjuncts)

        while len(joined) < len(bindings):
            progressed = False
            for conjunct in list(pending_joins):
                assert isinstance(conjunct, ast.BinaryOp)
                left_ref = conjunct.left
                right_ref = conjunct.right
                assert isinstance(left_ref, ast.ColumnRef)
                assert isinstance(right_ref, ast.ColumnRef)
                _, left_binding = self._resolve_column(left_ref, bindings)
                _, right_binding = self._resolve_column(right_ref, bindings)
                if left_binding in joined and right_binding not in joined:
                    probe_ref, build_ref, build_binding = left_ref, right_ref, right_binding
                elif right_binding in joined and left_binding not in joined:
                    probe_ref, build_ref, build_binding = right_ref, left_ref, left_binding
                else:
                    if left_binding in joined and right_binding in joined:
                        # Both sides already joined: becomes a residual filter.
                        pending_joins.remove(conjunct)
                        residual_conjuncts.append(conjunct)
                        progressed = True
                    continue
                pending_joins.remove(conjunct)
                # Collect every other pending join predicate linking the new
                # binding to already-joined ones so multi-key joins work.
                extra_probe_refs = [probe_ref]
                extra_build_refs = [build_ref]
                for other in list(pending_joins):
                    assert isinstance(other, ast.BinaryOp)
                    other_left, other_right = other.left, other.right
                    assert isinstance(other_left, ast.ColumnRef)
                    assert isinstance(other_right, ast.ColumnRef)
                    _, other_left_binding = self._resolve_column(other_left, bindings)
                    _, other_right_binding = self._resolve_column(other_right, bindings)
                    if other_left_binding in joined and other_right_binding == build_binding:
                        extra_probe_refs.append(other_left)
                        extra_build_refs.append(other_right)
                        pending_joins.remove(other)
                    elif other_right_binding in joined and other_left_binding == build_binding:
                        extra_probe_refs.append(other_right)
                        extra_build_refs.append(other_left)
                        pending_joins.remove(other)
                current = self._join_binding(
                    current,
                    bindings[build_binding],
                    bindings,
                    extra_probe_refs,
                    extra_build_refs,
                    compiler,
                )
                joined.add(build_binding)
                progressed = True
                break
            if not progressed:
                # No equi-join predicate connects the remaining tables.  Try
                # a disjunction of indexed equalities (PostgreSQL-style index
                # OR), otherwise fall back to a cross join.
                for name in order:
                    if name in joined:
                        continue
                    or_join = self._try_index_or_join(
                        current, bindings[name], bindings, joined,
                        residual_conjuncts, compiler,
                    )
                    if or_join is not None:
                        current = or_join
                    else:
                        right = self._plan_scan(bindings[name], bindings, compiler)
                        current = NestedLoopJoin(current, right)
                    joined.add(name)
                    break

        for conjunct in residual_conjuncts:
            current = Filter(current, compiler.compile(conjunct), label="residual")
        return current

    def _try_index_or_join(
        self,
        left: PlanOperator,
        binding: _Binding,
        bindings: dict[str, _Binding],
        joined: set[str],
        residual_conjuncts: list[ast.Expression],
        compiler: ExpressionCompiler,
    ) -> Optional[PlanOperator]:
        """Join ``binding`` through a disjunction of indexed equalities.

        Looks for a residual conjunct of the form ``a1 = B.c1 OR a2 = B.c2
        OR ...`` where every ``ai`` only references already-joined bindings
        (or parameters) and every ``B.ci`` has an index.  The conjunct is
        consumed and replaced by per-disjunct index probes plus a residual
        re-check.
        """
        if not (self._options.use_indexes and self._options.use_index_nested_loop_join):
            return None
        if binding.conjuncts:
            return None
        for conjunct in list(residual_conjuncts):
            disjuncts = _split_disjuncts(conjunct)
            if len(disjuncts) < 2:
                continue
            probes: list[tuple[str, Evaluator]] = []
            for disjunct in disjuncts:
                probe = self._or_probe(disjunct, binding, joined, bindings, compiler)
                if probe is None:
                    probes = []
                    break
                probes.append(probe)
            if not probes:
                continue
            residual_conjuncts.remove(conjunct)
            residual = compiler.compile(conjunct)
            column_keys = self._column_keys(binding, bindings)
            return IndexOrLookupJoin(
                left,
                binding.data,
                binding.name,
                column_keys,
                probes,
                residual,
            )
        return None

    def _or_probe(
        self,
        disjunct: ast.Expression,
        binding: _Binding,
        joined: set[str],
        bindings: dict[str, _Binding],
        compiler: ExpressionCompiler,
    ) -> Optional[tuple[str, Evaluator]]:
        """If ``disjunct`` is ``<outer expr> = binding.column`` with an index
        on ``column``, return (index name, key evaluator over the left env)."""
        if not isinstance(disjunct, ast.BinaryOp) or disjunct.op != "=":
            return None
        for column_side, value_side in (
            (disjunct.left, disjunct.right),
            (disjunct.right, disjunct.left),
        ):
            if not isinstance(column_side, ast.ColumnRef):
                continue
            _, column_binding = self._resolve_column(column_side, bindings)
            if column_binding != binding.name:
                continue
            value_bindings = {
                self._resolve_column(ref, bindings)[1]
                for ref in collect_column_refs(value_side)
            }
            if not value_bindings <= joined:
                continue
            index = binding.data.find_equality_index((column_side.column,))
            if index is None:
                continue
            return index.name, compiler.compile(value_side)
        return None

    def _join_binding(
        self,
        left: PlanOperator,
        build_binding: _Binding,
        bindings: dict[str, _Binding],
        probe_refs: list[ast.ColumnRef],
        build_refs: list[ast.ColumnRef],
        compiler: ExpressionCompiler,
    ) -> PlanOperator:
        """Join ``left`` with ``build_binding`` on the given key columns."""
        column_keys = self._column_keys(build_binding, bindings)
        probe_evaluators = [compiler.compile(ref) for ref in probe_refs]
        build_columns = tuple(ref.column for ref in build_refs)

        if self._options.use_index_nested_loop_join and self._options.use_indexes:
            index = build_binding.data.find_equality_index(build_columns)
            if index is not None and not build_binding.conjuncts:
                # Reorder probe keys to match the index column order.
                ordered_probe: list[Evaluator] = []
                for index_column in index.columns:
                    for probe_evaluator, build_ref in zip(probe_evaluators, build_refs):
                        if build_ref.column.lower() == index_column.lower():
                            ordered_probe.append(probe_evaluator)
                            break
                if len(ordered_probe) == len(index.columns):
                    return IndexNestedLoopJoin(
                        left,
                        build_binding.data,
                        build_binding.name,
                        column_keys,
                        index.name,
                        ordered_probe,
                    )

        right = self._plan_scan(build_binding, bindings, compiler)
        if self._options.use_hash_join:
            build_evaluators = [compiler.compile(ref) for ref in build_refs]
            return HashJoin(left, right, probe_evaluators, build_evaluators)
        predicate_ast: ast.Expression | None = None
        for probe_ref, build_ref in zip(probe_refs, build_refs):
            equality = ast.BinaryOp("=", probe_ref, build_ref)
            predicate_ast = (
                equality
                if predicate_ast is None
                else ast.BinaryOp("AND", predicate_ast, equality)
            )
        predicate = compiler.compile(predicate_ast) if predicate_ast else None
        return NestedLoopJoin(left, right, predicate)

    # -- output columns -------------------------------------------------------

    def _maybe_plan_aggregate(
        self,
        statement: ast.SelectStatement,
        root: PlanOperator,
        compiler: ExpressionCompiler,
    ) -> Optional[SelectPlan]:
        """Handle the simple aggregate case (COUNT without GROUP BY)."""
        has_aggregate = any(
            isinstance(item.expression, ast.FunctionCall)
            and item.expression.name.upper() == "COUNT"
            for item in statement.items
        )
        if not has_aggregate:
            return None
        columns: list[tuple[str, Optional[Evaluator]]] = []
        for position, item in enumerate(statement.items):
            expression = item.expression
            if not isinstance(expression, ast.FunctionCall):
                raise SqlExecutionError(
                    "mixing aggregate and non-aggregate select items "
                    "requires GROUP BY, which is not supported"
                )
            name = (item.alias or f"count{position}").lower()
            evaluator = None
            if not expression.star and expression.args:
                evaluator = compiler.compile(expression.args[0])
            columns.append((name, evaluator))
        aggregate = Aggregate(root, columns)
        return SelectPlan(root=aggregate, column_names=[name for name, _ in columns])

    def _output_columns(
        self,
        statement: ast.SelectStatement,
        bindings: dict[str, _Binding],
        compiler: ExpressionCompiler,
    ) -> list[tuple[str, Evaluator]]:
        columns: list[tuple[str, Evaluator]] = []
        counts: dict[str, int] = {}
        for binding in bindings.values():
            for column in binding.schema.column_names:
                key = column.lower()
                counts[key] = counts.get(key, 0) + 1

        def add_table_columns(binding: _Binding) -> None:
            for column in binding.schema.column_names:
                lowered = column.lower()
                key = f"{binding.name}.{lowered}"
                output_name = lowered if counts[lowered] == 1 else key
                columns.append((output_name, _env_getter(key)))

        generated_index = 0
        for item in statement.items:
            if item.star:
                for binding in bindings.values():
                    add_table_columns(binding)
            elif item.table_star is not None:
                name = item.table_star.lower()
                if name not in bindings:
                    raise SqlCatalogError(f"unknown table alias {item.table_star!r}")
                add_table_columns(bindings[name])
            else:
                assert item.expression is not None
                evaluator = compiler.compile(item.expression)
                if item.alias:
                    output_name = item.alias.lower()
                elif isinstance(item.expression, ast.ColumnRef):
                    output_name = item.expression.column.lower()
                else:
                    output_name = f"col{generated_index}"
                generated_index += 1
                columns.append((output_name, evaluator))
        return columns


def _split_disjuncts(expression: ast.Expression) -> list[ast.Expression]:
    """Split an expression on top-level ORs."""
    if isinstance(expression, ast.BinaryOp) and expression.op == "OR":
        return _split_disjuncts(expression.left) + _split_disjuncts(expression.right)
    return [expression]


def _env_getter(key: str) -> Evaluator:
    def get(env, params):  # type: ignore[no-untyped-def]
        return env.get(key)

    return get
