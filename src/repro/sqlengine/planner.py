"""Query planner: turns a parsed SELECT statement into an operator tree.

The planner performs the optimisations a relational engine needs for the
paper's workload:

* **slot assignment**: every published column gets a positional slot (one
  contiguous range per FROM-clause binding); expressions compile to slot
  reads and operators pass positional rows — no per-row dictionaries,
* predicate pushdown of single-table conjuncts onto their scans,
* index selection for equality predicates on indexed columns,
* equi-join detection with a choice of index nested-loop join or hash join,
* **cost-based join ordering** driven by table statistics (live row counts
  and incremental per-index distinct-key counts from
  :meth:`repro.sqlengine.storage.TableData.statistics`): the planner
  estimates access-path and join cardinalities, orders joins by estimated
  cost and picks the physical join operator the estimates favour,
* sort / limit / distinct handling and ungrouped aggregates
  (COUNT/SUM/MIN/MAX/AVG).

Every operator is annotated with its estimated row count and cumulative
cost; ``EXPLAIN`` (and :meth:`SelectPlan.explain`) print them per node.
Planner behaviour can be tuned via :class:`PlannerOptions`; the ablation
benchmarks exercise those switches, and ``use_cost_model=False`` falls back
to the statistics-free greedy join order of the earlier engine (the
equivalence property tests compare the two).  One layer up, the *logical*
query-tree optimizer has the matching ablation switch
``repro.core.optimizer.OptimizerOptions(optimize=False)``, which restores
the unoptimized SQL (full-entity-width SELECT lists, un-normalized
predicates) of the bare rewriting pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog, TableSchema
from repro.sqlengine.columnar import (
    DEFAULT_BATCH_SIZE,
    BatchAggregate,
    BatchFilter,
    BatchHashJoin,
    BatchOperator,
    BatchOutput,
    BatchScan,
    BatchSort,
    ColumnarMetrics,
    compile_columnwise,
)
from repro.sqlengine.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.expressions import (
    Evaluator,
    ExpressionCompiler,
    collect_column_refs,
    split_conjuncts,
)
from repro.sqlengine.indexes import Index
from repro.sqlengine.operators import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    IndexLookupScan,
    IndexNestedLoopJoin,
    IndexOrLookupJoin,
    Limit,
    NestedLoopJoin,
    PlanOperator,
    Project,
    SeqScan,
    Sort,
)
from repro.sqlengine.storage import TableData

#: Aggregate functions the ungrouped-aggregate path supports.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "MIN", "MAX", "AVG"})

# Default selectivities for predicates the statistics cannot estimate.
_EQUALITY_SELECTIVITY = 0.1
_RANGE_SELECTIVITY = 1.0 / 3.0
_LIKE_SELECTIVITY = 0.25
_NOT_EQUAL_SELECTIVITY = 0.9
_DEFAULT_SELECTIVITY = 0.5

#: In ``execution_mode="auto"`` a query only goes columnar when the tables
#: it scans hold at least this many rows combined — below it, per-batch
#: setup costs more than row-at-a-time saves.
_BATCH_ROW_THRESHOLD = 256

#: Valid values of :attr:`PlannerOptions.execution_mode`.
_EXECUTION_MODES = ("auto", "row", "batch")


class _BatchUnsupported(Exception):
    """Internal: the statement's shape has no batch equivalent (cross
    joins, index-OR joins); the caller falls back to the row planner."""


@dataclass
class PlannerOptions:
    """Switches controlling which access paths the planner may use."""

    use_indexes: bool = True
    use_index_nested_loop_join: bool = True
    use_hash_join: bool = True
    #: When False, join order falls back to the statistics-free greedy
    #: heuristic (first binding with an indexed equality, then the first
    #: connecting predicate) used before the cost model existed.
    use_cost_model: bool = True
    #: Vectorized execution: ``auto`` lets a cost/shape heuristic pick
    #: batch or row execution per query, ``batch`` forces batch whenever
    #: the shape supports it (ablation), ``row`` disables it.
    execution_mode: str = "auto"
    #: Row slots per column batch in batch execution.
    batch_size: int = DEFAULT_BATCH_SIZE

    def cache_key(self) -> tuple:
        """Hashable identity of these options for the plan cache."""
        return (
            self.use_indexes,
            self.use_index_nested_loop_join,
            self.use_hash_join,
            self.use_cost_model,
            self.execution_mode,
            self.batch_size,
        )


@dataclass
class SelectPlan:
    """A planned SELECT: the operator tree plus its output column names.

    ``stats_snapshot`` records each referenced table's live row count at
    planning time; the engine's plan cache compares it against current
    counts and replans when the statistics have drifted too far.
    """

    root: PlanOperator
    column_names: list[str]
    stats_snapshot: dict[str, int] = field(default_factory=dict)
    #: Chosen execution mode (``row`` or ``batch``) and, for batch plans,
    #: the batch size; EXPLAIN reports both.
    mode: str = "row"
    batch_size: Optional[int] = None

    def explain(self, annotate=None) -> str:
        """Human-readable plan tree with per-node estimated rows/cost.
        ``annotate`` is forwarded to the operators (EXPLAIN ANALYZE)."""
        if self.mode == "batch":
            header = f"mode=batch (batch_size={self.batch_size})"
        else:
            header = "mode=row"
        return header + "\n" + self.root.explain(annotate=annotate)


@dataclass
class _Binding:
    """One FROM-clause entry resolved against the catalog."""

    name: str
    schema: TableSchema
    data: TableData
    conjuncts: list[ast.Expression] = field(default_factory=list)
    #: First slot of this binding's columns in the query's row layout.
    slot_start: int = 0
    #: Memoised access-path estimate: bindings, conjuncts and statistics
    #: are fixed for the duration of one plan_select pass, and the estimate
    #: is consulted once per candidate per join round.
    access_estimate: Optional["_AccessEstimate"] = None


@dataclass
class _AccessEstimate:
    """Estimated behaviour of the best single-table access path."""

    index: Optional[Index]
    consumed: list[ast.Expression]
    rows_scan: float
    cost: float
    rows_out: float
    #: The equality conjuncts backing ``index`` (column → (conjunct, value
    #: expression)); _plan_scan compiles the key expressions from these.
    equalities: dict[str, tuple[ast.Expression, ast.Expression]] = field(
        default_factory=dict
    )


@dataclass
class _JoinCandidate:
    """One joinable binding with the equi-join predicates connecting it."""

    build: str
    conjuncts: list[ast.Expression]
    probe_refs: list[ast.ColumnRef]
    build_refs: list[ast.ColumnRef]


class Planner:
    """Plans SELECT statements against a catalog and its table data."""

    def __init__(
        self,
        catalog: Catalog,
        tables: dict[str, TableData],
        options: PlannerOptions | None = None,
        metrics: ColumnarMetrics | None = None,
    ) -> None:
        self._catalog = catalog
        self._tables = tables
        self._options = options or PlannerOptions()
        self._metrics = metrics if metrics is not None else ColumnarMetrics()

    # -- public API ----------------------------------------------------------

    def plan_select(self, statement: ast.SelectStatement) -> SelectPlan:
        """Build an executable plan for ``statement``."""
        if self._options.execution_mode not in _EXECUTION_MODES:
            raise SqlExecutionError(
                f"unknown execution_mode {self._options.execution_mode!r} "
                f"(expected one of {', '.join(_EXECUTION_MODES)})"
            )
        bindings = self._resolve_bindings(statement)
        slot_map, width = self._assign_slots(bindings)
        compiler = ExpressionCompiler(self._make_resolver(bindings, slot_map))

        join_conjuncts: list[ast.Expression] = []
        residual_conjuncts: list[ast.Expression] = []
        for conjunct in split_conjuncts(statement.where):
            used = self._bindings_used(conjunct, bindings)
            if len(used) <= 1:
                if used:
                    bindings[next(iter(used))].conjuncts.append(conjunct)
                else:
                    residual_conjuncts.append(conjunct)
            elif len(used) == 2 and self._is_equi_join(conjunct, bindings):
                join_conjuncts.append(conjunct)
            else:
                residual_conjuncts.append(conjunct)

        snapshot = {
            binding.schema.name.lower(): len(binding.data)
            for binding in bindings.values()
        }

        batch_plan = self._maybe_plan_batch(
            statement,
            bindings,
            join_conjuncts,
            residual_conjuncts,
            compiler,
            slot_map,
        )
        if batch_plan is not None:
            batch_plan.stats_snapshot = snapshot
            return batch_plan

        root = self._plan_joins(
            bindings, join_conjuncts, residual_conjuncts, compiler, width
        )

        aggregate_plan = self._maybe_plan_aggregate(statement, root, compiler)
        if aggregate_plan is not None:
            aggregate_plan.stats_snapshot = snapshot
            return aggregate_plan

        if statement.order_by:
            keys = [
                (compiler.compile(item.expression), item.descending)
                for item in statement.order_by
            ]
            root = self._annotated(
                Sort(root, keys), root.estimated_rows, _sort_cost(root)
            )

        columns, slots = self._output_columns(statement, bindings, compiler, slot_map)
        root = self._annotated(
            Project(root, columns, slots), root.estimated_rows, root.estimated_cost
        )
        column_names = [name for name, _ in columns]

        if statement.distinct:
            root = self._annotated(
                Distinct(root), root.estimated_rows, root.estimated_cost
            )

        if statement.limit is not None or statement.offset is not None:
            limit = compiler.compile(statement.limit) if statement.limit else None
            offset = compiler.compile(statement.offset) if statement.offset else None
            root = self._annotated(
                Limit(root, limit, offset), root.estimated_rows, root.estimated_cost
            )

        return SelectPlan(
            root=root, column_names=column_names, stats_snapshot=snapshot
        )

    # -- binding resolution ---------------------------------------------------

    def _resolve_bindings(
        self, statement: ast.SelectStatement
    ) -> dict[str, _Binding]:
        bindings: dict[str, _Binding] = {}
        for table_ref in statement.tables:
            schema = self._catalog.table(table_ref.table)
            data = self._tables[schema.name.lower()]
            name = table_ref.binding.lower()
            if name in bindings:
                raise SqlCatalogError(f"duplicate table alias {table_ref.binding!r}")
            bindings[name] = _Binding(name=name, schema=schema, data=data)
        return bindings

    def _assign_slots(
        self, bindings: dict[str, _Binding]
    ) -> tuple[dict[str, int], int]:
        """Give every published column a positional slot.

        Each binding's columns occupy a contiguous slot range (so scans and
        joins can write whole stored rows with one slice assignment); bare
        column names that are unambiguous across the FROM clause alias the
        same slot as their qualified form.
        """
        counts: dict[str, int] = {}
        for binding in bindings.values():
            for column in binding.schema.column_names:
                key = column.lower()
                counts[key] = counts.get(key, 0) + 1
        slot_map: dict[str, int] = {}
        width = 0
        for binding in bindings.values():
            binding.slot_start = width
            for position, column in enumerate(binding.schema.column_names):
                lowered = column.lower()
                slot = width + position
                slot_map[f"{binding.name}.{lowered}"] = slot
                if counts[lowered] == 1:
                    slot_map[lowered] = slot
            width += len(binding.schema.columns)
        return slot_map, width

    def _make_resolver(
        self, bindings: dict[str, _Binding], slot_map: dict[str, int]
    ):
        def resolve(ref: ast.ColumnRef) -> int:
            key, _ = self._resolve_column(ref, bindings)
            return slot_map[key]

        return resolve

    def _resolve_column(
        self, ref: ast.ColumnRef, bindings: dict[str, _Binding]
    ) -> tuple[str, str]:
        """Resolve a column reference to (canonical key, binding name)."""
        if ref.table is not None:
            name = ref.table.lower()
            if name not in bindings:
                raise SqlCatalogError(f"unknown table alias {ref.table!r}")
            binding = bindings[name]
            if not binding.schema.has_column(ref.column):
                raise SqlCatalogError(
                    f"table {binding.schema.name!r} has no column {ref.column!r}"
                )
            return f"{name}.{ref.column.lower()}", name
        matches = [
            name
            for name, binding in bindings.items()
            if binding.schema.has_column(ref.column)
        ]
        if not matches:
            raise SqlCatalogError(f"unknown column {ref.column!r}")
        if len(matches) > 1:
            raise SqlCatalogError(f"ambiguous column {ref.column!r}")
        return f"{matches[0]}.{ref.column.lower()}", matches[0]

    def _bindings_used(
        self, expression: ast.Expression, bindings: dict[str, _Binding]
    ) -> set[str]:
        used: set[str] = set()
        for ref in collect_column_refs(expression):
            _, binding = self._resolve_column(ref, bindings)
            used.add(binding)
        return used

    @staticmethod
    def _is_equi_join(
        expression: ast.Expression, bindings: dict[str, _Binding]
    ) -> bool:
        return (
            isinstance(expression, ast.BinaryOp)
            and expression.op == "="
            and isinstance(expression.left, ast.ColumnRef)
            and isinstance(expression.right, ast.ColumnRef)
        )

    # -- statistics and cost estimation ---------------------------------------

    def _collect_equalities(
        self, binding: _Binding
    ) -> dict[str, tuple[ast.Expression, ast.Expression]]:
        """Equality conjuncts of the form ``binding.column = <const/param>``,
        keyed by lower-cased column name."""
        equalities: dict[str, tuple[ast.Expression, ast.Expression]] = {}
        for conjunct in binding.conjuncts:
            column_and_value = self._extract_column_equality(conjunct, binding)
            if column_and_value is not None:
                column, value_expr = column_and_value
                equalities.setdefault(column.lower(), (conjunct, value_expr))
        return equalities

    @staticmethod
    def _matching_index(
        binding: _Binding,
        equalities: dict[str, tuple[ast.Expression, ast.Expression]],
    ) -> Optional[Index]:
        """The first index whose columns are fully covered by equalities."""
        for index in binding.data.indexes().values():
            if all(column.lower() in equalities for column in index.columns):
                return index
        return None

    def _estimate_access(self, binding: _Binding) -> _AccessEstimate:
        """Estimate the access path :meth:`_plan_scan` would build
        (memoised on the binding for the current planning pass)."""
        if binding.access_estimate is not None:
            return binding.access_estimate
        rows = float(len(binding.data))
        index: Optional[Index] = None
        consumed: list[ast.Expression] = []
        equalities: dict[str, tuple[ast.Expression, ast.Expression]] = {}
        if self._options.use_indexes:
            equalities = self._collect_equalities(binding)
            if equalities:
                index = self._matching_index(binding, equalities)
        if index is not None:
            distinct = binding.data.index_distinct(index.name) or 1
            rows_scan = rows / max(1.0, float(distinct))
            cost = max(1.0, rows_scan)
            consumed = [
                equalities[column.lower()][0] for column in index.columns
            ]
        else:
            rows_scan = rows
            cost = max(1.0, rows)
        rows_out = rows_scan
        for conjunct in binding.conjuncts:
            if conjunct in consumed:
                continue
            rows_out *= self._selectivity(binding, conjunct)
        binding.access_estimate = _AccessEstimate(
            index=index,
            consumed=consumed,
            rows_scan=rows_scan,
            cost=cost,
            rows_out=rows_out,
            equalities=equalities,
        )
        return binding.access_estimate

    def _selectivity(self, binding: _Binding, conjunct: ast.Expression) -> float:
        """Fraction of rows a pushed-down predicate is estimated to keep."""
        if isinstance(conjunct, ast.BinaryOp):
            op = conjunct.op
            if op == "=":
                column_and_value = self._extract_column_equality(conjunct, binding)
                if column_and_value is not None:
                    distinct = binding.data.column_distinct(column_and_value[0])
                    if distinct:
                        return 1.0 / float(distinct)
                return _EQUALITY_SELECTIVITY
            if op in ("<", "<=", ">", ">="):
                return _RANGE_SELECTIVITY
            if op == "LIKE":
                return _LIKE_SELECTIVITY
            if op in ("!=", "<>"):
                return _NOT_EQUAL_SELECTIVITY
        if isinstance(conjunct, ast.IsNull):
            if conjunct.negated:
                return 1.0 - _EQUALITY_SELECTIVITY
            return _EQUALITY_SELECTIVITY
        if isinstance(conjunct, ast.InList):
            kept = min(1.0, len(conjunct.items) * _EQUALITY_SELECTIVITY)
            return 1.0 - kept if conjunct.negated else kept
        return _DEFAULT_SELECTIVITY

    def _estimate_join(
        self,
        left_rows: float,
        left_cost: float,
        binding: _Binding,
        build_refs: list[ast.ColumnRef],
    ) -> tuple[float, Optional[float], Optional[float], float]:
        """Estimate (output rows, index-NL cost, hash cost, NL cost) for
        joining the current tree with ``binding`` on ``build_refs``."""
        access = self._estimate_access(binding)
        rows = float(len(binding.data))
        build_columns = tuple(ref.column for ref in build_refs)
        index = binding.data.find_equality_index(build_columns)
        distinct: Optional[int] = None
        if index is not None:
            distinct = binding.data.index_distinct(index.name)
        elif len(build_columns) == 1:
            distinct = binding.data.column_distinct(build_columns[0])
        distinct_f = float(distinct) if distinct else max(1.0, access.rows_out)
        join_rows = left_rows * access.rows_out / max(1.0, distinct_f)
        cost_index_join: Optional[float] = None
        if (
            index is not None
            and not binding.conjuncts
            and self._options.use_indexes
            and self._options.use_index_nested_loop_join
        ):
            matches_per_probe = rows / max(1.0, distinct_f)
            cost_index_join = left_cost + left_rows * (1.0 + matches_per_probe)
        cost_hash: Optional[float] = None
        if self._options.use_hash_join:
            cost_hash = left_cost + access.cost + access.rows_out + left_rows
        cost_nested = left_cost + access.cost + left_rows * max(1.0, access.rows_out)
        return join_rows, cost_index_join, cost_hash, cost_nested

    @staticmethod
    def _annotated(
        operator: PlanOperator, rows: Optional[float], cost: Optional[float]
    ) -> PlanOperator:
        operator.estimated_rows = rows
        operator.estimated_cost = cost
        return operator

    # -- scans ---------------------------------------------------------------

    def _plan_scan(
        self,
        binding: _Binding,
        compiler: ExpressionCompiler,
        width: int,
    ) -> PlanOperator:
        """Plan the access path for a single table, honouring its pushed-down
        conjuncts (index lookup when possible, otherwise scan + filter)."""
        access = self._estimate_access(binding)
        remaining = list(binding.conjuncts)
        scan: PlanOperator
        if access.index is not None:
            key_evaluators = [
                compiler.compile(access.equalities[column.lower()][1])
                for column in access.index.columns
            ]
            scan = IndexLookupScan(
                binding.data,
                binding.name,
                width,
                binding.slot_start,
                access.index.name,
                key_evaluators,
            )
            remaining = [c for c in remaining if c not in access.consumed]
        else:
            scan = SeqScan(binding.data, binding.name, width, binding.slot_start)
        self._annotated(scan, access.rows_scan, access.cost)
        rows = access.rows_scan
        for conjunct in remaining:
            rows *= self._selectivity(binding, conjunct)
            scan = self._annotated(
                Filter(scan, compiler.compile(conjunct), label=binding.name),
                rows,
                access.cost,
            )
        return scan

    def _extract_column_equality(
        self, conjunct: ast.Expression, binding: _Binding
    ) -> Optional[tuple[str, ast.Expression]]:
        """If ``conjunct`` is ``binding.column = <constant or parameter>``,
        return (column, value expression)."""
        if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
            return None
        left, right = conjunct.left, conjunct.right
        for column_side, value_side in ((left, right), (right, left)):
            if not isinstance(column_side, ast.ColumnRef):
                continue
            if collect_column_refs(value_side):
                continue
            if column_side.table is not None and column_side.table.lower() != binding.name:
                continue
            if not binding.schema.has_column(column_side.column):
                continue
            return column_side.column, value_side
        return None

    # -- joins ----------------------------------------------------------------

    def _plan_joins(
        self,
        bindings: dict[str, _Binding],
        join_conjuncts: list[ast.Expression],
        residual_conjuncts: list[ast.Expression],
        compiler: ExpressionCompiler,
        width: int,
    ) -> PlanOperator:
        order = list(bindings)
        cost_mode = self._options.use_cost_model

        def start_rank(name: str):
            access = self._estimate_access(bindings[name])
            if cost_mode:
                return (access.rows_out, order.index(name))
            # Statistics-free heuristic: prefer a binding with an indexed
            # equality, breaking ties by FROM-clause order.
            return (0 if access.index is not None else 1, order.index(name))

        start = min(order, key=start_rank)
        joined = {start}
        current = self._plan_scan(bindings[start], compiler, width)
        pending = list(join_conjuncts)

        while len(joined) < len(bindings):
            candidates = self._join_candidates(
                pending, bindings, joined, residual_conjuncts
            )
            if candidates:
                if cost_mode:
                    left_rows = current.estimated_rows or 1.0
                    left_cost = current.estimated_cost or 0.0

                    def candidate_cost(candidate: _JoinCandidate):
                        _, cost_index, cost_hash, cost_nested = self._estimate_join(
                            left_rows, left_cost,
                            bindings[candidate.build], candidate.build_refs,
                        )
                        costs = [
                            c for c in (cost_index, cost_hash, cost_nested)
                            if c is not None
                        ]
                        return (min(costs), order.index(candidate.build))

                    best = min(candidates, key=candidate_cost)
                else:
                    best = candidates[0]
                for conjunct in best.conjuncts:
                    pending.remove(conjunct)
                current = self._join_binding(
                    current,
                    bindings[best.build],
                    best.probe_refs,
                    best.build_refs,
                    compiler,
                    width,
                )
                joined.add(best.build)
                continue
            # No equi-join predicate connects the remaining tables.  Try a
            # disjunction of indexed equalities (PostgreSQL-style index OR),
            # otherwise fall back to a cross join.
            for name in order:
                if name in joined:
                    continue
                binding = bindings[name]
                or_join = self._try_index_or_join(
                    current, binding, bindings, joined,
                    residual_conjuncts, compiler, width,
                )
                if or_join is not None:
                    current = or_join
                else:
                    right = self._plan_scan(binding, compiler, width)
                    rows = (current.estimated_rows or 1.0) * (
                        right.estimated_rows or 1.0
                    )
                    cost = (
                        (current.estimated_cost or 0.0)
                        + (right.estimated_cost or 0.0)
                        + rows
                    )
                    slot_range = (
                        binding.slot_start,
                        binding.slot_start + len(binding.schema.columns),
                    )
                    current = self._annotated(
                        NestedLoopJoin(current, right, slot_range), rows, cost
                    )
                joined.add(name)
                break

        for conjunct in residual_conjuncts:
            rows = (current.estimated_rows or 1.0) * _DEFAULT_SELECTIVITY
            current = self._annotated(
                Filter(current, compiler.compile(conjunct), label="residual"),
                rows,
                current.estimated_cost,
            )
        return current

    def _join_candidates(
        self,
        pending: list[ast.Expression],
        bindings: dict[str, _Binding],
        joined: set[str],
        residual_conjuncts: list[ast.Expression],
    ) -> list[_JoinCandidate]:
        """Group pending equi-join predicates by the unjoined binding they
        would bring in (in first-connecting order, which the greedy mode
        uses verbatim).  Predicates whose sides are both already joined are
        moved to the residual list."""
        candidates: dict[str, _JoinCandidate] = {}
        for conjunct in list(pending):
            assert isinstance(conjunct, ast.BinaryOp)
            left_ref = conjunct.left
            right_ref = conjunct.right
            assert isinstance(left_ref, ast.ColumnRef)
            assert isinstance(right_ref, ast.ColumnRef)
            _, left_binding = self._resolve_column(left_ref, bindings)
            _, right_binding = self._resolve_column(right_ref, bindings)
            if left_binding in joined and right_binding in joined:
                pending.remove(conjunct)
                residual_conjuncts.append(conjunct)
                continue
            if left_binding in joined and right_binding not in joined:
                probe_ref, build_ref, build = left_ref, right_ref, right_binding
            elif right_binding in joined and left_binding not in joined:
                probe_ref, build_ref, build = right_ref, left_ref, left_binding
            else:
                continue
            candidate = candidates.get(build)
            if candidate is None:
                candidate = candidates[build] = _JoinCandidate(
                    build=build, conjuncts=[], probe_refs=[], build_refs=[]
                )
            candidate.conjuncts.append(conjunct)
            candidate.probe_refs.append(probe_ref)
            candidate.build_refs.append(build_ref)
        return list(candidates.values())

    def _try_index_or_join(
        self,
        left: PlanOperator,
        binding: _Binding,
        bindings: dict[str, _Binding],
        joined: set[str],
        residual_conjuncts: list[ast.Expression],
        compiler: ExpressionCompiler,
        width: int,
    ) -> Optional[PlanOperator]:
        """Join ``binding`` through a disjunction of indexed equalities.

        Looks for a residual conjunct of the form ``a1 = B.c1 OR a2 = B.c2
        OR ...`` where every ``ai`` only references already-joined bindings
        (or parameters) and every ``B.ci`` has an index.  The conjunct is
        consumed and replaced by per-disjunct index probes plus a residual
        re-check.
        """
        if not (self._options.use_indexes and self._options.use_index_nested_loop_join):
            return None
        if binding.conjuncts:
            return None
        for conjunct in list(residual_conjuncts):
            disjuncts = _split_disjuncts(conjunct)
            if len(disjuncts) < 2:
                continue
            probes: list[tuple[str, Evaluator]] = []
            for disjunct in disjuncts:
                probe = self._or_probe(disjunct, binding, joined, bindings, compiler)
                if probe is None:
                    probes = []
                    break
                probes.append(probe)
            if not probes:
                continue
            residual_conjuncts.remove(conjunct)
            residual = compiler.compile(conjunct)
            left_rows = left.estimated_rows or 1.0
            rows = left_rows * len(probes)
            cost = (left.estimated_cost or 0.0) + left_rows * len(probes)
            return self._annotated(
                IndexOrLookupJoin(
                    left,
                    binding.data,
                    binding.name,
                    binding.slot_start,
                    probes,
                    residual,
                ),
                rows,
                cost,
            )
        return None

    def _or_probe(
        self,
        disjunct: ast.Expression,
        binding: _Binding,
        joined: set[str],
        bindings: dict[str, _Binding],
        compiler: ExpressionCompiler,
    ) -> Optional[tuple[str, Evaluator]]:
        """If ``disjunct`` is ``<outer expr> = binding.column`` with an index
        on ``column``, return (index name, key evaluator over the left row)."""
        if not isinstance(disjunct, ast.BinaryOp) or disjunct.op != "=":
            return None
        for column_side, value_side in (
            (disjunct.left, disjunct.right),
            (disjunct.right, disjunct.left),
        ):
            if not isinstance(column_side, ast.ColumnRef):
                continue
            _, column_binding = self._resolve_column(column_side, bindings)
            if column_binding != binding.name:
                continue
            value_bindings = {
                self._resolve_column(ref, bindings)[1]
                for ref in collect_column_refs(value_side)
            }
            if not value_bindings <= joined:
                continue
            index = binding.data.find_equality_index((column_side.column,))
            if index is None:
                continue
            return index.name, compiler.compile(value_side)
        return None

    def _join_binding(
        self,
        left: PlanOperator,
        build_binding: _Binding,
        probe_refs: list[ast.ColumnRef],
        build_refs: list[ast.ColumnRef],
        compiler: ExpressionCompiler,
        width: int,
    ) -> PlanOperator:
        """Join ``left`` with ``build_binding`` on the given key columns,
        letting the cost estimates choose the physical operator."""
        probe_evaluators = [compiler.compile(ref) for ref in probe_refs]
        build_columns = tuple(ref.column for ref in build_refs)
        left_rows = left.estimated_rows or 1.0
        left_cost = left.estimated_cost or 0.0
        join_rows, cost_index_join, cost_hash, cost_nested = self._estimate_join(
            left_rows, left_cost, build_binding, build_refs
        )
        slot_range = (
            build_binding.slot_start,
            build_binding.slot_start + len(build_binding.schema.columns),
        )

        use_index_join = cost_index_join is not None
        if (
            use_index_join
            and self._options.use_cost_model
            and cost_hash is not None
            and cost_hash < cost_index_join
        ):
            use_index_join = False
        if use_index_join:
            index = build_binding.data.find_equality_index(build_columns)
            assert index is not None
            # Reorder probe keys to match the index column order.
            ordered_probe: list[Evaluator] = []
            for index_column in index.columns:
                for probe_evaluator, build_ref in zip(probe_evaluators, build_refs):
                    if build_ref.column.lower() == index_column.lower():
                        ordered_probe.append(probe_evaluator)
                        break
            if len(ordered_probe) == len(index.columns):
                return self._annotated(
                    IndexNestedLoopJoin(
                        left,
                        build_binding.data,
                        build_binding.name,
                        build_binding.slot_start,
                        index.name,
                        ordered_probe,
                    ),
                    join_rows,
                    cost_index_join,
                )

        right = self._plan_scan(build_binding, compiler, width)
        if self._options.use_hash_join:
            build_evaluators = [compiler.compile(ref) for ref in build_refs]
            return self._annotated(
                HashJoin(
                    left, right, probe_evaluators, build_evaluators, slot_range
                ),
                join_rows,
                cost_hash if cost_hash is not None else cost_nested,
            )
        predicate_ast: ast.Expression | None = None
        for probe_ref, build_ref in zip(probe_refs, build_refs):
            equality = ast.BinaryOp("=", probe_ref, build_ref)
            predicate_ast = (
                equality
                if predicate_ast is None
                else ast.BinaryOp("AND", predicate_ast, equality)
            )
        predicate = compiler.compile(predicate_ast) if predicate_ast else None
        return self._annotated(
            NestedLoopJoin(left, right, slot_range, predicate),
            join_rows,
            cost_nested,
        )

    # -- batch (vectorized) planning ------------------------------------------

    def _maybe_plan_batch(
        self,
        statement: ast.SelectStatement,
        bindings: dict[str, _Binding],
        join_conjuncts: list[ast.Expression],
        residual_conjuncts: list[ast.Expression],
        compiler: ExpressionCompiler,
        slot_map: dict[str, int],
    ) -> Optional[SelectPlan]:
        """Try to plan ``statement`` with the columnar batch operators.

        Returns None when the options or the cost/shape heuristic say row
        mode, or when the statement's shape has no batch equivalent — the
        caller then continues down the row planner, which also re-raises
        any genuine validation error identically (which is why planning
        errors are swallowed here rather than propagated).
        """
        mode = self._options.execution_mode
        if mode == "row":
            return None
        if mode == "auto":
            # Heuristic: batch execution pays off on scans, not point
            # lookups — any usable index lookup keeps the query row-mode,
            # as do small tables (batch setup costs more than it saves).
            total_rows = 0
            for binding in bindings.values():
                access = self._estimate_access(binding)
                if access.index is not None:
                    return None
                total_rows += len(binding.data)
            if total_rows < _BATCH_ROW_THRESHOLD:
                return None
        try:
            return self._plan_batch(
                statement,
                bindings,
                list(join_conjuncts),
                list(residual_conjuncts),
                compiler,
                slot_map,
            )
        except (_BatchUnsupported, SqlCatalogError, SqlExecutionError):
            return None

    def _required_slots(
        self,
        statement: ast.SelectStatement,
        bindings: dict[str, _Binding],
        slot_map: dict[str, int],
    ) -> dict[str, set[int]]:
        """Per-binding slot sets the query output and sort keys reference
        (projection pushdown: the batch scan reads only these columns; the
        caller adds the slots its predicates and join keys need)."""
        required: dict[str, set[int]] = {name: set() for name in bindings}

        def add_ref(ref: ast.ColumnRef) -> None:
            key, name = self._resolve_column(ref, bindings)
            required[name].add(slot_map[key])

        def add_all(binding: _Binding) -> None:
            required[binding.name].update(
                range(
                    binding.slot_start,
                    binding.slot_start + len(binding.schema.columns),
                )
            )

        for item in statement.items:
            if item.star:
                for binding in bindings.values():
                    add_all(binding)
            elif item.table_star is not None:
                name = item.table_star.lower()
                if name not in bindings:
                    raise SqlCatalogError(
                        f"unknown table alias {item.table_star!r}"
                    )
                add_all(bindings[name])
            else:
                assert item.expression is not None
                for ref in collect_column_refs(item.expression):
                    add_ref(ref)
        for order_item in statement.order_by or ():
            for ref in collect_column_refs(order_item.expression):
                add_ref(ref)
        for binding in bindings.values():
            for conjunct in binding.conjuncts:
                for ref in collect_column_refs(conjunct):
                    add_ref(ref)
        return required

    def _plan_batch(
        self,
        statement: ast.SelectStatement,
        bindings: dict[str, _Binding],
        pending: list[ast.Expression],
        residual: list[ast.Expression],
        compiler: ExpressionCompiler,
        slot_map: dict[str, int],
    ) -> SelectPlan:
        """Build the batch plan: column scans with projection/selection
        pushdown, batch hash joins in the cost model's join order, then the
        batch aggregate/sort/output roots.  Estimates mirror the row
        planner's (same access/join estimators), so EXPLAIN cardinalities
        are identical across modes."""
        options = self._options
        order = list(bindings)
        cost_mode = options.use_cost_model

        def resolve_slot(ref: ast.ColumnRef) -> int:
            key, _ = self._resolve_column(ref, bindings)
            return slot_map[key]

        required = self._required_slots(statement, bindings, slot_map)
        for conjunct in pending + residual:
            for ref in collect_column_refs(conjunct):
                key, name = self._resolve_column(ref, bindings)
                required[name].add(slot_map[key])

        def batch_chain(binding: _Binding) -> BatchOperator:
            """Scan one binding: pushed-down columnwise predicates inside
            the BatchScan, the non-vectorisable rest as BatchFilters."""
            access = self._estimate_access(binding)
            slots = sorted(required[binding.name])
            positions = [slot - binding.slot_start for slot in slots]
            pushed: list[tuple[ast.Expression, object]] = []
            rowwise: list[ast.Expression] = []
            for conjunct in binding.conjuncts:
                predicate = compile_columnwise(conjunct, resolve_slot, compiler)
                if predicate is not None:
                    pushed.append((conjunct, predicate))
                else:
                    rowwise.append(conjunct)
            rows = float(len(binding.data))
            # Cost parity with the row planner's scan chain (join ordering
            # compares these): use the access-path estimate even though a
            # batch scan always reads the whole column arrays.
            cost = access.cost
            scan: BatchOperator = BatchScan(
                binding.data,
                binding.name,
                positions,
                slots,
                options.batch_size,
                [predicate for _, predicate in pushed],
                self._metrics,
            )
            for conjunct, _ in pushed:
                rows *= self._selectivity(binding, conjunct)
            current = self._annotated(scan, rows, cost)
            for conjunct in rowwise:
                rows *= self._selectivity(binding, conjunct)
                current = self._annotated(
                    BatchFilter(
                        current, compiler.compile(conjunct), label=binding.name
                    ),
                    rows,
                    cost,
                )
            # Parity with the row planner: whatever the multiplication
            # order above produced, the chain's final estimate is the
            # access path's (bit-identical to row mode's scan chain).
            current.estimated_rows = access.rows_out
            return current  # type: ignore[return-value]

        def start_rank(name: str):
            access = self._estimate_access(bindings[name])
            if cost_mode:
                return (access.rows_out, order.index(name))
            return (0 if access.index is not None else 1, order.index(name))

        start = min(order, key=start_rank)
        joined = {start}
        current = batch_chain(bindings[start])
        current_slots = set(required[start])

        while len(joined) < len(bindings):
            candidates = self._join_candidates(
                pending, bindings, joined, residual
            )
            if not candidates:
                # Cross joins and index-OR joins have no batch equivalent.
                raise _BatchUnsupported
            if cost_mode:
                left_rows = current.estimated_rows or 1.0
                left_cost = current.estimated_cost or 0.0

                def candidate_cost(candidate: _JoinCandidate):
                    _, cost_index, cost_hash, cost_nested = self._estimate_join(
                        left_rows, left_cost,
                        bindings[candidate.build], candidate.build_refs,
                    )
                    costs = [
                        c for c in (cost_index, cost_hash, cost_nested)
                        if c is not None
                    ]
                    return (min(costs), order.index(candidate.build))

                best = min(candidates, key=candidate_cost)
            else:
                best = candidates[0]
            for conjunct in best.conjuncts:
                pending.remove(conjunct)
            build_binding = bindings[best.build]
            join_rows, _, cost_hash, cost_nested = self._estimate_join(
                current.estimated_rows or 1.0,
                current.estimated_cost or 0.0,
                build_binding,
                best.build_refs,
            )
            probe_slots = [resolve_slot(ref) for ref in best.probe_refs]
            build_slots = [resolve_slot(ref) for ref in best.build_refs]
            current = self._annotated(
                BatchHashJoin(
                    current,
                    batch_chain(build_binding),
                    probe_slots,
                    build_slots,
                    sorted(current_slots),
                    sorted(required[best.build]),
                ),
                join_rows,
                cost_hash if cost_hash is not None else cost_nested,
            )  # type: ignore[assignment]
            current_slots |= required[best.build]
            joined.add(best.build)

        for conjunct in residual:
            rows = (current.estimated_rows or 1.0) * _DEFAULT_SELECTIVITY
            current = self._annotated(
                BatchFilter(current, compiler.compile(conjunct), label="residual"),
                rows,
                current.estimated_cost,
            )  # type: ignore[assignment]

        specs = self._aggregate_specs(statement)
        if specs is not None:
            batch_specs: list[
                tuple[str, str, Optional[int], Optional[Evaluator]]
            ] = []
            for name, function, arg in specs:
                if arg is None:
                    batch_specs.append((name, function, None, None))
                elif isinstance(arg, ast.ColumnRef):
                    batch_specs.append((name, function, resolve_slot(arg), None))
                else:
                    batch_specs.append(
                        (name, function, None, compiler.compile(arg))
                    )
            root: PlanOperator = self._annotated(
                BatchAggregate(current, batch_specs), 1.0, current.estimated_cost
            )
            return SelectPlan(
                root=root,
                column_names=[name for name, _, _ in specs],
                mode="batch",
                batch_size=options.batch_size,
            )

        if statement.order_by:
            keys: list[tuple[Optional[int], Optional[Evaluator], bool]] = []
            for order_item in statement.order_by:
                if isinstance(order_item.expression, ast.ColumnRef):
                    keys.append(
                        (
                            resolve_slot(order_item.expression),
                            None,
                            order_item.descending,
                        )
                    )
                else:
                    keys.append(
                        (
                            None,
                            compiler.compile(order_item.expression),
                            order_item.descending,
                        )
                    )
            current = self._annotated(
                BatchSort(current, keys),
                current.estimated_rows,
                _sort_cost(current),
            )  # type: ignore[assignment]

        columns, slots = self._output_columns(statement, bindings, compiler, slot_map)
        root = self._annotated(
            BatchOutput(current, columns, slots),
            current.estimated_rows,
            current.estimated_cost,
        )
        column_names = [name for name, _ in columns]

        if statement.distinct:
            root = self._annotated(
                Distinct(root), root.estimated_rows, root.estimated_cost
            )
        if statement.limit is not None or statement.offset is not None:
            limit = compiler.compile(statement.limit) if statement.limit else None
            offset = compiler.compile(statement.offset) if statement.offset else None
            root = self._annotated(
                Limit(root, limit, offset), root.estimated_rows, root.estimated_cost
            )
        return SelectPlan(
            root=root,
            column_names=column_names,
            mode="batch",
            batch_size=options.batch_size,
        )

    # -- output columns -------------------------------------------------------

    def _aggregate_specs(
        self, statement: ast.SelectStatement
    ) -> Optional[list[tuple[str, str, Optional[ast.Expression]]]]:
        """Validate an ungrouped-aggregate select list and return one
        ``(output name, function, argument expression)`` spec per item
        (argument None for ``COUNT(*)``), or None when the statement has no
        aggregates.  Shared by the row and batch aggregate planners so both
        raise identical validation errors."""
        has_aggregate = any(
            isinstance(item.expression, ast.FunctionCall)
            and item.expression.name.upper() in AGGREGATE_FUNCTIONS
            for item in statement.items
        )
        if not has_aggregate:
            return None
        specs: list[tuple[str, str, Optional[ast.Expression]]] = []
        for position, item in enumerate(statement.items):
            expression = item.expression
            if not isinstance(expression, ast.FunctionCall):
                raise SqlExecutionError(
                    "mixing aggregate and non-aggregate select items "
                    "requires GROUP BY, which is not supported"
                )
            function = expression.name.upper()
            if function not in AGGREGATE_FUNCTIONS:
                raise SqlExecutionError(
                    f"aggregate function {expression.name!r} is not supported "
                    f"(supported: {', '.join(sorted(AGGREGATE_FUNCTIONS))})"
                )
            if expression.star and function != "COUNT":
                raise SqlExecutionError(f"{function}(*) is not valid SQL")
            name = (item.alias or f"{function.lower()}{position}").lower()
            arg: Optional[ast.Expression] = None
            if not expression.star and expression.args:
                if len(expression.args) != 1:
                    raise SqlExecutionError(
                        f"{function} takes exactly one argument"
                    )
                arg = expression.args[0]
            elif function != "COUNT":
                raise SqlExecutionError(
                    f"{function} requires an argument"
                )
            specs.append((name, function, arg))
        return specs

    def _maybe_plan_aggregate(
        self,
        statement: ast.SelectStatement,
        root: PlanOperator,
        compiler: ExpressionCompiler,
    ) -> Optional[SelectPlan]:
        """Handle ungrouped aggregates (COUNT/SUM/MIN/MAX/AVG)."""
        specs = self._aggregate_specs(statement)
        if specs is None:
            return None
        columns: list[tuple[str, str, Optional[Evaluator]]] = [
            (name, function, compiler.compile(arg) if arg is not None else None)
            for name, function, arg in specs
        ]
        aggregate = self._annotated(
            Aggregate(root, columns), 1.0, root.estimated_cost
        )
        return SelectPlan(
            root=aggregate, column_names=[name for name, _, _ in columns]
        )

    def _output_columns(
        self,
        statement: ast.SelectStatement,
        bindings: dict[str, _Binding],
        compiler: ExpressionCompiler,
        slot_map: dict[str, int],
    ) -> tuple[list[tuple[str, Evaluator]], Optional[list[int]]]:
        """The select-list outputs: (name, evaluator) pairs plus, when every
        output is a plain column reference, the slot list for the projection
        fast path."""
        columns: list[tuple[str, Evaluator]] = []
        slots: list[Optional[int]] = []
        counts: dict[str, int] = {}
        for binding in bindings.values():
            for column in binding.schema.column_names:
                key = column.lower()
                counts[key] = counts.get(key, 0) + 1

        def add_table_columns(binding: _Binding) -> None:
            for position, column in enumerate(binding.schema.column_names):
                lowered = column.lower()
                key = f"{binding.name}.{lowered}"
                output_name = lowered if counts[lowered] == 1 else key
                slot = binding.slot_start + position
                columns.append((output_name, _slot_getter(slot)))
                slots.append(slot)

        generated_index = 0
        for item in statement.items:
            if item.star:
                for binding in bindings.values():
                    add_table_columns(binding)
            elif item.table_star is not None:
                name = item.table_star.lower()
                if name not in bindings:
                    raise SqlCatalogError(f"unknown table alias {item.table_star!r}")
                add_table_columns(bindings[name])
            else:
                assert item.expression is not None
                evaluator = compiler.compile(item.expression)
                if item.alias:
                    output_name = item.alias.lower()
                elif isinstance(item.expression, ast.ColumnRef):
                    output_name = item.expression.column.lower()
                else:
                    output_name = f"col{generated_index}"
                generated_index += 1
                columns.append((output_name, evaluator))
                if isinstance(item.expression, ast.ColumnRef):
                    key, _ = self._resolve_column(item.expression, bindings)
                    slots.append(slot_map[key])
                else:
                    slots.append(None)
        if all(slot is not None for slot in slots):
            return columns, [slot for slot in slots if slot is not None]
        return columns, None


def _split_disjuncts(expression: ast.Expression) -> list[ast.Expression]:
    """Split an expression on top-level ORs."""
    if isinstance(expression, ast.BinaryOp) and expression.op == "OR":
        return _split_disjuncts(expression.left) + _split_disjuncts(expression.right)
    return [expression]


def _slot_getter(slot: int) -> Evaluator:
    def get(row, params):  # type: ignore[no-untyped-def]
        return row[slot]

    return get


def _sort_cost(child: PlanOperator) -> Optional[float]:
    if child.estimated_cost is None:
        return None
    rows = max(1.0, child.estimated_rows or 1.0)
    return child.estimated_cost + rows * max(1.0, math.log2(rows))
