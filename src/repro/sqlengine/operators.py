"""Iterator-model plan operators for the in-memory SQL engine.

Every operator yields *row environments*: dictionaries mapping column keys
(``alias.column`` plus unambiguous bare column names, all lower case) to
values.  The planner decides which keys each scan publishes.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.sqlengine.expressions import Evaluator, Params, RowEnv, is_truthy
from repro.sqlengine.storage import TableData

Env = dict[str, object]


class PlanOperator:
    """Base class for plan operators (iterator model)."""

    def execute(self, params: Params) -> Iterator[Env]:
        """Yield row environments for the given statement parameters."""
        raise NotImplementedError

    def children(self) -> Sequence["PlanOperator"]:
        """Child operators, used for plan explanation."""
        return ()

    def describe(self) -> str:
        """One-line description used by ``EXPLAIN``-style output."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """Multi-line textual plan (operator tree)."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class SeqScan(PlanOperator):
    """Full scan over a table, publishing the given key set per column."""

    def __init__(
        self,
        table: TableData,
        binding: str,
        column_keys: Sequence[Sequence[str]],
    ) -> None:
        self._table = table
        self._binding = binding
        self._column_keys = [list(keys) for keys in column_keys]

    def execute(self, params: Params) -> Iterator[Env]:
        column_keys = self._column_keys
        for row in self._table.rows():
            env: Env = {}
            for value, keys in zip(row, column_keys):
                for key in keys:
                    env[key] = value
            yield env

    def describe(self) -> str:
        return f"SeqScan({self._table.schema.name} AS {self._binding})"


class IndexLookupScan(PlanOperator):
    """Equality lookup through an index; keys may reference parameters."""

    def __init__(
        self,
        table: TableData,
        binding: str,
        column_keys: Sequence[Sequence[str]],
        index_name: str,
        key_evaluators: Sequence[Evaluator],
    ) -> None:
        self._table = table
        self._binding = binding
        self._column_keys = [list(keys) for keys in column_keys]
        self._index_name = index_name
        self._key_evaluators = list(key_evaluators)

    def execute(self, params: Params) -> Iterator[Env]:
        index = self._table.indexes()[self._index_name]
        empty_env: RowEnv = {}
        key_values = [evaluate(empty_env, params) for evaluate in self._key_evaluators]
        key = key_values[0] if len(key_values) == 1 else tuple(key_values)
        for _, row in self._table.lookup_rows(index, key):
            env: Env = {}
            for value, keys in zip(row, self._column_keys):
                for column_key in keys:
                    env[column_key] = value
            yield env

    def describe(self) -> str:
        return (
            f"IndexLookup({self._table.schema.name} AS {self._binding} "
            f"USING {self._index_name})"
        )


class Filter(PlanOperator):
    """Filter rows by a compiled predicate."""

    def __init__(self, child: PlanOperator, predicate: Evaluator, label: str = "") -> None:
        self._child = child
        self._predicate = predicate
        self._label = label

    def execute(self, params: Params) -> Iterator[Env]:
        predicate = self._predicate
        for env in self._child.execute(params):
            if is_truthy(predicate(env, params)):
                yield env

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"Filter({self._label})" if self._label else "Filter"


class NestedLoopJoin(PlanOperator):
    """Cartesian product of two children with an optional join predicate."""

    def __init__(
        self,
        left: PlanOperator,
        right: PlanOperator,
        predicate: Evaluator | None = None,
    ) -> None:
        self._left = left
        self._right = right
        self._predicate = predicate

    def execute(self, params: Params) -> Iterator[Env]:
        right_rows = list(self._right.execute(params))
        predicate = self._predicate
        for left_env in self._left.execute(params):
            for right_env in right_rows:
                env = dict(left_env)
                env.update(right_env)
                if predicate is None or is_truthy(predicate(env, params)):
                    yield env

    def children(self) -> Sequence[PlanOperator]:
        return (self._left, self._right)

    def describe(self) -> str:
        return "NestedLoopJoin" + ("(filtered)" if self._predicate else "(cross)")


class HashJoin(PlanOperator):
    """Equi-join: build a hash table on the right child, probe with the left."""

    def __init__(
        self,
        left: PlanOperator,
        right: PlanOperator,
        left_keys: Sequence[Evaluator],
        right_keys: Sequence[Evaluator],
    ) -> None:
        self._left = left
        self._right = right
        self._left_keys = list(left_keys)
        self._right_keys = list(right_keys)

    def execute(self, params: Params) -> Iterator[Env]:
        table: dict[object, list[Env]] = {}
        for right_env in self._right.execute(params):
            key = tuple(evaluate(right_env, params) for evaluate in self._right_keys)
            if any(value is None for value in key):
                continue
            table.setdefault(key, []).append(right_env)
        for left_env in self._left.execute(params):
            key = tuple(evaluate(left_env, params) for evaluate in self._left_keys)
            if any(value is None for value in key):
                continue
            for right_env in table.get(key, ()):
                env = dict(left_env)
                env.update(right_env)
                yield env

    def children(self) -> Sequence[PlanOperator]:
        return (self._left, self._right)

    def describe(self) -> str:
        return f"HashJoin(keys={len(self._left_keys)})"


class Project(PlanOperator):
    """Compute the output columns of the select list."""

    def __init__(
        self,
        child: PlanOperator,
        columns: Sequence[tuple[str, Evaluator]],
    ) -> None:
        self._child = child
        self._columns = list(columns)

    @property
    def column_names(self) -> list[str]:
        return [name for name, _ in self._columns]

    def execute(self, params: Params) -> Iterator[Env]:
        columns = self._columns
        for env in self._child.execute(params):
            yield {name: evaluate(env, params) for name, evaluate in columns}

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"Project({', '.join(self.column_names)})"


class Sort(PlanOperator):
    """Sort rows by one or more keys.

    The sort is stable and handles mixed ascending/descending keys by sorting
    repeatedly from the least-significant key to the most-significant one.
    NULL values sort first in ascending order (last in descending).
    """

    def __init__(
        self,
        child: PlanOperator,
        keys: Sequence[tuple[Evaluator, bool]],
    ) -> None:
        self._child = child
        self._keys = list(keys)

    def execute(self, params: Params) -> Iterator[Env]:
        rows = list(self._child.execute(params))
        for evaluate, descending in reversed(self._keys):
            rows.sort(
                key=lambda env: _sort_key(evaluate(env, params)),
                reverse=descending,
            )
        return iter(rows)

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"Sort(keys={len(self._keys)})"


class Limit(PlanOperator):
    """Apply OFFSET/LIMIT to the child's rows."""

    def __init__(
        self,
        child: PlanOperator,
        limit: Evaluator | None,
        offset: Evaluator | None,
    ) -> None:
        self._child = child
        self._limit = limit
        self._offset = offset

    def execute(self, params: Params) -> Iterator[Env]:
        empty_env: RowEnv = {}
        offset = int(self._offset(empty_env, params)) if self._offset else 0  # type: ignore[arg-type]
        limit = int(self._limit(empty_env, params)) if self._limit else None  # type: ignore[arg-type]
        produced = 0
        skipped = 0
        for env in self._child.execute(params):
            if skipped < offset:
                skipped += 1
                continue
            if limit is not None and produced >= limit:
                return
            produced += 1
            yield env

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return "Limit"


class Distinct(PlanOperator):
    """Remove duplicate output rows (by value of every column)."""

    def __init__(self, child: PlanOperator, column_names: Sequence[str]) -> None:
        self._child = child
        self._column_names = list(column_names)

    def execute(self, params: Params) -> Iterator[Env]:
        seen: set[tuple[object, ...]] = set()
        for env in self._child.execute(params):
            key = tuple(env.get(name) for name in self._column_names)
            if key in seen:
                continue
            seen.add(key)
            yield env

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return "Distinct"


class Aggregate(PlanOperator):
    """Minimal aggregate support: ``COUNT(*)`` / ``COUNT(expr)`` without
    GROUP BY, which is all the engine needs (the paper's queries avoid
    aggregation, but utilities such as row counting use it)."""

    def __init__(
        self,
        child: PlanOperator,
        columns: Sequence[tuple[str, Evaluator | None]],
    ) -> None:
        self._child = child
        self._columns = list(columns)

    @property
    def column_names(self) -> list[str]:
        return [name for name, _ in self._columns]

    def execute(self, params: Params) -> Iterator[Env]:
        counts = [0] * len(self._columns)
        for env in self._child.execute(params):
            for position, (_, evaluate) in enumerate(self._columns):
                if evaluate is None:
                    counts[position] += 1
                else:
                    value = evaluate(env, params)
                    if value is not None:
                        counts[position] += 1
        yield {
            name: counts[position]
            for position, (name, _) in enumerate(self._columns)
        }

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return "Aggregate(COUNT)"


_MISSING = object()


def _sort_key(value: object) -> tuple[int, object]:
    """Make values totally ordered: NULLs first, then by value."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def materialise(
    operator: PlanOperator, params: Params, column_names: Sequence[str]
) -> list[tuple[object, ...]]:
    """Run a plan and return rows as tuples in column order."""
    rows: list[tuple[object, ...]] = []
    for env in operator.execute(params):
        rows.append(tuple(env.get(name) for name in column_names))
    return rows


class IndexNestedLoopJoin(PlanOperator):
    """Join in which each left row probes an index on the right base table.

    This is the access path a production optimizer picks for point joins
    (e.g. ``A.C_ADDR_ID = B.ADDR_ID`` where ``ADDR_ID`` is the primary key of
    ``B``); without it, every query execution would rebuild a hash table over
    the whole right table.
    """

    def __init__(
        self,
        left: PlanOperator,
        table: TableData,
        binding: str,
        column_keys: Sequence[Sequence[str]],
        index_name: str,
        left_key_evaluators: Sequence[Evaluator],
        residual: Evaluator | None = None,
    ) -> None:
        self._left = left
        self._table = table
        self._binding = binding
        self._column_keys = [list(keys) for keys in column_keys]
        self._index_name = index_name
        self._left_key_evaluators = list(left_key_evaluators)
        self._residual = residual

    def execute(self, params: Params) -> Iterator[Env]:
        index = self._table.indexes()[self._index_name]
        column_keys = self._column_keys
        residual = self._residual
        for left_env in self._left.execute(params):
            key_values = [
                evaluate(left_env, params) for evaluate in self._left_key_evaluators
            ]
            if any(value is None for value in key_values):
                continue
            key = key_values[0] if len(key_values) == 1 else tuple(key_values)
            for _, row in self._table.lookup_rows(index, key):
                env = dict(left_env)
                for value, keys in zip(row, column_keys):
                    for column_key in keys:
                        env[column_key] = value
                if residual is None or is_truthy(residual(env, params)):
                    yield env

    def children(self) -> Sequence[PlanOperator]:
        return (self._left,)

    def describe(self) -> str:
        return (
            f"IndexNestedLoopJoin({self._table.schema.name} AS {self._binding} "
            f"USING {self._index_name})"
        )


class IndexOrLookupJoin(PlanOperator):
    """Join driven by a disjunction of indexed equality predicates.

    This is the access path a production optimizer (e.g. PostgreSQL's bitmap
    index OR) uses for queries such as TPC-W's doGetRelated::

        ... FROM item I, item J
        WHERE (I.i_related1 = J.i_id OR ... OR I.i_related5 = J.i_id)
          AND I.i_id = ?

    For each left row, every disjunct probes an index on the right table;
    matching rows are combined (each right row at most once per left row) and
    the original disjunction is re-checked as a residual predicate.
    """

    def __init__(
        self,
        left: PlanOperator,
        table: TableData,
        binding: str,
        column_keys: Sequence[Sequence[str]],
        probes: Sequence[tuple[str, Evaluator]],
        residual: Evaluator | None = None,
    ) -> None:
        self._left = left
        self._table = table
        self._binding = binding
        self._column_keys = [list(keys) for keys in column_keys]
        self._probes = list(probes)
        self._residual = residual

    def execute(self, params: Params) -> Iterator[Env]:
        column_keys = self._column_keys
        indexes = self._table.indexes()
        residual = self._residual
        for left_env in self._left.execute(params):
            seen_rows: set[int] = set()
            for index_name, key_evaluator in self._probes:
                key = key_evaluator(left_env, params)
                if key is None:
                    continue
                for row_id, row in self._table.lookup_rows(indexes[index_name], key):
                    if row_id in seen_rows:
                        continue
                    seen_rows.add(row_id)
                    env = dict(left_env)
                    for value, keys in zip(row, column_keys):
                        for column_key in keys:
                            env[column_key] = value
                    if residual is None or is_truthy(residual(env, params)):
                        yield env

    def children(self) -> Sequence[PlanOperator]:
        return (self._left,)

    def describe(self) -> str:
        return (
            f"IndexOrLookupJoin({self._table.schema.name} AS {self._binding}, "
            f"{len(self._probes)} probes)"
        )
