"""Iterator-model plan operators for the in-memory SQL engine.

Every operator yields *positional rows*: sequences whose slots are assigned
by the planner (one slot per published column, contiguous per FROM-clause
binding).  Scans write a base table's stored tuple into its binding's slot
range; joins copy the build side's slot range into the probe row; compiled
expressions read ``row[slot]`` directly.  Compared to the previous
dict-environment model this removes all per-row dictionary construction and
double-key publishing from the hot loops.

Single-binding scans are zero-copy: when the output width equals the table
width, the stored row tuples are yielded as-is.

Operators also carry the planner's cost-model annotations
(:attr:`PlanOperator.estimated_rows` / :attr:`~PlanOperator.estimated_cost`),
which ``EXPLAIN`` renders per node.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.sqlengine.expressions import Evaluator, Params, Row, is_truthy
from repro.sqlengine.storage import TableData


class PlanOperator:
    """Base class for plan operators (iterator model)."""

    #: Cost-model annotations, set by the planner (None when not estimated).
    estimated_rows: Optional[float] = None
    estimated_cost: Optional[float] = None

    def execute(self, params: Params) -> Iterator[Row]:
        """Yield positional rows for the given statement parameters."""
        raise NotImplementedError

    def children(self) -> Sequence["PlanOperator"]:
        """Child operators, used for plan explanation."""
        return ()

    def describe(self) -> str:
        """One-line description used by ``EXPLAIN``-style output."""
        return type(self).__name__

    def explain(self, indent: int = 0, annotate=None) -> str:
        """Multi-line textual plan (operator tree with cost annotations).

        ``annotate``, when given, maps an operator to an extra suffix for
        its line — EXPLAIN ANALYZE appends actual rows and wall time."""
        line = "  " * indent + self.describe()
        if self.estimated_rows is not None:
            line += f"  (rows={self.estimated_rows:.1f}"
            if self.estimated_cost is not None:
                line += f", cost={self.estimated_cost:.1f}"
            line += ")"
        if annotate is not None:
            extra = annotate(self)
            if extra:
                line += "  " + extra
        lines = [line]
        for child in self.children():
            lines.append(child.explain(indent + 1, annotate))
        return "\n".join(lines)


class SeqScan(PlanOperator):
    """Full scan over a table, writing rows into the binding's slot range."""

    def __init__(
        self,
        table: TableData,
        binding: str,
        width: int,
        offset: int,
    ) -> None:
        self._table = table
        self._binding = binding
        self._width = width
        self._offset = offset
        self._columns = len(table.schema.columns)

    def execute(self, params: Params) -> Iterator[Row]:
        if self._offset == 0 and self._width == self._columns:
            # Single-binding query: the stored tuples already have the
            # output layout, so yield them without copying.
            yield from self._table.rows()
            return
        width, start, end = self._width, self._offset, self._offset + self._columns
        for row in self._table.rows():
            out = [None] * width
            out[start:end] = row
            yield out

    def describe(self) -> str:
        return f"SeqScan({self._table.schema.name} AS {self._binding})"


class IndexLookupScan(PlanOperator):
    """Equality lookup through an index; keys may reference parameters."""

    def __init__(
        self,
        table: TableData,
        binding: str,
        width: int,
        offset: int,
        index_name: str,
        key_evaluators: Sequence[Evaluator],
    ) -> None:
        self._table = table
        self._binding = binding
        self._width = width
        self._offset = offset
        self._columns = len(table.schema.columns)
        self._index_name = index_name
        self._key_evaluators = list(key_evaluators)

    def execute(self, params: Params) -> Iterator[Row]:
        index = self._table.indexes()[self._index_name]
        empty_row: Row = ()
        key_values = [evaluate(empty_row, params) for evaluate in self._key_evaluators]
        key = key_values[0] if len(key_values) == 1 else tuple(key_values)
        if self._offset == 0 and self._width == self._columns:
            for _, row in self._table.lookup_rows(index, key):
                yield row
            return
        width, start, end = self._width, self._offset, self._offset + self._columns
        for _, row in self._table.lookup_rows(index, key):
            out = [None] * width
            out[start:end] = row
            yield out

    def describe(self) -> str:
        return (
            f"IndexLookup({self._table.schema.name} AS {self._binding} "
            f"USING {self._index_name})"
        )


class Filter(PlanOperator):
    """Filter rows by a compiled predicate."""

    def __init__(self, child: PlanOperator, predicate: Evaluator, label: str = "") -> None:
        self._child = child
        self._predicate = predicate
        self._label = label

    def execute(self, params: Params) -> Iterator[Row]:
        predicate = self._predicate
        for row in self._child.execute(params):
            if is_truthy(predicate(row, params)):
                yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"Filter({self._label})" if self._label else "Filter"


class NestedLoopJoin(PlanOperator):
    """Cartesian product of two children with an optional join predicate.

    The right child covers the slot range ``right_range``; joining copies
    that range of the right row into a copy of the left row.
    """

    def __init__(
        self,
        left: PlanOperator,
        right: PlanOperator,
        right_range: tuple[int, int],
        predicate: Evaluator | None = None,
    ) -> None:
        self._left = left
        self._right = right
        self._right_range = right_range
        self._predicate = predicate

    def execute(self, params: Params) -> Iterator[Row]:
        start, end = self._right_range
        right_rows = [row[start:end] for row in self._right.execute(params)]
        predicate = self._predicate
        for left_row in self._left.execute(params):
            for right_slice in right_rows:
                row = list(left_row)
                row[start:end] = right_slice
                if predicate is None or is_truthy(predicate(row, params)):
                    yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self._left, self._right)

    def describe(self) -> str:
        return "NestedLoopJoin" + ("(filtered)" if self._predicate else "(cross)")


class HashJoin(PlanOperator):
    """Equi-join: build a hash table on the right child, probe with the left."""

    def __init__(
        self,
        left: PlanOperator,
        right: PlanOperator,
        left_keys: Sequence[Evaluator],
        right_keys: Sequence[Evaluator],
        right_range: tuple[int, int],
    ) -> None:
        self._left = left
        self._right = right
        self._left_keys = list(left_keys)
        self._right_keys = list(right_keys)
        self._right_range = right_range

    def execute(self, params: Params) -> Iterator[Row]:
        start, end = self._right_range
        table: dict[object, list[Row]] = {}
        for right_row in self._right.execute(params):
            key = tuple(evaluate(right_row, params) for evaluate in self._right_keys)
            if any(value is None for value in key):
                continue
            table.setdefault(key, []).append(right_row[start:end])
        left_keys = self._left_keys
        for left_row in self._left.execute(params):
            key = tuple(evaluate(left_row, params) for evaluate in left_keys)
            if any(value is None for value in key):
                continue
            for right_slice in table.get(key, ()):
                row = list(left_row)
                row[start:end] = right_slice
                yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self._left, self._right)

    def describe(self) -> str:
        return f"HashJoin(keys={len(self._left_keys)})"


class Project(PlanOperator):
    """Compute the output columns of the select list.

    When every output is a plain column reference the projection is a pure
    slot gather (no evaluator calls per column).
    """

    def __init__(
        self,
        child: PlanOperator,
        columns: Sequence[tuple[str, Evaluator]],
        slots: Sequence[int] | None = None,
    ) -> None:
        self._child = child
        self._columns = list(columns)
        self._slots = list(slots) if slots is not None else None

    @property
    def column_names(self) -> list[str]:
        return [name for name, _ in self._columns]

    def execute(self, params: Params) -> Iterator[Row]:
        if self._slots is not None:
            slots = self._slots
            for row in self._child.execute(params):
                yield tuple(row[slot] for slot in slots)
            return
        evaluators = [evaluate for _, evaluate in self._columns]
        for row in self._child.execute(params):
            yield tuple(evaluate(row, params) for evaluate in evaluators)

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"Project({', '.join(self.column_names)})"


class Sort(PlanOperator):
    """Sort rows by one or more keys.

    The sort is stable and handles mixed ascending/descending keys by sorting
    repeatedly from the least-significant key to the most-significant one.
    NULL values sort first in ascending order (last in descending).
    """

    def __init__(
        self,
        child: PlanOperator,
        keys: Sequence[tuple[Evaluator, bool]],
    ) -> None:
        self._child = child
        self._keys = list(keys)

    def execute(self, params: Params) -> Iterator[Row]:
        rows = list(self._child.execute(params))
        for evaluate, descending in reversed(self._keys):
            rows.sort(
                key=lambda row: _sort_key(evaluate(row, params)),
                reverse=descending,
            )
        return iter(rows)

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"Sort(keys={len(self._keys)})"


class Limit(PlanOperator):
    """Apply OFFSET/LIMIT to the child's rows."""

    def __init__(
        self,
        child: PlanOperator,
        limit: Evaluator | None,
        offset: Evaluator | None,
    ) -> None:
        self._child = child
        self._limit = limit
        self._offset = offset

    def execute(self, params: Params) -> Iterator[Row]:
        empty_row: Row = ()
        offset = int(self._offset(empty_row, params)) if self._offset else 0  # type: ignore[arg-type]
        limit = int(self._limit(empty_row, params)) if self._limit else None  # type: ignore[arg-type]
        produced = 0
        skipped = 0
        for row in self._child.execute(params):
            if skipped < offset:
                skipped += 1
                continue
            if limit is not None and produced >= limit:
                return
            produced += 1
            yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return "Limit"


class Distinct(PlanOperator):
    """Remove duplicate output rows (by value of every column).

    Runs above :class:`Project`, whose rows are already tuples in output
    order, so the row itself is the deduplication key.
    """

    def __init__(self, child: PlanOperator) -> None:
        self._child = child

    def execute(self, params: Params) -> Iterator[Row]:
        seen: set[tuple[object, ...]] = set()
        for row in self._child.execute(params):
            key = tuple(row)
            if key in seen:
                continue
            seen.add(key)
            yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        return "Distinct"


class Aggregate(PlanOperator):
    """Ungrouped aggregation: COUNT / SUM / MIN / MAX / AVG without GROUP BY.

    Each output column is ``(name, function, evaluator)``; a ``None``
    evaluator means ``COUNT(*)``.  NULL inputs are skipped (SQL semantics);
    SUM/MIN/MAX/AVG over zero non-NULL inputs yield NULL, COUNT yields 0.
    """

    def __init__(
        self,
        child: PlanOperator,
        columns: Sequence[tuple[str, str, Evaluator | None]],
    ) -> None:
        self._child = child
        self._columns = list(columns)

    @property
    def column_names(self) -> list[str]:
        return [name for name, _, _ in self._columns]

    def execute(self, params: Params) -> Iterator[Row]:
        counts = [0] * len(self._columns)
        sums: list[object] = [None] * len(self._columns)
        minima: list[object] = [None] * len(self._columns)
        maxima: list[object] = [None] * len(self._columns)
        specs = self._columns
        for row in self._child.execute(params):
            for position, (_, function, evaluate) in enumerate(specs):
                if evaluate is None:
                    counts[position] += 1
                    continue
                value = evaluate(row, params)
                if value is None:
                    continue
                counts[position] += 1
                if function in ("SUM", "AVG"):
                    current = sums[position]
                    sums[position] = value if current is None else current + value  # type: ignore[operator]
                elif function == "MIN":
                    current = minima[position]
                    if current is None or value < current:  # type: ignore[operator]
                        minima[position] = value
                elif function == "MAX":
                    current = maxima[position]
                    if current is None or value > current:  # type: ignore[operator]
                        maxima[position] = value
        out: list[object] = []
        for position, (_, function, _) in enumerate(specs):
            if function == "COUNT":
                out.append(counts[position])
            elif function == "SUM":
                out.append(sums[position])
            elif function == "AVG":
                total = sums[position]
                out.append(None if total is None else total / counts[position])  # type: ignore[operator]
            elif function == "MIN":
                out.append(minima[position])
            else:  # MAX
                out.append(maxima[position])
        yield tuple(out)

    def children(self) -> Sequence[PlanOperator]:
        return (self._child,)

    def describe(self) -> str:
        functions = ", ".join(function for _, function, _ in self._columns)
        return f"Aggregate({functions})"


def _sort_key(value: object) -> tuple[int, object]:
    """Make values totally ordered: NULLs first, then by value."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def materialise(operator: PlanOperator, params: Params) -> list[tuple[object, ...]]:
    """Run a plan and return its rows as tuples.

    The plan root (Project / Aggregate, possibly under Distinct/Limit)
    already yields tuples in output-column order, so this is a plain drain;
    ``tuple(row)`` is the identity for rows that are already tuples.
    """
    return [tuple(row) for row in operator.execute(params)]


class IndexNestedLoopJoin(PlanOperator):
    """Join in which each left row probes an index on the right base table.

    This is the access path a production optimizer picks for point joins
    (e.g. ``A.C_ADDR_ID = B.ADDR_ID`` where ``ADDR_ID`` is the primary key of
    ``B``); without it, every query execution would rebuild a hash table over
    the whole right table.
    """

    def __init__(
        self,
        left: PlanOperator,
        table: TableData,
        binding: str,
        offset: int,
        index_name: str,
        left_key_evaluators: Sequence[Evaluator],
        residual: Evaluator | None = None,
    ) -> None:
        self._left = left
        self._table = table
        self._binding = binding
        self._offset = offset
        self._columns = len(table.schema.columns)
        self._index_name = index_name
        self._left_key_evaluators = list(left_key_evaluators)
        self._residual = residual

    def execute(self, params: Params) -> Iterator[Row]:
        index = self._table.indexes()[self._index_name]
        start, end = self._offset, self._offset + self._columns
        residual = self._residual
        evaluators = self._left_key_evaluators
        single_key = evaluators[0] if len(evaluators) == 1 else None
        table = self._table
        for left_row in self._left.execute(params):
            if single_key is not None:
                key = single_key(left_row, params)
                if key is None:
                    continue
            else:
                key_values = [evaluate(left_row, params) for evaluate in evaluators]
                if any(value is None for value in key_values):
                    continue
                key = tuple(key_values)
            for _, stored in table.lookup_rows(index, key):
                row = list(left_row)
                row[start:end] = stored
                if residual is None or is_truthy(residual(row, params)):
                    yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self._left,)

    def describe(self) -> str:
        return (
            f"IndexNestedLoopJoin({self._table.schema.name} AS {self._binding} "
            f"USING {self._index_name})"
        )


class IndexOrLookupJoin(PlanOperator):
    """Join driven by a disjunction of indexed equality predicates.

    This is the access path a production optimizer (e.g. PostgreSQL's bitmap
    index OR) uses for queries such as TPC-W's doGetRelated::

        ... FROM item I, item J
        WHERE (I.i_related1 = J.i_id OR ... OR I.i_related5 = J.i_id)
          AND I.i_id = ?

    For each left row, every disjunct probes an index on the right table;
    matching rows are combined (each right row at most once per left row) and
    the original disjunction is re-checked as a residual predicate.
    """

    def __init__(
        self,
        left: PlanOperator,
        table: TableData,
        binding: str,
        offset: int,
        probes: Sequence[tuple[str, Evaluator]],
        residual: Evaluator | None = None,
    ) -> None:
        self._left = left
        self._table = table
        self._binding = binding
        self._offset = offset
        self._columns = len(table.schema.columns)
        self._probes = list(probes)
        self._residual = residual

    def execute(self, params: Params) -> Iterator[Row]:
        indexes = self._table.indexes()
        start, end = self._offset, self._offset + self._columns
        residual = self._residual
        table = self._table
        for left_row in self._left.execute(params):
            seen_rows: set[int] = set()
            for index_name, key_evaluator in self._probes:
                key = key_evaluator(left_row, params)
                if key is None:
                    continue
                for row_id, stored in table.lookup_rows(indexes[index_name], key):
                    if row_id in seen_rows:
                        continue
                    seen_rows.add(row_id)
                    row = list(left_row)
                    row[start:end] = stored
                    if residual is None or is_truthy(residual(row, params)):
                        yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self._left,)

    def describe(self) -> str:
        return (
            f"IndexOrLookupJoin({self._table.schema.name} AS {self._binding}, "
            f"{len(self._probes)} probes)"
        )
