"""The ``Database`` facade: parse, plan (with caching) and execute SQL.

This is the component standing in for PostgreSQL in the reproduction.  It is
deliberately synchronous and single-process — the paper's benchmark runs the
database and the query code on the same machine — and exposes both a SQL
interface (``execute``) and a couple of fast bulk-loading helpers used by the
TPC-W population generator.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog, TableSchema
from repro.sqlengine.executor import Executor, StatementResult
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.planner import PlannerOptions, SelectPlan
from repro.sqlengine.storage import TableData


@dataclass
class ResultSet:
    """Materialised result of a query: column names plus row tuples.

    Column names are lower case; :meth:`column_index` resolves names
    case-insensitively, mirroring JDBC's ``ResultSet.getString(name)``.
    """

    columns: list[str]
    rows: list[tuple[object, ...]]

    def column_index(self, name: str) -> int:
        """Index of a column by (case-insensitive) name."""
        lowered = name.lower()
        try:
            return self.columns.index(lowered)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}") from exc

    def value(self, row: int, column: str) -> object:
        """Value at (row, column-name)."""
        return self.rows[row][self.column_index(column)]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


@dataclass
class _CachedStatement:
    statement: ast.Statement
    plan: Optional[SelectPlan]


class Database:
    """An in-memory SQL database.

    Thread safety: a single lock serialises statement execution, which is all
    the benchmark harness needs (it is single-threaded, like the paper's).
    """

    def __init__(self, planner_options: PlannerOptions | None = None) -> None:
        self._catalog = Catalog()
        self._tables: dict[str, TableData] = {}
        self._planner_options = planner_options or PlannerOptions()
        self._executor = Executor(self._catalog, self._tables, self._planner_options)
        self._statement_cache: dict[str, _CachedStatement] = {}
        self._lock = threading.RLock()
        #: Number of statements executed; used by tests and benchmarks to
        #: verify how many round-trips a code path performs.
        self.statements_executed = 0

    # -- properties ----------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        """The table catalog."""
        return self._catalog

    @property
    def planner_options(self) -> PlannerOptions:
        """Planner switches (mutable; the plan cache is cleared on change via
        :meth:`set_planner_options`)."""
        return self._planner_options

    def set_planner_options(self, options: PlannerOptions) -> None:
        """Replace the planner options and invalidate cached plans."""
        with self._lock:
            self._planner_options = options
            self._executor = Executor(self._catalog, self._tables, options)
            self._statement_cache.clear()

    # -- SQL interface -------------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()) -> ResultSet:
        """Parse (with caching), plan and execute one SQL statement."""
        with self._lock:
            cached = self._get_cached(sql)
            result = self._executor.execute(cached.statement, params, plan=cached.plan)
            self.statements_executed += 1
            return ResultSet(columns=result.columns, rows=result.rows)

    def execute_many(
        self, sql: str, param_rows: Iterable[Sequence[object]]
    ) -> int:
        """Execute the same statement for every parameter row; returns the
        total affected-row count."""
        total = 0
        with self._lock:
            cached = self._get_cached(sql)
            for params in param_rows:
                result = self._executor.execute(
                    cached.statement, params, plan=cached.plan
                )
                self.statements_executed += 1
                total += result.rowcount
        return total

    def explain(self, sql: str) -> str:
        """Return the textual plan for a SELECT statement."""
        with self._lock:
            cached = self._get_cached(sql)
            if cached.plan is None:
                return type(cached.statement).__name__
            return cached.plan.explain()

    def executescript(self, script: str) -> None:
        """Execute several semicolon-separated statements (DDL helper)."""
        for statement_text in _split_script(script):
            self.execute(statement_text)

    # -- bulk/native helpers -------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        """Register a table directly from a :class:`TableSchema`."""
        with self._lock:
            self._catalog.create_table(schema)
            self._tables[schema.name.lower()] = TableData(schema)
            self._statement_cache.clear()

    def create_index(
        self,
        table: str,
        columns: Sequence[str],
        name: str | None = None,
        unique: bool = False,
        ordered: bool = False,
    ) -> None:
        """Create an index without going through SQL."""
        with self._lock:
            data = self.table_data(table)
            index_name = name or f"idx_{table.lower()}_{'_'.join(columns).lower()}"
            data.create_index(index_name, tuple(columns), unique=unique, ordered=ordered)
            self._statement_cache.clear()

    def insert_rows(self, table: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-load rows (used by the TPC-W population generator).

        Rows must list a value for every column in schema order.
        """
        with self._lock:
            schema = self._catalog.table(table)
            data = self._tables[schema.name.lower()]
            count = 0
            for row in rows:
                data.insert(schema.coerce_row(row))
                count += 1
            return count

    def table_data(self, table: str) -> TableData:
        """Direct access to a table's storage (tests and the ORM use this)."""
        schema = self._catalog.table(table)
        return self._tables[schema.name.lower()]

    def row_count(self, table: str) -> int:
        """Number of live rows in ``table``."""
        return len(self.table_data(table))

    # -- internals -----------------------------------------------------------

    def _get_cached(self, sql: str) -> _CachedStatement:
        cached = self._statement_cache.get(sql)
        if cached is not None:
            return cached
        statement = parse_statement(sql)
        plan: Optional[SelectPlan] = None
        if isinstance(statement, ast.SelectStatement):
            plan = self._executor.plan_select(statement)
        cached = _CachedStatement(statement=statement, plan=plan)
        if isinstance(
            statement,
            (ast.SelectStatement, ast.InsertStatement, ast.UpdateStatement,
             ast.DeleteStatement, ast.TransactionStatement),
        ):
            # Only cache statements that do not change the catalog.
            self._statement_cache[sql] = cached
        else:
            self._statement_cache.clear()
        return cached


def _split_script(script: str) -> list[str]:
    """Split a script into statements on semicolons outside string literals."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in script:
        if ch == "'":
            in_string = not in_string
            current.append(ch)
        elif ch == ";" and not in_string:
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(ch)
    text = "".join(current).strip()
    if text:
        statements.append(text)
    return statements
