"""The ``Database`` facade: parse, plan (with caching) and execute SQL.

This is the component standing in for PostgreSQL in the reproduction.  It is
synchronous and single-process — the paper's benchmark runs the database and
the query code on the same machine — and safe for concurrent use from
several threads through multi-version concurrency control: readers resolve
row visibility against a snapshot taken at statement (or transaction) start
and **never block**, writers take short per-table latches and detect
write-write conflicts eagerly (first updater wins, the loser aborts with
:class:`~repro.sqlengine.errors.TransactionConflictError`), and only DDL,
checkpoints and bulk loads briefly drain in-flight statements through the
controller's exclusive gate.  See :mod:`repro.sqlengine.transactions` and
``docs/transactions.md`` for the full design.

Clients interact through :class:`Session` objects (one per connection, from
:meth:`Database.session`).  Each session owns its own transaction context:
statements run in auto-commit mode wrap themselves in an implicit
transaction (transparently retried on conflict), ``BEGIN`` opens an
explicit one, and COMMIT/ROLLBACK (plus SAVEPOINT / ROLLBACK TO) behave
like the real thing — rolling back restores rows and indexes exactly via
the undo log.  The :class:`Database` methods ``execute``/``execute_many``/
... remain as a convenience facade over a default auto-commit session.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    ActiveSpan,
    TraceBuffer,
    TraceContext,
    TracingOptions,
    new_root_context,
)
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog, TableSchema
from repro.sqlengine.columnar import ColumnarMetrics
from repro.sqlengine.durability import DurabilityManager, DurabilityOptions
from repro.sqlengine.errors import SqlExecutionError, TransactionConflictError
from repro.sqlengine.executor import Executor, StatementResult
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.planner import PlannerOptions, SelectPlan
from repro.sqlengine.storage import TableData
from repro.sqlengine.transactions import MvccController, Transaction

#: Auto-commit statements that lose a write-write conflict are retried with
#: a fresh snapshot up to this many times before the conflict surfaces.
CONFLICT_RETRY_LIMIT = 100


def _conflict_backoff(attempt: int) -> None:
    """Yield to the conflicting owner before retrying: an immediate retry
    for the first attempts (the owner usually just needs the GIL), then an
    exponential pause capped at 10 ms."""
    if attempt <= 3:
        time.sleep(0)
    else:
        time.sleep(min(0.0002 * (2 ** min(attempt - 3, 6)), 0.01))


def build_column_map(columns: Sequence[str]) -> dict[str, int]:
    """Name→index map over a select list (first occurrence wins, the JDBC
    rule for duplicated column names).  Shared by every result-set flavour
    — the engine's, and the network driver's streaming one — so the lookup
    contract lives in exactly one place."""
    column_map: dict[str, int] = {}
    for position, column in enumerate(columns):
        column_map.setdefault(column, position)
    return column_map


@dataclass
class ResultSet:
    """Materialised result of a query: column names plus row tuples.

    Column names are lower case; :meth:`column_index` resolves names
    case-insensitively, mirroring JDBC's ``ResultSet.getString(name)``.
    """

    columns: list[str]
    rows: list[tuple[object, ...]]
    #: Affected-row count for DML statements (for SELECTs, the row count).
    rowcount: int = 0
    _column_map: Optional[dict[str, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def column_index(self, name: str) -> int:
        """Index of a column by (case-insensitive) name.

        The name→index map is built once per result set, so per-value
        access by name is O(1) instead of an O(n) list search."""
        column_map = self._column_map
        if column_map is None:
            column_map = self._column_map = build_column_map(self.columns)
        try:
            return column_map[name.lower()]
        except KeyError as exc:
            raise KeyError(f"no column named {name!r}") from exc

    def value(self, row: int, column: str) -> object:
        """Value at (row, column-name)."""
        return self.rows[row][self.column_index(column)]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


@dataclass
class _CachedStatement:
    statement: ast.Statement
    plan: Optional[SelectPlan]


#: Statements that change the catalog; executing one invalidates every
#: cached statement and plan.
_DDL_STATEMENTS = (
    ast.CreateTableStatement,
    ast.CreateIndexStatement,
    ast.DropTableStatement,
)


class Session:
    """One client's view of the database, with its own transaction context.

    A session executes statements against the shared storage but keeps
    private transaction state: the undo log, savepoints and the auto-commit
    flag.  Sessions are cheap — the dbapi layer creates one per connection
    and the ORM one per EntityManager.

    Concurrency protocol: every statement registers a snapshot with the
    MVCC controller and runs without blocking other statements.  A
    transaction's writes stay invisible to other sessions until COMMIT
    installs their commit stamp; a write-write conflict aborts the later
    writer with :class:`TransactionConflictError` (auto-commit statements
    retry transparently with a fresh snapshot).

    A session is not itself thread-safe: use one session per thread.
    """

    def __init__(self, database: "Database", autocommit: bool = True) -> None:
        self._database = database
        self.autocommit = autocommit
        self._transaction: Optional[Transaction] = None
        # Observability state for the statement currently executing on this
        # session (sessions are single-threaded, so plain attributes work):
        # the active span — if any — so deep phases (WAL fsync inside the
        # commit epilogue) can attribute their time, and the executed plan
        # mode for the slow-query log.
        self._stmt_obs: Optional[ActiveSpan] = None
        self._stmt_mode: Optional[str] = None

    # -- properties ----------------------------------------------------------

    @property
    def database(self) -> "Database":
        """The shared engine this session talks to."""
        return self._database

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit (or held-open implicit) transaction is open."""
        return self._transaction is not None

    # -- transaction API (usable directly, without SQL round trips) ----------

    def begin(self) -> None:
        """Open an explicit transaction (snapshot taken now)."""
        if self._transaction is not None:
            raise SqlExecutionError("a transaction is already in progress")
        transaction = Transaction(implicit=False)
        self._database._mvcc.begin_transaction(transaction)
        self._transaction = transaction

    def commit(self) -> None:
        """Commit the open transaction (no-op when none is open).

        On a durable database the transaction's redo batch is appended to
        the write-ahead log under the commit lock (so log order is commit
        order), and the commit then waits for the log to reach disk per
        the fsync policy *after* releasing it (so a slow fsync never
        blocks other sessions — that wait is where group commit batches
        concurrent committers into one fsync).
        """
        transaction = self._transaction
        if transaction is None:
            return
        transaction.savepoints.clear()
        self._commit_and_release(transaction)

    def rollback(self) -> None:
        """Roll back the open transaction (no-op when none is open)."""
        transaction = self._transaction
        if transaction is None:
            return
        self._abort_transaction(transaction)

    def _abort_transaction(self, transaction: Transaction) -> None:
        """Replay the undo journal, release row ownerships and unregister
        the transaction."""
        try:
            self._database._rollback_transaction(transaction)
        finally:
            self._transaction = None

    def prepare_transaction(self, gid: str) -> None:
        """Two-phase commit, phase one: detach the open transaction into
        the database's prepared registry under global id ``gid``.

        The transaction's redo batch (terminated by a PREPARE frame) is
        made durable, its row ownerships stay held, and the session is left
        with no open transaction — closing the connection can no longer
        roll it back.  Only :meth:`Database.commit_prepared` or
        :meth:`Database.rollback_prepared` (normally driven by the
        distributed coordinator's decision) finishes it.
        """
        transaction = self._transaction
        if transaction is None:
            raise SqlExecutionError(
                "PREPARE TRANSACTION requires an open transaction"
            )
        transaction.savepoints.clear()
        # Detach before handing over: on failure the database rolls the
        # transaction back itself, so the session must not own it anymore.
        self._transaction = None
        self._database._prepare_transaction(gid, transaction)

    def savepoint(self, name: str) -> None:
        """Define a savepoint inside the open transaction."""
        transaction = self._require_transaction("SAVEPOINT")
        transaction.set_savepoint(name)

    def rollback_to_savepoint(self, name: str) -> None:
        """Undo everything executed after savepoint ``name`` (which stays
        defined, as in standard SQL)."""
        transaction = self._require_transaction("ROLLBACK TO")
        position = transaction.find_savepoint(name)
        if position < 0:
            raise SqlExecutionError(f"no savepoint named {name!r}")
        transaction.undo.rollback_to(transaction.savepoints[position][1])
        del transaction.savepoints[position + 1:]

    def release_savepoint(self, name: str) -> None:
        """Drop savepoint ``name`` (and any defined after it), keeping the
        changes made since."""
        transaction = self._require_transaction("RELEASE")
        position = transaction.find_savepoint(name)
        if position < 0:
            raise SqlExecutionError(f"no savepoint named {name!r}")
        del transaction.savepoints[position:]

    def close(self) -> None:
        """Roll back any open transaction and release held locks."""
        self.rollback()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        # No lock can remain held past this point.

    # -- SQL interface -------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[object] = (),
        *,
        trace: Optional[TraceContext] = None,
    ) -> ResultSet:
        """Parse (with caching), plan and execute one SQL statement.

        ``trace`` carries an inbound distributed-trace context (decoded
        from the wire protocol's optional trailing field); locally
        originated statements get one when the database's tracing is
        enabled.  With no context and observability off this adds exactly
        one attribute check to the plain execution path.
        """
        database = self._database
        if trace is None and not database._observed:
            return self._execute_statement(sql, params, None)
        return self._execute_observed(sql, params, trace)

    def _execute_statement(
        self,
        sql: str,
        params: Sequence[object],
        obs: Optional[ActiveSpan],
    ) -> ResultSet:
        database = self._database
        if obs is None:
            cached, generation, _hit = database._cached_statement(sql)
        else:
            t0 = time.perf_counter()
            cached, generation, hit = database._cached_statement(sql)
            obs.phase("parse", time.perf_counter() - t0)
            if hit:
                obs.event("plan_cache_hit")
        statement = cached.statement
        if isinstance(statement, ast.TransactionStatement):
            database._count_statement()
            self._apply_transaction_statement(statement)
            return ResultSet(columns=[], rows=[])
        if isinstance(statement, ast.CheckpointStatement):
            database._count_statement()
            self._execute_checkpoint()
            return ResultSet(columns=[], rows=[])
        if isinstance(statement, (ast.SelectStatement, ast.ExplainStatement)):
            return self._execute_select(sql, params, cached, generation, obs)
        return self._execute_write(cached, params, obs)

    def _execute_observed(
        self,
        sql: str,
        params: Sequence[object],
        trace: Optional[TraceContext],
    ) -> ResultSet:
        """The instrumented execution path: span recording with per-phase
        timings, the statement-latency histogram and the slow-query log.
        Entered only for statements carrying an inbound trace context or on
        a database with tracing / slow-query logging switched on."""
        database = self._database
        context = trace
        if context is None and database._tracing.samples(
            database._next_trace_counter()
        ):
            context = new_root_context()
        span: Optional[ActiveSpan] = None
        if context is not None and context.sampled:
            span = database.trace_buffer.start_span(
                context, "statement", database.node_name
            )
            span.tag(sql=sql)
        self._stmt_obs = span
        self._stmt_mode = None
        error: Optional[BaseException] = None
        rowcount: Optional[int] = None
        t0 = time.perf_counter()
        try:
            result = self._execute_statement(sql, params, span)
            rowcount = result.rowcount
            return result
        except BaseException as exc:
            error = exc
            raise
        finally:
            self._stmt_obs = None
            duration_s = time.perf_counter() - t0
            database._statement_latency.observe(duration_s)
            if span is not None:
                if self._stmt_mode is not None:
                    span.tag(mode=self._stmt_mode)
                span.finish(error)
            database.slow_log.record(
                sql,
                duration_s * 1000.0,
                rows=rowcount,
                mode=self._stmt_mode,
                trace_id=context.trace_id if context is not None else None,
                error=(
                    f"{type(error).__name__}: {error}"
                    if error is not None
                    else None
                ),
            )

    def execute_many(self, sql: str, param_rows: Iterable[Sequence[object]]) -> int:
        """Execute the same DML statement for every parameter row inside one
        transaction; returns the total affected-row count.

        If any row fails, the whole batch is rolled back (when the session
        had no transaction open) or undone back to the batch start (when
        one was already open).  Like single statements, a batch that opened
        its own transaction is retried on a write-write conflict.
        """
        database = self._database
        controller = database._mvcc
        cached, _, _ = database._cached_statement(sql)
        statement = cached.statement
        param_rows = list(param_rows)
        attempt = 0
        while True:
            token = controller.begin_statement(self._transaction)
            transaction = self._transaction
            opened_here = transaction is None
            if opened_here:
                transaction = self._transaction = Transaction(
                    implicit=self.autocommit
                )
                controller.adopt_transaction(transaction)
            mark = transaction.undo.mark()
            total = 0
            try:
                for params in param_rows:
                    result = database._executor.execute(
                        statement, params, txn=transaction
                    )
                    database._count_statement()
                    total += result.rowcount
            except TransactionConflictError:
                transaction.undo.rollback_to(mark)
                if opened_here:
                    self._abort_transaction(transaction)
                    controller.end_statement(token)
                    attempt += 1
                    if attempt <= CONFLICT_RETRY_LIMIT:
                        controller.count_retry()
                        _conflict_backoff(attempt)
                        continue
                else:
                    controller.end_statement(token)
                raise
            except BaseException:
                transaction.undo.rollback_to(mark)
                if opened_here:
                    self._abort_transaction(transaction)
                controller.end_statement(token)
                raise
            # The gate is left before the auto-commit epilogue: the open
            # write transaction itself keeps the exclusive side out (DDL
            # and checkpoints drain write transactions too), and the
            # checkpoint trigger inside the epilogue must be able to drain
            # *this* statement.
            controller.end_statement(token)
            self._finish_write(transaction)
            controller.collect_garbage()
            return total

    # -- internals -----------------------------------------------------------

    def _execute_select(
        self,
        sql: str,
        params: Sequence[object],
        cached: _CachedStatement,
        generation: int,
        obs: Optional[ActiveSpan] = None,
    ) -> ResultSet:
        database = self._database
        controller = database._mvcc
        token = controller.begin_statement(self._transaction)
        try:
            # Concurrent DDL may have invalidated the entry fetched during
            # dispatch, and a stale plan would read a dropped table's
            # detached storage.  Invalidations bump the cache generation, so
            # an unchanged generation proves the entry is still current; on
            # a mismatch re-fetch inside the statement gate (DDL runs on
            # the exclusive side, so from here the entry is stable).
            if database._cache_generation != generation:
                cached, _, _ = database._cached_statement(sql)
            if obs is None:
                plan = database._ensure_plan(cached)
                result = database._executor.execute(
                    cached.statement, params, plan=plan
                )
            else:
                t0 = time.perf_counter()
                plan = database._ensure_plan(cached)
                obs.phase("plan", time.perf_counter() - t0)
                t0 = time.perf_counter()
                result = database._executor.execute(
                    cached.statement, params, plan=plan
                )
                obs.phase("execute", time.perf_counter() - t0)
            if plan is not None:
                self._stmt_mode = plan.mode
            database._count_statement()
            return ResultSet(
                columns=result.columns, rows=result.rows, rowcount=result.rowcount
            )
        finally:
            controller.end_statement(token)

    def _execute_write(
        self,
        cached: _CachedStatement,
        params: Sequence[object],
        obs: Optional[ActiveSpan] = None,
    ) -> ResultSet:
        database = self._database
        if isinstance(cached.statement, _DDL_STATEMENTS):
            return self._execute_ddl(cached)
        controller = database._mvcc
        attempt = 0
        while True:
            token = controller.begin_statement(self._transaction)
            transaction = self._transaction
            opened_here = transaction is None
            if opened_here:
                # Auto-commit wraps the statement in an implicit
                # transaction; a session with auto-commit off starts a
                # transaction that stays open until COMMIT/ROLLBACK (JDBC
                # semantics, no BEGIN round trip).
                transaction = self._transaction = Transaction(
                    implicit=self.autocommit
                )
                controller.adopt_transaction(transaction)
            mark = transaction.undo.mark()
            try:
                if obs is None:
                    result = database._executor.execute(
                        cached.statement, params, txn=transaction
                    )
                else:
                    t0 = time.perf_counter()
                    result = database._executor.execute(
                        cached.statement, params, txn=transaction
                    )
                    obs.phase("execute", time.perf_counter() - t0)
                database._count_statement()
            except TransactionConflictError:
                # Statement-level atomicity, then first-updater-wins: when
                # this statement opened its own transaction nothing of it
                # survives, so it can safely retry against a fresh
                # snapshot; inside an explicit transaction the conflict
                # propagates for the client to roll back and retry.
                transaction.undo.rollback_to(mark)
                if opened_here:
                    self._abort_transaction(transaction)
                    controller.end_statement(token)
                    attempt += 1
                    if attempt <= CONFLICT_RETRY_LIMIT:
                        controller.count_retry()
                        if obs is not None:
                            obs.event("conflict_retry")
                        _conflict_backoff(attempt)
                        continue
                else:
                    controller.end_statement(token)
                raise
            except BaseException:
                # Statement-level atomicity: undo this statement's changes
                # but keep an already-open transaction alive.
                transaction.undo.rollback_to(mark)
                if opened_here:
                    self._abort_transaction(transaction)
                controller.end_statement(token)
                raise
            # The gate is left before the auto-commit epilogue: the open
            # write transaction itself keeps the exclusive side out (DDL
            # and checkpoints drain write transactions too), and the
            # checkpoint trigger inside the epilogue must be able to drain
            # *this* statement.
            controller.end_statement(token)
            self._finish_write(transaction)
            controller.collect_garbage()
            return ResultSet(
                columns=result.columns, rows=result.rows, rowcount=result.rowcount
            )

    def _execute_ddl(self, cached: _CachedStatement) -> ResultSet:
        """DDL runs on the exclusive side of the statement gate: in-flight
        statements drain first, and no statement starts until it finishes.
        DDL is not transactional — it auto-commits at execution."""
        database = self._database
        if (
            database._durability is not None
            and self._transaction is not None
            and self._transaction.undo
        ):
            # DDL is logged at execution position but the transaction's row
            # operations only at COMMIT; letting DDL run after pending row
            # ops would make the log replay in a different order than live
            # execution (e.g. a unique index backfilled before the DELETE
            # that made it satisfiable), wedging recovery.  DDL on a
            # durable database therefore requires the transaction to have
            # no uncommitted row changes.
            raise SqlExecutionError(
                "DDL on a durable database cannot follow uncommitted row "
                "changes in the same transaction; COMMIT first"
            )
        with database._mvcc.exclusive(self._transaction):
            result = database._executor.execute(cached.statement, ())
            database._count_statement()
            # The catalog just changed: drop (again, after the change —
            # parsing already dropped once) every cached statement that
            # may have been planned between parse and execution.
            database._invalidate_cache()
            database._log_ddl(cached.statement)
        return ResultSet(
            columns=result.columns, rows=result.rows, rowcount=result.rowcount
        )

    def _finish_write(self, transaction: Transaction) -> None:
        if transaction.implicit:
            self._commit_and_release(transaction)

    def _commit_and_release(self, transaction: Transaction) -> None:
        """The commit epilogue shared by explicit COMMIT and implicit
        (auto-commit) transactions.

        Commit installation runs under the controller's commit lock: the
        WAL append (on a durable database) and the commit-stamp
        installation happen atomically with respect to other commits, so
        log order is commit-stamp order and no snapshot can observe a
        half-installed commit.  The wait for the disk happens *after*
        releasing the lock, so a slow fsync never blocks other sessions —
        that wait is where group commit batches concurrent committers into
        one fsync.
        """
        database = self._database
        controller = database._mvcc
        durability = database._durability
        ticket = None
        if transaction.write_set:
            with controller.commit_lock:
                if durability is not None and transaction.undo:
                    try:
                        ticket = durability.log_commit(transaction.undo.entries())
                    except BaseException:
                        # The commit record never reached the log, so the
                        # transaction cannot be durable: roll it back
                        # (restoring the in-memory state to match).
                        self._abort_transaction(transaction)
                        raise
                stamp = controller.allocate_commit_stamp()
                for table, row_id in transaction.write_set:
                    table.install_commit(row_id, transaction, stamp)
                controller.publish_commit(stamp)
            transaction.write_set.clear()
        transaction.undo.clear()
        self._transaction = None
        controller.end_transaction(transaction, committed=True)
        controller.collect_garbage()
        if ticket is not None:
            obs = self._stmt_obs
            if obs is None:
                durability.sync(ticket)
            else:
                t0 = time.perf_counter()
                durability.sync(ticket)
                obs.phase("wal_fsync", time.perf_counter() - t0)
            database._maybe_checkpoint()

    def _execute_checkpoint(self) -> None:
        """Run a CHECKPOINT statement issued on this session.

        Disallowed inside an explicit transaction: the session would hold
        uncommitted (in-place) changes that the snapshot must not contain.
        """
        if self.in_transaction:
            raise SqlExecutionError(
                "CHECKPOINT cannot run inside an open transaction"
            )
        self._database.checkpoint()

    def _apply_transaction_statement(self, statement: ast.TransactionStatement) -> None:
        action = statement.action
        if action == "BEGIN":
            self.begin()
        elif action == "COMMIT":
            self.commit()
        elif action == "ROLLBACK":
            self.rollback()
        elif action == "SAVEPOINT":
            self.savepoint(statement.savepoint or "")
        elif action == "ROLLBACK TO":
            self.rollback_to_savepoint(statement.savepoint or "")
        elif action == "RELEASE":
            self.release_savepoint(statement.savepoint or "")
        else:  # pragma: no cover - parser emits only the actions above
            raise SqlExecutionError(f"unknown transaction action {action!r}")

    def _require_transaction(self, action: str) -> Transaction:
        if self._transaction is None:
            raise SqlExecutionError(f"{action} requires an open transaction")
        return self._transaction

class Database:
    """An in-memory SQL database.

    Thread safety: multi-version concurrency control.  Statements from any
    number of sessions run concurrently — readers resolve row visibility
    against their snapshot and never block — while the MVCC controller's
    exclusive gate briefly drains in-flight statements for DDL, checkpoints
    and bulk loads.  Use :meth:`session` to get a per-connection
    :class:`Session` with its own transaction context; the ``execute``
    family on the Database itself runs through a shared default auto-commit
    session for convenience.
    """

    def __init__(
        self,
        planner_options: PlannerOptions | None = None,
        statement_cache_size: int = 256,
        data_dir: str | None = None,
        durability: DurabilityOptions | None = None,
        *,
        node_name: str = "engine",
        tracing: TracingOptions | None = None,
        metrics: MetricsRegistry | None = None,
        slow_query_ms: float | None = None,
        slow_query_sink=None,
    ) -> None:
        # Observability first: the metrics registry must exist before the
        # subsystems that record into it (columnar metrics, durability).
        #: Name this engine's spans and slow-log records carry; servers set
        #: it to their node name so cross-node traces attribute correctly.
        self.node_name = node_name
        #: The unified metrics registry every counter of this engine lives
        #: in (or is bridged into via collectors); shareable so a server
        #: can merge engine and wire metrics into one scrape.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracing = tracing if tracing is not None else TracingOptions()
        #: Ring buffer of finished spans recorded by this node.
        self.trace_buffer = TraceBuffer(self._tracing.buffer_size)
        #: Structured slow-query log (disabled unless ``slow_query_ms``).
        self.slow_log = SlowQueryLog(
            slow_query_ms, sink=slow_query_sink, node=node_name
        )
        # The single hot-path flag: statements take the instrumented path
        # only when it is set (or they carry an inbound trace context).
        self._observed = self._tracing.enabled or self.slow_log.enabled
        self._trace_counter = 0
        self._statement_latency = self.metrics.histogram(
            "statement_latency_seconds"
        )
        self._catalog = Catalog()
        self._tables: dict[str, TableData] = {}
        self._mvcc = MvccController()
        # Two-phase commit: live prepared transactions (detached from their
        # sessions), redo batches recovered in doubt from the log, and the
        # decisions already applied (for idempotent coordinator retries).
        self._prepared: dict[str, Transaction] = {}
        self._recovered_prepared: dict[str, list] = {}
        self._decided_gids: dict[str, str] = {}
        self._prepared_lock = threading.Lock()
        # Durability: with a data_dir the manager recovers the previous
        # state into the (still empty) catalog/tables — latest snapshot
        # plus write-ahead-log replay — and opens the live log.  Without
        # one the database is purely in-memory and the durable code paths
        # reduce to a None check.
        self._durability: Optional[DurabilityManager] = None
        if data_dir is not None:
            self._durability = DurabilityManager(
                data_dir,
                durability or DurabilityOptions(),
                self._catalog,
                self._tables,
            )
            # Recovery built raw tables (no versioning — everything it
            # loads is committed); attach the controller now so live
            # statements run them through the MVCC read/write paths.
            for data in self._tables.values():
                data.attach_mvcc(self._mvcc)
            # Transactions prepared before a crash come back in doubt; the
            # coordinator resolves them through commit/rollback_prepared.
            info = self._durability.recovery_info
            self._recovered_prepared.update(info.in_doubt)
            self._decided_gids.update(info.decided_gids)
        elif durability is not None:
            raise SqlExecutionError(
                "durability options require a data_dir"
            )
        self._planner_options = planner_options or PlannerOptions()
        # Engine-wide columnar execution counters; shared by every Executor
        # this database builds so stats() survives option changes.  Backed
        # by the unified registry so they appear in the scrape too.
        self._columnar_metrics = ColumnarMetrics(registry=self.metrics)
        self._executor = Executor(
            self._catalog,
            self._tables,
            self._planner_options,
            mvcc=self._mvcc,
            columnar_metrics=self._columnar_metrics,
        )
        # LRU statement cache: parsed statement + plan, keyed by
        # (SQL text, planner-options identity).  Invalidated wholesale on
        # DDL and per-entry when table statistics drift (see _ensure_plan).
        self._statement_cache: OrderedDict[
            tuple[str, tuple], _CachedStatement
        ] = OrderedDict()
        self._statement_cache_size = max(0, statement_cache_size)
        # Bumped on every cache invalidation (DDL, option changes) so
        # readers can prove a dispatched entry is still current without
        # re-fetching it (see Session._execute_select).
        self._cache_generation = 0
        self._options_key: tuple = self._planner_options.cache_key()
        self._cache_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        #: Number of statements executed; used by tests and benchmarks to
        #: verify how many round-trips a code path performs.
        self.statements_executed = 0
        #: Statement-cache hit/miss counters and the number of times a
        #: SELECT was (re)planned; benchmarks and tests read these to
        #: observe plan reuse and invalidation.
        self.statement_cache_hits = 0
        self.statement_cache_misses = 0
        self.plans_computed = 0
        # One default session per thread: Session objects are not
        # thread-safe, so the Database.execute facade must not share one
        # session's transaction/lock state across threads.
        self._default_sessions = threading.local()
        # Bridge the engine's pre-existing counters into the registry as
        # pull-based collectors: nothing on the hot path changes, but one
        # scrape sees everything.
        self.metrics.collect("engine", self._engine_counters)
        self.metrics.collect("mvcc", self._mvcc.stats)
        self.metrics.collect("trace_buffer", self.trace_buffer.stats)
        self.metrics.collect("slow_query_log", self.slow_log.stats)
        self.metrics.collect("durability", self.durability_info)

    # -- properties ----------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        """The table catalog."""
        return self._catalog

    @property
    def planner_options(self) -> PlannerOptions:
        """Planner switches (mutable; the plan cache is cleared on change via
        :meth:`set_planner_options`)."""
        return self._planner_options

    def set_planner_options(self, options: PlannerOptions) -> None:
        """Replace the planner options and invalidate cached plans."""
        with self._mvcc.exclusive():
            self._planner_options = options
            self._options_key = options.cache_key()
            self._executor = Executor(
                self._catalog,
                self._tables,
                options,
                mvcc=self._mvcc,
                columnar_metrics=self._columnar_metrics,
            )
            self._invalidate_cache()

    def set_statement_cache_size(self, size: int) -> None:
        """Resize (or, with 0, disable) the statement/plan cache."""
        size = max(0, size)
        with self._cache_lock:
            self._statement_cache_size = size
            while len(self._statement_cache) > size:
                self._statement_cache.popitem(last=False)

    def statement_cache_info(self) -> dict[str, int]:
        """Cache observability: hits, misses, plans computed, entries."""
        with self._cache_lock:
            return {
                "hits": self.statement_cache_hits,
                "misses": self.statement_cache_misses,
                "plans_computed": self.plans_computed,
                "entries": len(self._statement_cache),
                "size": self._statement_cache_size,
            }

    def stats(self) -> dict[str, object]:
        """One engine-wide statistics document.

        Aggregates the counters the network server's SERVER_STATS frame
        ships to remote clients: statements executed, statement-cache
        behaviour, per-table row counts, the MVCC concurrency counters
        (active transactions, conflicts, retries, snapshot ages, garbage
        collection) and (on a durable engine) the durability counters.
        """
        token = self._mvcc.begin_statement()
        try:
            tables = {
                name: len(data) for name, data in self._tables.items()
            }
            columnar: dict[str, object] = dict(self._columnar_metrics.snapshot())
            columnar["column_rebuilds"] = sum(
                data.column_rebuilds for data in self._tables.values()
            )
            columnar["column_patches"] = sum(
                data.column_patches for data in self._tables.values()
            )
        finally:
            self._mvcc.end_statement(token)
        tracing = dict(self.trace_buffer.stats())
        tracing["enabled"] = self._tracing.enabled
        return {
            "statements_executed": self.statements_executed,
            "statement_cache": self.statement_cache_info(),
            "tables": tables,
            "mvcc": self._mvcc.stats(),
            "columnar": columnar,
            "durable": self.durable,
            "durability": self.durability_info(),
            "prepared_transactions": len(self.prepared_gids()),
            "tracing": tracing,
            "slow_query_log": self.slow_log.stats(),
        }

    # -- observability --------------------------------------------------------

    @property
    def tracing(self) -> TracingOptions:
        """This node's tracing options (see :meth:`set_tracing`)."""
        return self._tracing

    def set_tracing(self, options: TracingOptions) -> None:
        """Switch tracing on or off at runtime.  Already-buffered spans are
        kept; the buffer is resized only if the new size differs."""
        self._tracing = options
        if options.buffer_size != (self.trace_buffer.stats()["capacity"]):
            self.trace_buffer = TraceBuffer(options.buffer_size)
        self._observed = options.enabled or self.slow_log.enabled

    def set_slow_query_threshold(self, threshold_ms: float | None) -> None:
        """Change (or with None, disable) the slow-query threshold."""
        self.slow_log.threshold_ms = threshold_ms
        self._observed = self._tracing.enabled or self.slow_log.enabled

    def traces(self, trace_id: str | None = None) -> list[dict]:
        """Spans recorded by **this node** (as dicts, oldest first),
        optionally filtered by trace id.  Distributed front ends
        (the sharding coordinator, the replicated pool) override/extend
        this by merging the buffers of every node they talk to."""
        return self.trace_buffer.spans(trace_id)

    def trace_ids(self) -> list[str]:
        """Distinct trace ids currently buffered, oldest first."""
        return self.trace_buffer.trace_ids()

    def slow_queries(self, limit: int | None = None) -> list[dict]:
        """The most recent slow-query records, oldest first."""
        return self.slow_log.recent(limit)

    def render_metrics(self) -> str:
        """The unified registry in Prometheus text exposition format."""
        return self.metrics.render_prometheus()

    def _engine_counters(self) -> dict[str, object]:
        info = self.statement_cache_info()
        return {
            "statements_executed": self.statements_executed,
            "statement_cache_hits": info["hits"],
            "statement_cache_misses": info["misses"],
            "statement_cache_entries": info["entries"],
            "plans_computed": info["plans_computed"],
        }

    def _next_trace_counter(self) -> int:
        with self._counter_lock:
            self._trace_counter += 1
            return self._trace_counter

    # -- durability ----------------------------------------------------------

    @property
    def data_dir(self) -> str | None:
        """Directory backing this database, or None when purely in-memory."""
        return self._durability.data_dir if self._durability is not None else None

    @property
    def durable(self) -> bool:
        """Whether this database persists through a write-ahead log."""
        return self._durability is not None

    def durability_info(self) -> dict[str, object]:
        """Durability counters (epoch, log bytes, syncs, recovery stats);
        empty for an in-memory database."""
        return self._durability.info() if self._durability is not None else {}

    @property
    def durability_manager(self):
        """The :class:`DurabilityManager`, or None when in-memory (the
        replication streamer tails its log files directly)."""
        return self._durability

    def wal_position(self) -> tuple[int, int]:
        """The end-of-log ``(epoch, offset)`` LSN; ``(0, 0)`` in-memory."""
        if self._durability is None:
            return (0, 0)
        return self._durability.wal_position()

    def statement_is_read_only(self, sql: str) -> bool:
        """Whether ``sql`` cannot modify data (SELECT/EXPLAIN, or pure
        transaction control).  Read-only replica servers gate writes on
        this; it reuses the parse cache so the check costs a dict hit."""
        cached, _generation, _hit = self._cached_statement(sql)
        return isinstance(
            cached.statement,
            (ast.SelectStatement, ast.ExplainStatement, ast.TransactionStatement),
        )

    def checkpoint(self) -> bool:
        """Snapshot all tables and truncate the write-ahead log.

        Returns False (a no-op) on an in-memory database.  Takes the
        exclusive side of the statement gate (draining in-flight statements
        and other threads' write transactions), so the snapshot sees only
        committed state.  Raises when a write transaction remains open
        after the drain: the gate exempts same-thread transactions (the
        historical reentrancy), so a sibling session's uncommitted
        (in-place) changes could otherwise reach the snapshot — and a
        later rollback would then be resurrected by recovery.

        Also refused while any prepared (in-doubt) transaction exists: its
        uncommitted state must not reach the snapshot, and the checkpoint
        would delete the log epoch holding its PREPARE batch.  The check
        runs *before* the exclusive gate because a live prepared
        transaction stays registered as an open write transaction — the
        gate would wait on it forever instead of failing fast.
        """
        durability = self._durability
        if durability is None:
            return False
        if self.prepared_gids():
            raise SqlExecutionError(
                "CHECKPOINT requires no prepared (in-doubt) transaction"
            )
        with self._mvcc.exclusive():
            if self._mvcc.has_open_write_transactions():
                raise SqlExecutionError(
                    "CHECKPOINT requires no open write transaction"
                )
            if self.prepared_gids():
                raise SqlExecutionError(
                    "CHECKPOINT requires no prepared (in-doubt) transaction"
                )
            durability.checkpoint()
        return True

    # -- two-phase commit ------------------------------------------------------

    def prepared_gids(self) -> list[str]:
        """Global ids of every prepared transaction awaiting a decision —
        live ones plus batches recovered in doubt from the log.  The
        coordinator's LIST_PREPARED verb serves exactly this."""
        with self._prepared_lock:
            return sorted(set(self._prepared) | set(self._recovered_prepared))

    def _prepare_transaction(self, gid: str, transaction: Transaction) -> None:
        """Phase one: register ``transaction`` under ``gid`` and make its
        redo batch durable, terminated by a PREPARE frame.

        The transaction keeps its row ownerships (so conflicting writers
        still lose to it) but no longer belongs to any session.  On any
        failure it is rolled back completely — a coordinator that never
        hears PREPARE-ok presumes abort.
        """
        with self._prepared_lock:
            duplicate = (
                gid in self._prepared
                or gid in self._recovered_prepared
                or gid in self._decided_gids
            )
            if not duplicate:
                self._prepared[gid] = transaction
        if duplicate:
            self._rollback_transaction(transaction)
            raise SqlExecutionError(
                f"global transaction {gid!r} already exists"
            )
        durability = self._durability
        ticket = None
        if durability is not None:
            try:
                # Under the commit lock so the batch lands in commit order
                # relative to concurrent commits (the replication stream
                # replays log order).  Logged even when the write set is
                # empty: a read-only participant's PREPARE must survive a
                # crash, or the coordinator's commit retry would see an
                # unknown gid and report a lost transaction.
                with self._mvcc.commit_lock:
                    ticket = durability.log_prepare(
                        gid, transaction.undo.entries()
                    )
            except BaseException:
                with self._prepared_lock:
                    self._prepared.pop(gid, None)
                self._rollback_transaction(transaction)
                raise
        if ticket is not None:
            durability.sync(ticket)

    def commit_prepared(self, gid: str) -> None:
        """Phase two, COMMIT: install a prepared transaction.

        Idempotent for gids already committed (a coordinator retries its
        decision after failures); raises for unknown or already-aborted
        gids.  Works both for live prepared transactions and for batches
        recovered in doubt after a restart.
        """
        with self._prepared_lock:
            transaction = self._prepared.pop(gid, None)
            recovered = None
            if transaction is None:
                recovered = self._recovered_prepared.pop(gid, None)
                if recovered is None:
                    decision = self._decided_gids.get(gid)
                    if decision == "commit":
                        return
                    if decision == "abort":
                        raise SqlExecutionError(
                            f"prepared transaction {gid!r} was already aborted"
                        )
                    raise SqlExecutionError(
                        f"unknown prepared transaction {gid!r}"
                    )
            self._decided_gids[gid] = "commit"
        controller = self._mvcc
        durability = self._durability
        ticket = None
        if transaction is not None:
            with controller.commit_lock:
                if durability is not None:
                    ticket = durability.log_commit_prepared(gid)
                stamp = controller.allocate_commit_stamp()
                for table, row_id in transaction.write_set:
                    table.install_commit(row_id, transaction, stamp)
                controller.publish_commit(stamp)
            transaction.write_set.clear()
            transaction.undo.clear()
            controller.end_transaction(transaction, committed=True)
            controller.collect_garbage()
        else:
            # A recovered batch holds raw redo records, not live row
            # ownerships: replay it like recovery would, under the
            # exclusive gate so the rows appear atomically.
            from repro.sqlengine.durability.recovery import _apply

            with controller.exclusive():
                for record in recovered:
                    _apply(record, self._tables)
            if durability is not None:
                ticket = durability.log_commit_prepared(gid)
        if ticket is not None:
            durability.sync(ticket)

    def rollback_prepared(self, gid: str) -> None:
        """Phase two, ABORT: discard a prepared transaction.

        Presumed abort makes this liberal: unknown and already-aborted gids
        succeed silently (the coordinator aborts anything it has no commit
        record for); only a gid that already *committed* raises.
        """
        with self._prepared_lock:
            transaction = self._prepared.pop(gid, None)
            recovered = None
            if transaction is None:
                recovered = self._recovered_prepared.pop(gid, None)
                if recovered is None:
                    if self._decided_gids.get(gid) == "commit":
                        raise SqlExecutionError(
                            f"prepared transaction {gid!r} was already committed"
                        )
                    return
            self._decided_gids[gid] = "abort"
        if transaction is not None:
            self._rollback_transaction(transaction)
        durability = self._durability
        if durability is not None:
            durability.sync(durability.log_abort_prepared(gid))

    def adopt_recovered_prepared(self, gid: str, records: list) -> None:
        """Register a redo batch as an in-doubt prepared transaction.

        Used by a promoted replica: prepared batches it saw over the
        replication stream become resolvable through
        :meth:`commit_prepared` / :meth:`rollback_prepared`, so a
        coordinator's decision survives the primary it was prepared on.
        """
        with self._prepared_lock:
            if gid in self._decided_gids or gid in self._prepared:
                return
            self._recovered_prepared[gid] = list(records)
        if self._durability is not None:
            # Re-log the batch so the adopted in-doubt state survives a
            # crash of *this* node too (the batch was only durable on the
            # node it was originally prepared on).
            with self._mvcc.commit_lock:
                ticket = self._durability.log_adopted_prepare(gid, records)
            self._durability.sync(ticket)

    def _rollback_transaction(self, transaction: Transaction) -> None:
        """Replay the undo journal, release row ownerships and unregister
        ``transaction`` (shared by session rollback and 2PC abort)."""
        controller = self._mvcc
        try:
            transaction.undo.rollback_to(0)
            for table, row_id in reversed(transaction.write_set):
                table.release_ownership(row_id, transaction)
        finally:
            transaction.write_set.clear()
            controller.end_transaction(transaction, committed=False)
            controller.collect_garbage()

    def make_durable(
        self, data_dir: str, durability: DurabilityOptions | None = None
    ) -> None:
        """Attach a write-ahead log to a previously in-memory database.

        The promotion path: a replica's engine is in-memory while it
        follows the primary, and promotion hands it a fresh ``data_dir`` so
        it can survive its own crash and be followed in turn.  The current
        state is checkpointed immediately (snapshot + fresh log epoch), so
        from this call on the database recovers like any other durable one.
        ``data_dir`` must be empty or absent — recovering somebody else's
        files into a populated engine would interleave two histories.
        """
        if self._durability is not None:
            raise SqlExecutionError("database is already durable")
        if os.path.isdir(data_dir) and os.listdir(data_dir):
            raise SqlExecutionError(
                f"make_durable requires an empty data_dir, {data_dir!r} is not"
            )
        with self._mvcc.exclusive():
            if self._mvcc.has_open_write_transactions():
                raise SqlExecutionError(
                    "make_durable requires no open write transaction"
                )
            # The dir was verified empty, so the manager's recovery pass
            # finds nothing and leaves the live catalog/tables untouched.
            manager = DurabilityManager(
                data_dir,
                durability or DurabilityOptions(),
                self._catalog,
                self._tables,
            )
            manager.checkpoint()
            self._durability = manager

    def close(self) -> None:
        """Flush and close the durability layer (no-op when in-memory).

        Deliberately does not checkpoint: a clean close and a crash must
        recover identically, so closing only makes the log durable.
        """
        if self._durability is not None:
            self._durability.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _maybe_checkpoint(self) -> None:
        """Cut an automatic checkpoint when the log-size trigger fires.

        Silently deferred while any session holds an open write
        transaction (see :meth:`checkpoint`); the next qualifying commit
        re-fires the trigger.
        """
        durability = self._durability
        if durability is None or not durability.should_checkpoint():
            return
        if self.prepared_gids():
            # An in-doubt transaction pins its PREPARE batch's log epoch;
            # defer until the coordinator decides it.
            return
        hold = self._mvcc.try_exclusive_idle()
        if hold is None:
            return
        with hold:
            # Re-check under the gate: a concurrent committer may have cut
            # the checkpoint while this one waited, and snapshotting the
            # whole database again microseconds later would be pure waste.
            if durability.should_checkpoint():
                durability.checkpoint()

    def _log_ddl(self, statement: ast.Statement) -> None:
        """Append (and sync) the log record for an executed DDL statement.

        Called under the MVCC exclusive gate right after execution.  DDL is
        rare and auto-committed, so the sync happening before the gate is
        released is an acceptable simplification.
        """
        durability = self._durability
        if durability is None:
            return
        try:
            if isinstance(statement, ast.CreateTableStatement):
                ticket = durability.log_create_table(
                    self._catalog.table(statement.table)
                )
            elif isinstance(statement, ast.CreateIndexStatement):
                ticket = durability.log_create_index(
                    statement.table,
                    statement.name,
                    tuple(statement.columns),
                    statement.unique,
                    ordered=False,
                )
            elif isinstance(statement, ast.DropTableStatement):
                ticket = durability.log_drop_table(statement.table)
            else:  # pragma: no cover - _DDL_STATEMENTS lists exactly the above
                return
        except BaseException:
            # Compensate where possible so memory and the recovered state
            # cannot diverge.  An unlogged DROP TABLE cannot restore the
            # dropped data, so it is left asymmetric: recovery conservatively
            # resurrects the table.
            if isinstance(statement, ast.CreateTableStatement):
                self._catalog.drop_table(statement.table)
                self._tables.pop(statement.table.lower(), None)
            elif isinstance(statement, ast.CreateIndexStatement):
                data = self._tables.get(statement.table.lower())
                if data is not None:
                    data.drop_index(statement.name)
            raise
        durability.sync(ticket)

    # -- sessions ------------------------------------------------------------

    def session(self, autocommit: bool = True) -> Session:
        """Open a new session with its own transaction context."""
        return Session(self, autocommit=autocommit)

    @property
    def _default_session(self) -> Session:
        session = getattr(self._default_sessions, "session", None)
        if session is None:
            session = self._default_sessions.session = Session(self, autocommit=True)
        return session

    # -- SQL interface (default-session facade) ------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[object] = (),
        *,
        trace: Optional[TraceContext] = None,
    ) -> ResultSet:
        """Parse (with caching), plan and execute one SQL statement on the
        shared default auto-commit session."""
        return self._default_session.execute(sql, params, trace=trace)

    def execute_many(
        self, sql: str, param_rows: Iterable[Sequence[object]]
    ) -> int:
        """Execute the same statement for every parameter row; returns the
        total affected-row count."""
        return self._default_session.execute_many(sql, param_rows)

    def explain(self, sql: str) -> str:
        """Return the textual plan for a SELECT statement."""
        token = self._mvcc.begin_statement()
        try:
            cached, _, _ = self._cached_statement(sql)
            plan = self._ensure_plan(cached)
            if plan is None:
                return type(cached.statement).__name__
            return plan.explain()
        finally:
            self._mvcc.end_statement(token)

    def plan(self, sql: str) -> SelectPlan:
        """Parse and plan a SELECT **bypassing the statement cache**.

        Always replans, so benchmarks can time the parse+plan half of a
        round trip in isolation (the half the plan cache amortises away).
        """
        statement = parse_statement(sql)
        if isinstance(statement, ast.ExplainStatement):
            statement = statement.statement
        if not isinstance(statement, ast.SelectStatement):
            raise SqlExecutionError("only SELECT statements can be planned")
        token = self._mvcc.begin_statement()
        try:
            return self._executor.plan_select(statement)
        finally:
            self._mvcc.end_statement(token)

    def executescript(self, script: str) -> None:
        """Execute several semicolon-separated statements (DDL helper)."""
        for statement_text in _split_script(script):
            self.execute(statement_text)

    # -- bulk/native helpers -------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        """Register a table directly from a :class:`TableSchema`."""
        durability = self._durability
        with self._mvcc.exclusive():
            self._catalog.create_table(schema)
            data = TableData(schema)
            data.attach_mvcc(self._mvcc)
            self._tables[schema.name.lower()] = data
            self._invalidate_cache()
            try:
                ticket = (
                    durability.log_create_table(schema)
                    if durability is not None
                    else None
                )
            except BaseException:
                # The table never reached the log; unregister it so memory
                # and the recovered state cannot diverge.
                self._catalog.drop_table(schema.name)
                self._tables.pop(schema.name.lower(), None)
                raise
        if ticket is not None:
            durability.sync(ticket)

    def create_index(
        self,
        table: str,
        columns: Sequence[str],
        name: str | None = None,
        unique: bool = False,
        ordered: bool = False,
    ) -> None:
        """Create an index without going through SQL."""
        durability = self._durability
        with self._mvcc.exclusive():
            data = self.table_data(table)
            index_name = name or f"idx_{table.lower()}_{'_'.join(columns).lower()}"
            data.create_index(index_name, tuple(columns), unique=unique, ordered=ordered)
            self._invalidate_cache()
            try:
                ticket = (
                    durability.log_create_index(
                        data.schema.name, index_name, tuple(columns), unique, ordered
                    )
                    if durability is not None
                    else None
                )
            except BaseException:
                # The index never reached the log; drop it again so memory
                # and the recovered state cannot diverge.
                data.drop_index(index_name)
                raise
        if ticket is not None:
            durability.sync(ticket)

    def insert_rows(self, table: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-load rows (used by the TPC-W population generator).

        Rows must list a value for every column in schema order.  The load
        is non-transactional for the in-memory undo machinery (it bypasses
        the undo log), but on a durable database it is journalled as one
        committed transaction so a bulk-loaded population survives restart.
        """
        durability = self._durability
        ticket = None
        try:
            with self._mvcc.exclusive():
                schema = self._catalog.table(table)
                data = self._tables[schema.name.lower()]
                count = 0
                logged: list[tuple[int, tuple[object, ...]]] | None = (
                    [] if durability is not None else None
                )
                try:
                    for row in rows:
                        coerced = schema.coerce_row(row)
                        row_id = data.insert(coerced)
                        if logged is not None:
                            logged.append((row_id, coerced))
                        count += 1
                    if logged:
                        ticket = durability.log_bulk_insert(schema.name, logged)
                except BaseException:
                    if logged:
                        # Keep memory and log consistent on a durable
                        # engine: a failed load (bad row mid-stream, or the
                        # log append itself) must not leave rows visible
                        # that recovery would never reproduce.  Undone
                        # newest-first, exactly like transaction rollback.
                        for row_id, coerced in reversed(logged):
                            data.undo_insert(row_id, coerced)
                    raise
                return count
        finally:
            if ticket is not None:
                durability.sync(ticket)
                self._maybe_checkpoint()

    def table_data(self, table: str) -> TableData:
        """Direct access to a table's storage (tests and the ORM use this)."""
        schema = self._catalog.table(table)
        return self._tables[schema.name.lower()]

    def row_count(self, table: str) -> int:
        """Number of live rows in ``table``."""
        return len(self.table_data(table))

    # -- internals -----------------------------------------------------------

    def _count_statement(self) -> None:
        with self._counter_lock:
            self.statements_executed += 1

    def _invalidate_cache(self) -> None:
        with self._cache_lock:
            self._statement_cache.clear()
            self._cache_generation += 1

    def _cached_statement(
        self, sql: str
    ) -> tuple[_CachedStatement, int, bool]:
        """Parse ``sql`` with LRU caching keyed by (SQL text, planner
        options); returns the entry, the cache generation it belongs to,
        and whether it was a cache hit (tracing records the hit as a span
        event).  Plans are attached lazily by :meth:`_ensure_plan` under
        the appropriate lock."""
        with self._cache_lock:
            key = (sql, self._options_key)
            cached = self._statement_cache.get(key)
            if cached is not None:
                self._statement_cache.move_to_end(key)
                self.statement_cache_hits += 1
                return cached, self._cache_generation, True
            self.statement_cache_misses += 1
            statement = parse_statement(sql)
            cached = _CachedStatement(statement=statement, plan=None)
            if isinstance(statement, _DDL_STATEMENTS):
                # DDL changes the catalog: every cached statement and plan
                # may be stale, so the whole cache is dropped.
                self._statement_cache.clear()
                self._cache_generation += 1
            elif self._statement_cache_size > 0:
                self._statement_cache[key] = cached
                while len(self._statement_cache) > self._statement_cache_size:
                    self._statement_cache.popitem(last=False)
            return cached, self._cache_generation, False

    def _ensure_plan(self, cached: _CachedStatement) -> Optional[SelectPlan]:
        """Plan a cached SELECT on first execution (and replan on
        statistics drift).

        Called while holding the read (or write) lock so planning sees a
        stable catalog.  Two racing readers may both plan; the plans are
        equivalent and the attribute write is atomic, so the race is benign.
        """
        statement = cached.statement
        if isinstance(statement, ast.ExplainStatement):
            statement = statement.statement
        if not isinstance(statement, ast.SelectStatement):
            return None
        plan = cached.plan
        if plan is not None and self._plan_is_stale(plan):
            plan = None
        if plan is None:
            plan = self._executor.plan_select(statement)
            cached.plan = plan
            with self._counter_lock:
                self.plans_computed += 1
        return plan

    def _plan_is_stale(self, plan: SelectPlan) -> bool:
        """True when a referenced table's row count has drifted roughly 2x
        from the value the plan was costed with (small tables are damped so
        a handful of inserts does not thrash the cache)."""
        for table, planned in plan.stats_snapshot.items():
            data = self._tables.get(table)
            if data is None:
                return True
            current = len(data)
            low, high = (planned, current) if planned <= current else (current, planned)
            if high + 8 > 2 * (low + 8):
                return True
        return False


def _split_script(script: str) -> list[str]:
    """Split a script into statements on semicolons outside string literals."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in script:
        if ch == "'":
            in_string = not in_string
            current.append(ch)
        elif ch == ";" and not in_string:
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(ch)
    text = "".join(current).strip()
    if text:
        statements.append(text)
    return statements
