"""Transaction support for the in-memory SQL engine.

Two building blocks live here:

* :class:`UndoLog` — a per-transaction journal of inverse operations.  Every
  row mutation (INSERT/UPDATE/DELETE) records enough information to restore
  the row *and* every index entry exactly; rolling back replays the journal
  in reverse.  Savepoints are simply marks (offsets) into the journal.
* :class:`ReadWriteLock` — a shared/exclusive lock that lets read-only
  SELECT statements from different sessions run concurrently while writers
  get exclusive access.  The lock is reentrant per thread: the thread that
  holds the write lock may freely acquire it (or the read lock) again, which
  keeps single-threaded code using several sessions deadlock-free.

Sessions (see :class:`repro.sqlengine.engine.Session`) own one
:class:`UndoLog` per open transaction and acquire the database's
:class:`ReadWriteLock` around statement execution: read locks per SELECT,
and a write lock held from a transaction's first write until COMMIT or
ROLLBACK so concurrent sessions never observe a transaction half-applied.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sqlengine.storage import Row, TableData


class UndoLog:
    """Journal of inverse row operations for one transaction.

    Entries are appended by the executor as it mutates tables and replayed
    in reverse by :meth:`rollback_to`.  A *mark* is an offset into the
    journal: ``rollback_to(mark)`` undoes everything recorded after the mark
    was taken, which implements both statement-level atomicity (mark taken
    before each statement) and savepoints (mark taken at SAVEPOINT).
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[tuple] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    # -- recording ----------------------------------------------------------

    def record_insert(self, table: "TableData", row_id: int, row: "Row") -> None:
        """Record that ``row`` was inserted at ``row_id``."""
        self._entries.append(("insert", table, row_id, row))

    def record_delete(self, table: "TableData", row_id: int, row: "Row") -> None:
        """Record that ``row`` is about to be deleted from ``row_id``."""
        self._entries.append(("delete", table, row_id, row))

    def record_update(
        self, table: "TableData", row_id: int, old_row: "Row", new_row: "Row"
    ) -> None:
        """Record that ``row_id`` is about to change from ``old_row`` to
        ``new_row`` (both are needed to repair indexes on rollback)."""
        self._entries.append(("update", table, row_id, old_row, new_row))

    # -- reading ------------------------------------------------------------

    def entries(self) -> list[tuple]:
        """The surviving journal entries, oldest first.

        Because statement failures and savepoint rollbacks pop the entries
        they undo, what remains at commit time is exactly the transaction's
        net-effective operation sequence — the durability layer reads it to
        derive the redo batch it appends to the write-ahead log, so the
        write path pays no second journal.
        """
        return self._entries

    # -- marks and rollback -------------------------------------------------

    def mark(self) -> int:
        """Current journal position (usable with :meth:`rollback_to`)."""
        return len(self._entries)

    def rollback_to(self, mark: int = 0) -> None:
        """Undo every operation recorded after ``mark``, newest first."""
        while len(self._entries) > mark:
            entry = self._entries.pop()
            kind = entry[0]
            if kind == "insert":
                _, table, row_id, row = entry
                table.undo_insert(row_id, row)
            elif kind == "delete":
                _, table, row_id, row = entry
                table.undo_delete(row_id, row)
            else:  # update
                _, table, row_id, old_row, new_row = entry
                table.undo_update(row_id, old_row, new_row)

    def clear(self) -> None:
        """Discard the journal (transaction committed)."""
        self._entries.clear()


class Transaction:
    """State of one open transaction: its undo journal and savepoints.

    ``implicit`` transactions wrap a single auto-commit statement and end
    as soon as it does; explicit transactions stay open until COMMIT or
    ROLLBACK.  Savepoints are (name, journal mark) pairs; a name may be
    reused, in which case the most recent definition wins.
    """

    __slots__ = ("undo", "savepoints", "implicit")

    def __init__(self, implicit: bool = False) -> None:
        self.undo = UndoLog()
        self.savepoints: list[tuple[str, int]] = []
        self.implicit = implicit

    def set_savepoint(self, name: str) -> None:
        """Define (or redefine) a savepoint at the current journal mark."""
        self.savepoints.append((name.lower(), self.undo.mark()))

    def find_savepoint(self, name: str) -> int:
        """Index into ``savepoints`` of the most recent definition of
        ``name``; -1 if the savepoint does not exist."""
        lowered = name.lower()
        for position in range(len(self.savepoints) - 1, -1, -1):
            if self.savepoints[position][0] == lowered:
                return position
        return -1


class ReadWriteLock:
    """A shared/exclusive lock, reentrant per thread.

    Many readers may hold the lock simultaneously; a writer waits for all
    readers to drain and then excludes everyone else.  Waiting writers block
    new readers so writers cannot starve.  The thread currently holding the
    write lock passes straight through further acquisitions (read or write),
    so a session that holds a transaction's write lock can keep issuing
    statements — and other sessions *on the same thread* are not deadlocked
    by it, preserving the engine's historical single-threaded behaviour.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer: int | None = None
        self._writer_depth = 0
        self._waiting_writers = 0

    # -- read side ----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                self._writer_depth += 1
                return
            while self._writer is not None or self._waiting_writers:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                self._writer_depth -= 1
                return
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    # -- write side ---------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._condition.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._condition:
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._condition.notify_all()
