"""Transaction support for the in-memory SQL engine: MVCC snapshot isolation.

Three building blocks live here:

* :class:`UndoLog` — a per-transaction journal of inverse operations.  Every
  row mutation (INSERT/UPDATE/DELETE) records enough information to restore
  the row *and* every index entry exactly; rolling back replays the journal
  in reverse.  Savepoints are simply marks (offsets) into the journal.
* :class:`MvccController` — the database-wide coordinator for multi-version
  concurrency control: it hands out snapshot timestamps, tracks the open
  snapshots (so garbage collection knows which committed versions are still
  reachable), serialises commit installation, counts conflicts/retries, and
  provides the *statement gate* — a lightweight shared/exclusive barrier
  that lets every SELECT and DML statement run concurrently while DDL,
  checkpoints and bulk loads briefly drain them for exclusive access.
* :class:`ReadWriteLock` — the engine's historical shared/exclusive lock,
  kept for callers that still want one (the engine itself no longer
  serialises writers behind it: readers resolve row visibility against
  their snapshot and never block, and writers only take short per-table
  latches; see :mod:`repro.sqlengine.storage`).

Sessions (see :class:`repro.sqlengine.engine.Session`) own one
:class:`Transaction` — undo journal, savepoints, snapshot and write set —
per open transaction.  Write-write conflicts surface as
:class:`~repro.sqlengine.errors.TransactionConflictError`: the first
updater of a row wins, the loser aborts (auto-commit statements are
retried with a fresh snapshot by the session itself).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sqlengine.storage import Row, TableData


class UndoLog:
    """Journal of inverse row operations for one transaction.

    Entries are appended by the executor as it mutates tables and replayed
    in reverse by :meth:`rollback_to`.  A *mark* is an offset into the
    journal: ``rollback_to(mark)`` undoes everything recorded after the mark
    was taken, which implements both statement-level atomicity (mark taken
    before each statement) and savepoints (mark taken at SAVEPOINT).
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[tuple] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    # -- recording ----------------------------------------------------------

    def record_insert(self, table: "TableData", row_id: int, row: "Row") -> None:
        """Record that ``row`` was inserted at ``row_id``."""
        self._entries.append(("insert", table, row_id, row))

    def record_delete(self, table: "TableData", row_id: int, row: "Row") -> None:
        """Record that ``row`` is about to be deleted from ``row_id``."""
        self._entries.append(("delete", table, row_id, row))

    def record_update(
        self, table: "TableData", row_id: int, old_row: "Row", new_row: "Row"
    ) -> None:
        """Record that ``row_id`` is about to change from ``old_row`` to
        ``new_row`` (both are needed to repair indexes on rollback)."""
        self._entries.append(("update", table, row_id, old_row, new_row))

    def record_versioned_update(
        self, table: "TableData", row_id: int, old_row: "Row", new_row: "Row"
    ) -> None:
        """Like :meth:`record_update`, but for a row mutated through the
        MVCC write path, whose index maintenance is relative to the row's
        *committed* version rather than unconditional (dead-version index
        keys stay behind for older snapshots until garbage collection)."""
        self._entries.append(("vupdate", table, row_id, old_row, new_row))

    def record_versioned_delete(
        self, table: "TableData", row_id: int, row: "Row"
    ) -> None:
        """Like :meth:`record_delete`, but for the MVCC write path."""
        self._entries.append(("vdelete", table, row_id, row))

    # -- reading ------------------------------------------------------------

    def entries(self) -> list[tuple]:
        """The surviving journal entries, oldest first.

        Because statement failures and savepoint rollbacks pop the entries
        they undo, what remains at commit time is exactly the transaction's
        net-effective operation sequence — the durability layer reads it to
        derive the redo batch it appends to the write-ahead log, so the
        write path pays no second journal.
        """
        return self._entries

    # -- marks and rollback -------------------------------------------------

    def mark(self) -> int:
        """Current journal position (usable with :meth:`rollback_to`)."""
        return len(self._entries)

    def rollback_to(self, mark: int = 0) -> None:
        """Undo every operation recorded after ``mark``, newest first.

        Each inverse operation runs under its table's latch so the replay
        never races concurrent writers mutating *other* rows of the same
        table's index structures.
        """
        while len(self._entries) > mark:
            entry = self._entries.pop()
            kind = entry[0]
            table = entry[1]
            with table.latch:
                if kind == "insert":
                    _, _, row_id, row = entry
                    table.undo_insert(row_id, row)
                elif kind == "delete":
                    _, _, row_id, row = entry
                    table.undo_delete(row_id, row)
                elif kind == "update":
                    _, _, row_id, old_row, new_row = entry
                    table.undo_update(row_id, old_row, new_row)
                elif kind == "vupdate":
                    _, _, row_id, old_row, new_row = entry
                    table.undo_versioned_update(row_id, old_row, new_row)
                else:  # vdelete
                    _, _, row_id, row = entry
                    table.undo_versioned_delete(row_id, row)

    def clear(self) -> None:
        """Discard the journal (transaction committed)."""
        self._entries.clear()


class Transaction:
    """State of one open transaction: undo journal, savepoints, snapshot.

    ``implicit`` transactions wrap a single auto-commit statement and end
    as soon as it does; explicit transactions stay open until COMMIT or
    ROLLBACK.  Savepoints are (name, journal mark) pairs; a name may be
    reused, in which case the most recent definition wins.

    MVCC state: ``snapshot`` is the commit stamp this transaction reads as
    of (assigned at BEGIN, or at the first statement for transactions the
    session opens implicitly); ``write_set`` lists every (table, row id)
    whose ownership the transaction acquired, in acquisition order —
    commit stamps exactly these rows, rollback releases them.
    """

    __slots__ = (
        "undo",
        "savepoints",
        "implicit",
        "snapshot",
        "write_set",
        "thread",
        "registered_write",
        "view_key",
    )

    def __init__(self, implicit: bool = False) -> None:
        self.undo = UndoLog()
        self.savepoints: list[tuple[str, int]] = []
        self.implicit = implicit
        self.snapshot: Optional[int] = None
        self.write_set: list[tuple["TableData", int]] = []
        self.thread = threading.get_ident()
        self.registered_write = False
        self.view_key: Optional[int] = None

    def set_savepoint(self, name: str) -> None:
        """Define (or redefine) a savepoint at the current journal mark."""
        self.savepoints.append((name.lower(), self.undo.mark()))

    def find_savepoint(self, name: str) -> int:
        """Index into ``savepoints`` of the most recent definition of
        ``name``; -1 if the savepoint does not exist."""
        lowered = name.lower()
        for position in range(len(self.savepoints) - 1, -1, -1):
            if self.savepoints[position][0] == lowered:
                return position
        return -1


class ReadWriteLock:
    """A shared/exclusive lock, reentrant per thread.

    Many readers may hold the lock simultaneously; a writer waits for all
    readers to drain and then excludes everyone else.  Waiting writers block
    new readers so writers cannot starve.  The thread currently holding the
    write lock passes straight through further acquisitions (read or write),
    so a session that holds a transaction's write lock can keep issuing
    statements — and other sessions *on the same thread* are not deadlocked
    by it, preserving the engine's historical single-threaded behaviour.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer: int | None = None
        self._writer_depth = 0
        self._waiting_writers = 0

    # -- read side ----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                self._writer_depth += 1
                return
            while self._writer is not None or self._waiting_writers:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                self._writer_depth -= 1
                return
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    # -- write side ---------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._condition.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._condition:
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._condition.notify_all()


class MvccController:
    """Database-wide coordinator for snapshot isolation.

    Responsibilities:

    * **Commit stamps and snapshots.**  ``last_committed`` is the stamp of
      the newest fully installed commit.  A statement (or transaction)
      snapshot is simply the value of ``last_committed`` when it starts;
      a committed version is visible to a snapshot ``s`` iff its begin
      stamp is ``<= s`` (see ``VersionEntry.visible`` in storage).
    * **Open-snapshot registry.**  Every running statement and every open
      explicit transaction registers its snapshot here so
      :meth:`min_active_snapshot` can bound garbage collection.
    * **The statement gate.**  A shared/exclusive barrier: statements
      enter shared (never blocking each other); DDL, checkpoints and bulk
      loads enter exclusive, draining in-flight statements first.  Write
      transactions open on *other* threads are drained too (they would
      otherwise hold uncommitted in-place rows across the exclusive
      section); same-thread ones are exempt, preserving the engine's
      historical single-threaded reentrancy.
    * **Commit installation.**  ``commit_lock`` serialises commits so WAL
      append order equals commit-stamp order and a commit becomes visible
      atomically (``last_committed`` is published only after every row of
      the write set has its stamps installed).
    * **Garbage collection.**  Committed-over versions queue up here and
      are pruned incrementally once no open snapshot can reach them.
    """

    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._last_committed = 0
        self._views: dict[int, tuple[int, float]] = {}
        self._next_view_key = 0
        self._write_txns: dict[Transaction, int] = {}
        self._active_statements = 0
        self._exclusive_thread: Optional[int] = None
        self._exclusive_depth = 0
        self._exclusive_waiters = 0
        self._local = threading.local()
        #: Serialises commit installation; WAL appends happen under it so
        #: log order is commit order (the fsync wait happens outside it).
        self.commit_lock = threading.Lock()
        self._gc_queue: deque[tuple["TableData", int]] = deque()
        self._stats_lock = threading.Lock()
        self._commits = 0
        self._aborts = 0
        self._conflicts = 0
        self._retries = 0
        self._versions_gced = 0

    # -- snapshots and visibility context ------------------------------------

    @property
    def last_committed(self) -> int:
        """Stamp of the newest fully installed commit."""
        return self._last_committed

    def read_context(self) -> tuple[int, Optional[Transaction]]:
        """The (snapshot, transaction) the current thread reads under.

        Set for the duration of each statement by :meth:`begin_statement`;
        outside any statement (direct ``TableData`` access from tests or
        tools) reads see the latest committed state.
        """
        context = getattr(self._local, "context", None)
        if context is None:
            return self._last_committed, None
        return context

    def _register_view(self, snapshot: int) -> int:
        key = self._next_view_key
        self._next_view_key += 1
        self._views[key] = (snapshot, time.monotonic())
        return key

    # -- the statement gate ---------------------------------------------------

    def begin_statement(self, transaction: Optional[Transaction] = None) -> tuple:
        """Enter the shared side of the gate and set the read context.

        Returns an opaque token for :meth:`end_statement`.  Statements of a
        write transaction pass waiting-exclusive requests (they must be able
        to finish so the drain terminates); everyone else yields to them.
        """
        me = threading.get_ident()
        with self._cv:
            if self._exclusive_thread == me:
                tracked = False
            else:
                while self._exclusive_thread is not None or (
                    self._exclusive_waiters
                    and (transaction is None or transaction not in self._write_txns)
                ):
                    self._cv.wait()
                self._active_statements += 1
                tracked = True
            if transaction is not None and transaction.snapshot is not None:
                snapshot = transaction.snapshot
                view_key = None  # covered by the transaction's own view
            else:
                snapshot = self._last_committed
                view_key = self._register_view(snapshot)
        previous = getattr(self._local, "context", None)
        self._local.context = (snapshot, transaction)
        return (view_key, tracked, previous)

    def end_statement(self, token: tuple) -> None:
        """Leave the gate and clear the read context."""
        view_key, tracked, previous = token
        self._local.context = previous
        with self._cv:
            if view_key is not None:
                del self._views[view_key]
            if tracked:
                self._active_statements -= 1
            if self._exclusive_waiters or self._exclusive_thread is not None:
                self._cv.notify_all()

    @contextmanager
    def exclusive(
        self, transaction: Optional[Transaction] = None
    ) -> Iterator[None]:
        """Exclusive side of the gate (DDL, checkpoints, bulk loads).

        Waits for in-flight statements to drain and for write transactions
        open on *other* threads to finish; write transactions on the
        calling thread (including ``transaction``) are exempt, matching the
        reentrancy of the historical write lock.  Reentrant per thread.
        """
        me = threading.get_ident()
        with self._cv:
            if self._exclusive_thread == me:
                self._exclusive_depth += 1
            else:
                self._exclusive_waiters += 1
                try:
                    while (
                        self._exclusive_thread is not None
                        or self._active_statements
                        or any(
                            thread != me for thread in self._write_txns.values()
                        )
                    ):
                        self._cv.wait()
                finally:
                    self._exclusive_waiters -= 1
                self._exclusive_thread = me
                self._exclusive_depth = 1
        try:
            yield
        finally:
            with self._cv:
                self._exclusive_depth -= 1
                if self._exclusive_depth == 0:
                    self._exclusive_thread = None
                    self._cv.notify_all()

    def try_exclusive_idle(self) -> "Optional[_ExclusiveHold]":
        """Acquire the exclusive gate only if no write transaction is open
        *anywhere*; returns None (without blocking on writers) otherwise.

        Used by the automatic checkpoint: it must never wait on an idle
        open transaction (which may belong to this very thread through a
        sibling session) and silently defers instead.
        """
        me = threading.get_ident()
        with self._cv:
            if self._exclusive_thread == me:
                return None  # re-entering exclusively is never a checkpoint
            self._exclusive_waiters += 1
            try:
                while self._exclusive_thread is not None or self._active_statements:
                    self._cv.wait()
            finally:
                self._exclusive_waiters -= 1
            if self._write_txns:
                self._cv.notify_all()
                return None
            self._exclusive_thread = me
            self._exclusive_depth = 1
        return _ExclusiveHold(self)

    def _release_exclusive(self) -> None:
        with self._cv:
            self._exclusive_depth -= 1
            if self._exclusive_depth == 0:
                self._exclusive_thread = None
                self._cv.notify_all()

    # -- transaction lifecycle -------------------------------------------------

    def begin_transaction(self, transaction: Transaction) -> None:
        """Assign a snapshot to an explicitly opened transaction and
        register it so garbage collection keeps its snapshot readable."""
        with self._cv:
            transaction.snapshot = self._last_committed
            transaction.view_key = self._register_view(transaction.snapshot)

    def adopt_transaction(self, transaction: Transaction) -> None:
        """Adopt a transaction the session opened mid-statement: it reads
        under the running statement's snapshot.  Non-implicit transactions
        outlive the statement, so they get their own snapshot view."""
        snapshot, _ = self.read_context()
        transaction.snapshot = snapshot
        if not transaction.implicit:
            with self._cv:
                transaction.view_key = self._register_view(snapshot)
        self._local.context = (snapshot, transaction)

    def register_write(self, transaction: Transaction) -> None:
        """Called by storage when a transaction takes its first row
        ownership; write transactions are what DDL/checkpoints drain."""
        if transaction.registered_write:
            return
        transaction.registered_write = True
        with self._cv:
            self._write_txns[transaction] = transaction.thread

    def has_open_write_transactions(self) -> bool:
        """Whether any transaction anywhere holds row ownerships.

        Checkpoints consult this *after* acquiring the exclusive gate: the
        gate only drains write transactions on other threads, so whatever
        remains belongs to sibling sessions on the calling thread — whose
        uncommitted in-place rows must not reach a snapshot.
        """
        with self._cv:
            return bool(self._write_txns)

    def end_transaction(self, transaction: Transaction, committed: bool) -> None:
        """Unregister a finished transaction and wake gate waiters."""
        with self._cv:
            self._write_txns.pop(transaction, None)
            if transaction.view_key is not None:
                self._views.pop(transaction.view_key, None)
                transaction.view_key = None
            transaction.registered_write = False
            if self._exclusive_waiters:
                self._cv.notify_all()
        with self._stats_lock:
            if committed:
                self._commits += 1
            else:
                self._aborts += 1

    # -- commit stamps ---------------------------------------------------------

    def allocate_commit_stamp(self) -> int:
        """Next commit stamp; call while holding :attr:`commit_lock`."""
        return self._last_committed + 1

    def publish_commit(self, stamp: int) -> None:
        """Make ``stamp`` visible to new snapshots; call while holding
        :attr:`commit_lock`, after every write-set row is installed."""
        self._last_committed = stamp

    # -- conflict accounting ---------------------------------------------------

    def count_conflict(self) -> None:
        """One write-write conflict was detected (the loser will abort)."""
        with self._stats_lock:
            self._conflicts += 1

    def count_retry(self) -> None:
        """One auto-commit statement is being retried after a conflict."""
        with self._stats_lock:
            self._retries += 1

    # -- garbage collection ----------------------------------------------------

    def enqueue_gc(self, table: "TableData", row_id: int) -> None:
        """Queue a committed-over row for version pruning."""
        self._gc_queue.append((table, row_id))

    def min_active_snapshot(self) -> int:
        """Oldest snapshot any open statement or transaction still reads;
        versions superseded at or before it are unreachable."""
        with self._cv:
            if not self._views:
                return self._last_committed
            return min(snapshot for snapshot, _ in self._views.values())

    def collect_garbage(self, limit: int = 128) -> int:
        """Prune up to ``limit`` queued rows' dead versions; rows still
        pinned by an old snapshot are re-queued.  Returns versions freed."""
        queue = self._gc_queue
        if not queue:
            return 0
        min_active = self.min_active_snapshot()
        collected = 0
        for _ in range(min(limit, len(queue))):
            try:
                table, row_id = queue.popleft()
            except IndexError:  # pragma: no cover - concurrent collector
                break
            done, pruned = table.collect_row(row_id, min_active)
            collected += pruned
            if not done:
                queue.append((table, row_id))
        if collected:
            with self._stats_lock:
                self._versions_gced += collected
        return collected

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Concurrency counters for ``Database.stats()`` / SERVER_STATS."""
        with self._cv:
            active_snapshots = len(self._views)
            active_write_transactions = len(self._write_txns)
            oldest = (
                min(started for _, started in self._views.values())
                if self._views
                else None
            )
        with self._stats_lock:
            commits = self._commits
            aborts = self._aborts
            conflicts = self._conflicts
            retries = self._retries
            versions_gced = self._versions_gced
        return {
            "last_committed": self._last_committed,
            "active_snapshots": active_snapshots,
            "active_write_transactions": active_write_transactions,
            "oldest_snapshot_age_s": (
                round(time.monotonic() - oldest, 6) if oldest is not None else 0.0
            ),
            "commits": commits,
            "aborts": aborts,
            "conflicts": conflicts,
            "retries": retries,
            "versions_gced": versions_gced,
            "gc_backlog": len(self._gc_queue),
        }


class _ExclusiveHold:
    """Context manager over an exclusive gate acquisition that already
    happened (see :meth:`MvccController.try_exclusive_idle`)."""

    __slots__ = ("_controller",)

    def __init__(self, controller: MvccController) -> None:
        self._controller = controller

    def __enter__(self) -> "_ExclusiveHold":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._controller._release_exclusive()
