"""Tokenizer for the SQL subset understood by the in-memory engine."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator

from repro.sqlengine.errors import SqlParseError


class TokenType(Enum):
    """Lexical categories produced by :class:`SqlLexer`."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    INTEGER = auto()
    FLOAT = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCTUATION = auto()
    PARAMETER = auto()
    EOF = auto()


#: Keywords recognised by the parser.  Everything else that looks like a word
#: is an identifier.  Matching is case-insensitive; keywords are normalised to
#: upper case.
KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT",
        "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET",
        "AS", "IS", "NULL", "TRUE", "FALSE",
        "INSERT", "INTO", "VALUES",
        "UPDATE", "SET", "DELETE",
        "CREATE", "TABLE", "INDEX", "ON", "PRIMARY", "KEY", "UNIQUE", "DROP",
        "INTEGER", "INT", "BIGINT", "DOUBLE", "FLOAT", "REAL", "NUMERIC",
        "VARCHAR", "CHAR", "TEXT", "BOOLEAN", "DATE", "TIMESTAMP",
        "JOIN", "INNER", "LEFT", "OUTER", "CROSS",
        "COUNT", "BETWEEN", "IN", "LIKE", "EXISTS", "GROUP", "HAVING",
        "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "WORK",
        "SAVEPOINT", "RELEASE", "TO",
        "EXPLAIN", "ANALYZE", "CHECKPOINT",
    }
)

_OPERATOR_CHARS = set("=<>!+-*/%")
_TWO_CHAR_OPERATORS = {"<=", ">=", "<>", "!=", "=="}
_PUNCTUATION = set("(),.;")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its position in the source text."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        """Return ``True`` if this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names


class SqlLexer:
    """Streaming tokenizer for SQL text.

    The lexer is deliberately permissive about whitespace and newlines and
    understands ``--`` line comments, single-quoted string literals with
    doubled-quote escaping, ``?`` positional parameters, numbers and the usual
    operators.
    """

    def __init__(self, text: str) -> None:
        self._text = text
        self._length = len(text)
        self._pos = 0

    def tokenize(self) -> list[Token]:
        """Tokenize the whole input, terminating with an EOF token."""
        return list(self._iter_tokens())

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= self._length:
                yield Token(TokenType.EOF, "", self._pos)
                return
            yield self._next_token()

    def _skip_whitespace_and_comments(self) -> None:
        text = self._text
        while self._pos < self._length:
            ch = text[self._pos]
            if ch.isspace():
                self._pos += 1
            elif ch == "-" and text[self._pos : self._pos + 2] == "--":
                end = text.find("\n", self._pos)
                self._pos = self._length if end == -1 else end + 1
            else:
                return

    def _next_token(self) -> Token:
        text = self._text
        start = self._pos
        ch = text[start]

        if ch == "?":
            self._pos += 1
            return Token(TokenType.PARAMETER, "?", start)
        if ch == "'":
            return self._lex_string(start)
        if ch.isdigit():
            return self._lex_number(start)
        if ch.isalpha() or ch == "_" or ch == '"':
            return self._lex_word(start)
        if ch in _OPERATOR_CHARS:
            two = text[start : start + 2]
            if two in _TWO_CHAR_OPERATORS:
                self._pos += 2
                return Token(TokenType.OPERATOR, two, start)
            self._pos += 1
            return Token(TokenType.OPERATOR, ch, start)
        if ch in _PUNCTUATION:
            self._pos += 1
            return Token(TokenType.PUNCTUATION, ch, start)
        raise SqlParseError(f"unexpected character {ch!r} at position {start}", start)

    def _lex_string(self, start: int) -> Token:
        text = self._text
        pos = start + 1
        chars: list[str] = []
        while pos < self._length:
            ch = text[pos]
            if ch == "'":
                if pos + 1 < self._length and text[pos + 1] == "'":
                    chars.append("'")
                    pos += 2
                    continue
                self._pos = pos + 1
                return Token(TokenType.STRING, "".join(chars), start)
            chars.append(ch)
            pos += 1
        raise SqlParseError("unterminated string literal", start)

    def _lex_number(self, start: int) -> Token:
        text = self._text
        pos = start
        seen_dot = False
        while pos < self._length:
            ch = text[pos]
            if ch.isdigit():
                pos += 1
            elif ch == "." and not seen_dot and pos + 1 < self._length and text[pos + 1].isdigit():
                seen_dot = True
                pos += 1
            else:
                break
        self._pos = pos
        value = text[start:pos]
        token_type = TokenType.FLOAT if seen_dot else TokenType.INTEGER
        return Token(token_type, value, start)

    def _lex_word(self, start: int) -> Token:
        text = self._text
        if text[start] == '"':
            end = text.find('"', start + 1)
            if end == -1:
                raise SqlParseError("unterminated quoted identifier", start)
            self._pos = end + 1
            return Token(TokenType.IDENTIFIER, text[start + 1 : end], start)
        pos = start
        while pos < self._length and (text[pos].isalnum() or text[pos] == "_"):
            pos += 1
        self._pos = pos
        word = text[start:pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, start)
        return Token(TokenType.IDENTIFIER, word, start)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize ``text`` and return the token list."""
    return SqlLexer(text).tokenize()
