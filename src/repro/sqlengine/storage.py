"""Row storage for the in-memory SQL engine, with MVCC version chains.

Each table's rows live in a :class:`TableData` instance: a dense list of row
tuples plus the indexes built over the table.  Row identifiers are stable
positions in the list; deleted rows are tombstoned (``None``) so identifiers
never move, which keeps index maintenance simple.

Concurrency model (when a :class:`~repro.sqlengine.transactions.MvccController`
is attached): ``_rows[row_id]`` always holds the row's *newest* content —
possibly an uncommitted write — and a side table ``_versions`` maps the row
ids that currently need more than that one version to a :class:`VersionEntry`
holding the writer that owns the row plus the chain of superseded committed
versions (newest first).  Readers resolve every row id against their
snapshot through the entry and **never block**; rows with no entry are
trivially committed.  Writers acquire row ownership (pushing the committed
content onto the chain) under a short per-table latch, and a write-write
conflict — the row is owned by another transaction, or was committed after
the writer's snapshot — aborts the second writer immediately
(first-updater-wins, which also makes the scheme deadlock-free: no writer
ever waits for a row).

Index maintenance is *deferred* for committed keys: when an update moves an
indexed key, the old key stays in the index until garbage collection proves
no open snapshot can still read the old version through it.  Lookups
therefore re-check the resolved row against the probe key.  The invariant:
an index contains exactly the keys of current rows, the keys of the calling
transaction's own uncommitted rows, and the keys of committed-over versions
not yet garbage-collected.

Without an attached controller (recovery replay, snapshot loading,
standalone tests) every operation degrades to the original single-version
behaviour, byte for byte.

**Column cache (vectorized execution).**  For the batch operators in
:mod:`repro.sqlengine.columnar` the table can materialise per-column value
arrays alongside the row store, on demand and per column (projection
pushdown: only the columns a query references are ever built).  The cache
is epoch-tracked: every row mutation bumps ``_data_epoch`` and records the
touched row id in a dirty set, and the next :meth:`columnar_scan_state`
call re-synchronises the arrays — by patching only the dirty rows into
*copies* of the cached arrays when few rows changed, or by dropping and
rebuilding when many did.  Published arrays are never mutated in place
(copy-on-write), so a batch scan that captured them under the latch can
keep reading them lock-free while writers proceed.  MVCC fast-path rule:
a scan that observes an empty ``_versions`` side table under the latch may
serve the arrays zero-copy to *any* open snapshot — the scan's registered
statement view pins the version entry of every commit newer than its
snapshot, so an empty side table proves all rows are universally visible.
Otherwise the scan patches a private copy, resolving exactly the rows with
version entries through :meth:`_visible_row`.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, Optional, TYPE_CHECKING

from repro.sqlengine.catalog import TableSchema, TableStatistics
from repro.sqlengine.errors import (
    SqlExecutionError,
    TransactionConflictError,
    UniqueViolationError,
)
from repro.sqlengine.indexes import HashIndex, Index, OrderedIndex, make_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sqlengine.transactions import MvccController, Transaction

Row = tuple[object, ...]

#: ``VersionEntry.begin`` value meaning "no committed version exists" —
#: the entry belongs to an uncommitted (or rolled-back) insert.
_ABSENT = -1

#: Sentinel "committed key" for a row with no committed version; unequal to
#: every real key, so the committed-key delta rules degrade to plain
#: insert/delete for uncommitted inserts.
_ABSENT_KEY = object()


class RowVersion:
    """One superseded committed version of a row.

    ``begin`` is the commit stamp that created this content; ``end`` the
    stamp that superseded it (``None`` while its successor is uncommitted).
    ``stale_keys`` lists the (index name, key) entries that exist in the
    indexes solely for this version and must be removed when it is pruned.
    """

    __slots__ = ("begin", "end", "row", "stale_keys")

    def __init__(self, begin: int, end: Optional[int], row: Optional[Row]) -> None:
        self.begin = begin
        self.end = end
        self.row = row
        self.stale_keys: list[tuple[str, object]] = []


class VersionEntry:
    """Concurrency state of one row id: its owner and version chain.

    ``owner`` is the transaction currently holding the row's write
    ownership (None when the newest content is committed).  ``begin`` is
    the commit stamp of the newest content while unowned (``_ABSENT`` if
    nothing is committed).  ``versions`` holds superseded committed
    versions, newest first.  ``seq`` increments on every ownership
    acquisition so lock-free readers can detect that a writer slipped in
    between their stamp check and their row read.  ``queued`` tracks
    membership in the controller's GC queue.
    """

    __slots__ = ("owner", "begin", "versions", "queued", "seq")

    def __init__(self, owner: "Optional[Transaction]", begin: int) -> None:
        self.owner = owner
        self.begin = begin
        self.versions: list[RowVersion] = []
        self.queued = False
        self.seq = 0

    def committed_row(self) -> Optional[Row]:
        """The newest committed content, or None if nothing is committed
        (call while owning the row or holding the table latch)."""
        if self.owner is None:
            raise SqlExecutionError("committed_row() requires an owned entry")
        if self.versions and self.versions[0].end is None:
            return self.versions[0].row
        return None


class TableData:
    """Rows and indexes of one table."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[Optional[Row]] = []
        self._live_count = 0
        self._indexes: dict[str, Index] = {}
        self._index_columns: dict[str, tuple[str, ...]] = {}
        #: Serialises writers (and undo replay) of this table; readers
        #: never take it.  Held only for the duration of one row operation.
        self.latch = threading.RLock()
        self._controller: "Optional[MvccController]" = None
        self._versions: dict[int, VersionEntry] = {}
        # Columnar cache state (see the module docstring).  ``_col_cache``
        # maps column position -> value list aligned with ``_rows``;
        # ``_col_live`` is the aligned liveness array; ``_col_epoch`` is the
        # ``_data_epoch`` the cache was last synchronised at; ``_col_dirty``
        # holds the row ids mutated since.  All guarded by ``latch``.
        self._data_epoch = 0
        self._col_cache: dict[int, list] = {}
        self._col_live: Optional[list[bool]] = None
        self._col_epoch = 0
        self._col_dirty: set[int] = set()
        #: Columnar observability: full per-column array builds and
        #: incremental dirty-row patch passes (read by Database.stats()).
        self.column_rebuilds = 0
        self.column_patches = 0
        pk_columns = tuple(schema.primary_key_columns)
        if pk_columns:
            self.create_index(f"pk_{schema.name}", pk_columns, unique=True)

    def attach_mvcc(self, controller: "MvccController") -> None:
        """Enable versioned reads/writes through ``controller``.

        Called by the Database once recovery has replayed this table (replay
        runs unversioned: the log contains only committed operations)."""
        self._controller = controller

    # -- index management ---------------------------------------------------

    def create_index(
        self,
        name: str,
        columns: tuple[str, ...],
        unique: bool = False,
        ordered: bool = False,
    ) -> Index:
        """Create (and backfill) an index over the given columns."""
        if name in self._indexes:
            raise SqlExecutionError(f"index {name!r} already exists")
        for column in columns:
            self.schema.column_index(column)
        index: Index
        if ordered:
            index = OrderedIndex(name, columns, unique=unique)
        else:
            index = HashIndex(name, columns, unique=unique)
        positions = [self.schema.column_index(column) for column in columns]
        for row_id, row in enumerate(self._rows):
            if row is not None:
                index.insert(make_key(row[p] for p in positions), row_id)
        self._indexes[name] = index
        self._index_columns[name] = columns
        return index

    def drop_index(self, name: str) -> None:
        """Remove an index by name."""
        self._indexes.pop(name, None)
        self._index_columns.pop(name, None)

    def indexes(self) -> dict[str, Index]:
        """All indexes keyed by name."""
        return dict(self._indexes)

    def find_equality_index(self, columns: tuple[str, ...]) -> Optional[Index]:
        """Find an index whose key columns exactly match ``columns``.

        Column order is normalised so ``(a, b)`` matches an index on
        ``(b, a)`` as long as lookups supply values in index order; callers
        therefore use :meth:`index_column_order` to reorder their keys.
        """
        wanted = tuple(column.lower() for column in columns)
        for index in self._indexes.values():
            have = tuple(column.lower() for column in index.columns)
            if tuple(sorted(have)) == tuple(sorted(wanted)):
                return index
        return None

    # -- statistics ----------------------------------------------------------
    #
    # Statistics are read straight from live storage state (the live-row
    # counter and the indexes' incremental distinct-key tracking), so they
    # cost O(1) to read, stay correct under concurrent inserts/deletes, and
    # survive transaction rollback (the undo log replays inverse operations
    # through the same insert/delete paths that maintain them).

    def column_distinct(self, column: str) -> Optional[int]:
        """NDV of ``column`` from a single-column index over it, or None."""
        wanted = column.lower()
        for index in self._indexes.values():
            if len(index.columns) == 1 and index.columns[0].lower() == wanted:
                return index.distinct_keys()
        return None

    def index_distinct(self, name: str) -> Optional[int]:
        """Distinct key count of the named index, or None if unknown."""
        index = self._indexes.get(name)
        return index.distinct_keys() if index is not None else None

    def statistics(self) -> TableStatistics:
        """A point-in-time snapshot of this table's planner statistics."""
        column_distinct: dict[str, int] = {}
        index_distinct: dict[str, int] = {}
        for name, index in self._indexes.items():
            distinct = index.distinct_keys()
            index_distinct[name] = distinct
            if len(index.columns) == 1:
                column_distinct.setdefault(index.columns[0].lower(), distinct)
        return TableStatistics(
            table=self.schema.name,
            row_count=self._live_count,
            column_distinct=column_distinct,
            index_distinct=index_distinct,
        )

    # -- row operations -----------------------------------------------------

    def insert(self, values: Row) -> int:
        """Insert a (already coerced) row and return its row id."""
        row_id = len(self._rows)
        self._rows.append(values)
        self._live_count += 1
        for name, index in self._indexes.items():
            positions = self._positions(name)
            try:
                index.insert(make_key(values[p] for p in positions), row_id)
            except SqlExecutionError:
                # Roll the insert back so the table stays consistent.  The
                # row was just appended, so popping it restores the row list
                # byte-identically (transaction rollback relies on this).
                self._rows.pop()
                self._live_count -= 1
                self._unindex(values, row_id, skip=name)
                raise
        self._note_mutation(row_id)
        return row_id

    def delete(self, row_id: int) -> None:
        """Delete the row with the given id (no-op if already deleted)."""
        row = self._row_or_none(row_id)
        if row is None:
            return
        self._unindex(row, row_id)
        self._rows[row_id] = None
        self._live_count -= 1
        self._note_mutation(row_id)

    def update(self, row_id: int, values: Row) -> None:
        """Replace the row with the given id."""
        row = self._row_or_none(row_id)
        if row is None:
            raise SqlExecutionError(f"row {row_id} does not exist")
        self._unindex(row, row_id)
        self._rows[row_id] = values
        for name, index in self._indexes.items():
            positions = self._positions(name)
            index.insert(make_key(values[p] for p in positions), row_id)
        self._note_mutation(row_id)

    def get(self, row_id: int) -> Row:
        """Return the row with the given id."""
        row = self._row_or_none(row_id)
        if row is None:
            raise SqlExecutionError(f"row {row_id} does not exist")
        return row

    def scan(self) -> Iterator[tuple[int, Row]]:
        """Iterate over (row_id, row) for every row visible to the calling
        thread's snapshot (every live row when no controller is attached)."""
        controller = self._controller
        if controller is None:
            for row_id, row in enumerate(self._rows):
                if row is not None:
                    yield row_id, row
            return
        snapshot, txn = controller.read_context()
        rows = self._rows
        get = self._versions.get
        for row_id in range(len(rows)):
            entry = get(row_id)
            if entry is None:
                # Unversioned fast path.  The row is read *between* two
                # entry checks: a writer publishes its entry before touching
                # the row, so an unchanged None proves the value read in the
                # middle is the newest committed content — which, having no
                # entry, predates every open snapshot.
                row = rows[row_id]
                if get(row_id) is None:
                    if row is not None:
                        yield row_id, row
                    continue
            visible = self._visible_row(row_id, snapshot, txn)
            if visible is not None:
                yield row_id, visible

    def rows(self) -> Iterator[Row]:
        """Iterate over visible rows only."""
        for _, row in self.scan():
            yield row

    def lookup_rows(self, index: Index, key: object) -> list[tuple[int, Row]]:
        """Rows matching an index key, resolved against the caller's
        snapshot.

        Because committed index keys are removed lazily (see the module
        docstring), a versioned row id found under ``key`` may resolve to a
        version whose key differs; such hits are filtered out here."""
        controller = self._controller
        result = []
        if controller is None:
            for row_id in index.lookup(key):
                row = self._row_or_none(row_id)
                if row is not None:
                    result.append((row_id, row))
            return result
        snapshot, txn = controller.read_context()
        rows = self._rows
        get = self._versions.get
        positions = self._positions(index.name)
        for row_id in index.lookup(key):
            entry = get(row_id)
            if entry is None:
                row = rows[row_id] if row_id < len(rows) else None
                if get(row_id) is None:
                    if row is not None:
                        result.append((row_id, row))
                    continue
            visible = self._visible_row(row_id, snapshot, txn)
            if visible is not None and make_key(
                visible[p] for p in positions
            ) == key:
                result.append((row_id, visible))
        return result

    def _visible_row(
        self, row_id: int, snapshot: int, txn: "Optional[Transaction]"
    ) -> Optional[Row]:
        """Resolve ``row_id`` to the version visible at ``snapshot`` (with
        ``txn`` seeing its own uncommitted writes), without locking.

        Safe against concurrent writers under the writer protocol: ownership
        is published (entry created/seq bumped) *before* the row mutates, an
        abort restores the row *before* releasing ownership, and garbage
        collection only removes entries whose content every open snapshot
        already agrees on.  The retry loop re-resolves when a validation
        read shows a writer slipped in mid-read.
        """
        rows = self._rows
        versions = self._versions
        while True:
            entry = versions.get(row_id)
            if entry is None:
                row = rows[row_id] if row_id < len(rows) else None
                if versions.get(row_id) is None:
                    return row
                continue
            owner = entry.owner
            if owner is not None and owner is txn:
                return rows[row_id] if row_id < len(rows) else None
            if owner is None:
                begin = entry.begin
                seq = entry.seq
                if begin != _ABSENT and begin <= snapshot:
                    row = rows[row_id] if row_id < len(rows) else None
                    if entry.seq == seq:
                        return row
                    continue
            for version in tuple(entry.versions):
                if version.begin <= snapshot:
                    return version.row
            return None

    def select_row_ids(self, predicate: Callable[[Row], bool]) -> list[int]:
        """Row ids of live rows satisfying ``predicate``."""
        return [row_id for row_id, row in self.scan() if predicate(row)]

    def clear(self) -> None:
        """Remove every row but keep the schema and index definitions."""
        self._rows.clear()
        self._live_count = 0
        for index in self._indexes.values():
            index.clear()
        self._drop_column_cache()

    # -- columnar cache ------------------------------------------------------
    #
    # Per-column value arrays for the batch operators in
    # repro.sqlengine.columnar.  Built lazily per requested column under the
    # latch, kept in sync with the row store through the data epoch + dirty
    # set, and never mutated once published (copy-on-write) so captured
    # arrays stay readable lock-free.  See the module docstring for the MVCC
    # fast-path rule.

    def _note_mutation(self, row_id: int) -> None:
        """Record that ``row_id``'s stored content changed (any write path)."""
        self._data_epoch += 1
        if self._col_cache or self._col_live is not None:
            self._col_dirty.add(row_id)

    def _drop_column_cache(self) -> None:
        self._data_epoch += 1
        self._col_cache = {}
        self._col_live = None
        self._col_dirty.clear()
        self._col_epoch = self._data_epoch

    def columnar_scan_state(
        self, positions: list[int]
    ) -> tuple[dict[int, list], list[bool], int, tuple[int, ...]]:
        """Capture everything a batch scan needs, atomically under the latch.

        Returns ``(columns, live, slot_count, versioned_row_ids)`` where
        ``columns`` maps each requested column position to its value array,
        ``live`` flags live row slots, and ``versioned_row_ids`` lists the
        row ids that currently have MVCC version entries.  When the last is
        empty the arrays are universally visible (fast path); otherwise the
        caller must resolve exactly those rows through :meth:`_visible_row`
        on private copies.  The returned arrays are immutable by contract.
        """
        with self.latch:
            self._ensure_columns(positions)
            columns = {position: self._col_cache[position] for position in positions}
            live = self._col_live
            assert live is not None
            versioned = tuple(self._versions) if self._versions else ()
            return columns, live, len(live), versioned

    def _ensure_columns(self, positions: list[int]) -> None:
        """Synchronise the cache with the row store and materialise every
        requested column (call with the latch held)."""
        rows = self._rows
        count = len(rows)
        if self._col_epoch != self._data_epoch:
            # Patch when few rows changed; otherwise rebuild from scratch
            # (dropping cached columns — they re-materialise on demand).
            if self._col_cache and len(self._col_dirty) * 4 <= max(64, count):
                self._patch_columns()
            else:
                self._col_cache = {}
                self._col_dirty.clear()
                self._col_live = [row is not None for row in rows]
                self._col_epoch = self._data_epoch
        elif self._col_live is None:
            self._col_live = [row is not None for row in rows]
        for position in positions:
            if position not in self._col_cache:
                array: list = [None] * count
                for row_id, row in enumerate(rows):
                    if row is not None:
                        array[row_id] = row[position]
                self._col_cache[position] = array
                self.column_rebuilds += 1

    def _patch_columns(self) -> None:
        """Apply the dirty rows to copies of every cached array and publish
        the copies (copy-on-write: captured arrays stay unchanged)."""
        rows = self._rows
        count = len(rows)
        live = self._col_live
        assert live is not None
        if len(live) == count:
            live = live.copy()
        elif len(live) < count:
            live = live + [False] * (count - len(live))
        else:
            live = live[:count]
        fresh: dict[int, list] = {}
        for position, array in self._col_cache.items():
            if len(array) == count:
                array = array.copy()
            elif len(array) < count:
                array = array + [None] * (count - len(array))
            else:
                array = array[:count]
            fresh[position] = array
        for row_id in self._col_dirty:
            if row_id >= count:
                continue
            row = rows[row_id]
            if row is None:
                live[row_id] = False
                for position, array in fresh.items():
                    array[row_id] = None
            else:
                live[row_id] = True
                for position, array in fresh.items():
                    array[row_id] = row[position]
        self._col_cache = fresh
        self._col_live = live
        self._col_dirty.clear()
        self._col_epoch = self._data_epoch
        self.column_patches += 1

    # -- undo operations ----------------------------------------------------
    #
    # Inverse row operations replayed by the transaction undo log.  They are
    # written to restore the table (rows *and* every index) to exactly its
    # pre-operation state, including repairing indexes an aborted UPDATE left
    # half-modified.

    def undo_insert(self, row_id: int, row: Row) -> None:
        """Undo an insert: remove the row and all of its index entries.

        When the row sits at the tail of the row list (the common case, since
        inserts always append and the undo log replays newest-first) the slot
        is popped so the storage returns to a byte-identical state; otherwise
        it is tombstoned.
        """
        if self._row_or_none(row_id) is None:
            return
        self._unindex(row, row_id)
        self._live_count -= 1
        if row_id == len(self._rows) - 1:
            self._rows.pop()
        else:
            self._rows[row_id] = None
        self._note_mutation(row_id)

    def undo_delete(self, row_id: int, row: Row) -> None:
        """Undo a delete: restore the row and re-insert its index entries."""
        self._place_row(row_id, row)

    def undo_update(self, row_id: int, old_row: Row, new_row: Row) -> None:
        """Undo an update: restore ``old_row`` and repair every index.

        Index deletes are idempotent, so both the new and the old key are
        removed defensively before the old key is re-inserted — this restores
        consistency even if the update failed partway through re-indexing.
        """
        for name, index in self._indexes.items():
            positions = self._positions(name)
            index.delete(make_key(new_row[p] for p in positions), row_id)
            index.delete(make_key(old_row[p] for p in positions), row_id)
            index.insert(make_key(old_row[p] for p in positions), row_id)
        self._rows[row_id] = old_row
        self._note_mutation(row_id)

    # -- MVCC write path ----------------------------------------------------
    #
    # Used by the executor when a statement runs inside a transaction on a
    # controller-attached table.  Every method takes the table latch; none
    # ever blocks on another transaction (conflicts abort the caller).

    def mvcc_insert(self, values: Row, txn: "Transaction") -> int:
        """Insert an uncommitted row owned by ``txn``; returns its row id.

        The version entry is published *before* the row list grows so
        concurrent snapshot readers can never mistake the new row for
        committed content.
        """
        with self.latch:
            row_id = len(self._rows)
            entry = self._versions.get(row_id)
            if entry is None:
                entry = VersionEntry(owner=txn, begin=_ABSENT)
                self._versions[row_id] = entry
            elif entry.owner is txn and not entry.versions:
                # This transaction's own insert into the slot was undone by
                # a savepoint rollback; it may reuse the slot it still owns.
                pass
            else:
                # The slot was freed by a rolled-back insert whose entry is
                # still awaiting GC; take it over.
                if entry.owner is not None or entry.versions or entry.begin != _ABSENT:
                    self._conflict(
                        f"row slot {row_id} of {self.schema.name!r} is "
                        "still owned by another transaction"
                    )
                entry.owner = txn
            entry.seq += 1
            self._rows.append(values)
            self._live_count += 1
            indexed: list[tuple[Index, object]] = []
            try:
                for name, index in self._indexes.items():
                    positions = self._positions(name)
                    key = make_key(values[p] for p in positions)
                    self._checked_index_insert(index, key, row_id, txn)
                    indexed.append((index, key))
            except BaseException:
                for index, key in indexed:
                    index.delete(key, row_id)
                self._rows.pop()
                self._live_count -= 1
                entry.owner = None
                entry.begin = _ABSENT
                del self._versions[row_id]
                raise
            txn.write_set.append((self, row_id))
            self._controller.register_write(txn)
            self._note_mutation(row_id)
            return row_id

    def mvcc_lock_row(self, row_id: int, txn: "Transaction") -> None:
        """Acquire write ownership of ``row_id`` for ``txn``.

        First-updater-wins: raises
        :class:`~repro.sqlengine.errors.TransactionConflictError` when the
        row is owned by another live transaction or was committed after
        ``txn``'s snapshot.  On success the committed content is pushed
        onto the version chain so snapshot readers keep finding it while
        ``txn`` mutates the row in place.
        """
        with self.latch:
            entry = self._versions.get(row_id)
            if entry is None:
                entry = VersionEntry(owner=txn, begin=0)
                entry.versions.append(RowVersion(0, None, self._rows[row_id]))
                entry.seq += 1
                self._versions[row_id] = entry
            elif entry.owner is txn:
                return
            elif entry.owner is not None:
                self._conflict(
                    f"row {row_id} of {self.schema.name!r} is being written "
                    "by another transaction"
                )
            elif entry.begin > (txn.snapshot or 0):
                self._conflict(
                    f"row {row_id} of {self.schema.name!r} was committed "
                    "after this transaction's snapshot"
                )
            else:
                entry.versions.insert(
                    0, RowVersion(entry.begin, None, self._rows[row_id])
                )
                entry.owner = txn
                entry.seq += 1
            txn.write_set.append((self, row_id))
            self._controller.register_write(txn)

    def mvcc_update(self, row_id: int, values: Row, txn: "Transaction") -> None:
        """Replace an owned row's content (call after :meth:`mvcc_lock_row`).

        Index delta relative to the *committed* key ``kc``: the new key is
        inserted unless it equals ``kc``, and the previous key is deleted
        unless it equals ``kc`` — so committed keys survive for older
        snapshots while the transaction's own transient keys are cleaned
        eagerly.
        """
        with self.latch:
            entry = self._versions[row_id]
            old_row = self._rows[row_id]
            committed = entry.committed_row()
            for name, index in self._indexes.items():
                positions = self._positions(name)
                old_key = make_key(old_row[p] for p in positions)
                new_key = make_key(values[p] for p in positions)
                if old_key == new_key:
                    continue
                committed_key = (
                    make_key(committed[p] for p in positions)
                    if committed is not None
                    else _ABSENT_KEY
                )
                if new_key != committed_key:
                    self._checked_index_insert(index, new_key, row_id, txn)
                if old_key != committed_key:
                    index.delete(old_key, row_id)
            self._rows[row_id] = values
            self._note_mutation(row_id)

    def mvcc_delete(self, row_id: int, txn: "Transaction") -> None:
        """Delete an owned row (call after :meth:`mvcc_lock_row`)."""
        with self.latch:
            entry = self._versions[row_id]
            old_row = self._rows[row_id]
            if old_row is None:
                return
            committed = entry.committed_row()
            for name, index in self._indexes.items():
                positions = self._positions(name)
                old_key = make_key(old_row[p] for p in positions)
                committed_key = (
                    make_key(committed[p] for p in positions)
                    if committed is not None
                    else _ABSENT_KEY
                )
                if old_key != committed_key:
                    index.delete(old_key, row_id)
            self._rows[row_id] = None
            self._live_count -= 1
            self._note_mutation(row_id)

    def undo_versioned_update(
        self, row_id: int, old_row: Row, new_row: Row
    ) -> None:
        """Exact inverse of :meth:`mvcc_update` (called with the latch held
        by the undo log).  Deletes are defensive — both keys are removed
        before the old key is restored — so a partially indexed update is
        repaired too, mirroring :meth:`undo_update`."""
        entry = self._versions[row_id]
        committed = entry.committed_row()
        for name, index in self._indexes.items():
            positions = self._positions(name)
            old_key = make_key(old_row[p] for p in positions)
            new_key = make_key(new_row[p] for p in positions)
            if old_key == new_key:
                continue
            committed_key = (
                make_key(committed[p] for p in positions)
                if committed is not None
                else _ABSENT_KEY
            )
            if new_key != committed_key:
                index.delete(new_key, row_id)
            if old_key != committed_key:
                index.delete(old_key, row_id)
                index.insert(old_key, row_id, enforce_unique=False)
        self._rows[row_id] = old_row
        self._note_mutation(row_id)

    def undo_versioned_delete(self, row_id: int, row: Row) -> None:
        """Exact inverse of :meth:`mvcc_delete`."""
        entry = self._versions[row_id]
        committed = entry.committed_row()
        for name, index in self._indexes.items():
            positions = self._positions(name)
            old_key = make_key(row[p] for p in positions)
            committed_key = (
                make_key(committed[p] for p in positions)
                if committed is not None
                else _ABSENT_KEY
            )
            if old_key != committed_key:
                index.insert(old_key, row_id, enforce_unique=False)
        self._rows[row_id] = row
        self._live_count += 1
        self._note_mutation(row_id)

    def install_commit(self, row_id: int, txn: "Transaction", stamp: int) -> None:
        """Stamp ``txn``'s write of ``row_id`` as committed at ``stamp``.

        Called under the controller's commit lock for every write-set row.
        The superseded version learns its end stamp and which index keys
        now exist solely for it; the entry then queues for GC.
        """
        with self.latch:
            entry = self._versions.get(row_id)
            if entry is None or entry.owner is not txn:
                return
            final = self._rows[row_id] if row_id < len(self._rows) else None
            prior = entry.versions[0] if entry.versions else None
            if prior is not None and prior.end is None:
                prior.end = stamp
                prior_row = prior.row
                for name, index in self._indexes.items():
                    positions = self._positions(name)
                    prior_key = make_key(prior_row[p] for p in positions)
                    if final is None or prior_key != make_key(
                        final[p] for p in positions
                    ):
                        prior.stale_keys.append((name, prior_key))
            elif prior is None and final is None:
                # An insert that was rolled back statement-level (or
                # deleted again) before the commit: nothing to publish.
                entry.owner = None
                entry.begin = _ABSENT
                self._queue_gc(entry, row_id)
                return
            entry.begin = stamp
            entry.owner = None
            self._queue_gc(entry, row_id)

    def release_ownership(self, row_id: int, txn: "Transaction") -> None:
        """Drop ``txn``'s ownership of ``row_id`` after a rollback (the
        undo log has already restored the row content and indexes)."""
        with self.latch:
            entry = self._versions.get(row_id)
            if entry is None or entry.owner is not txn:
                return
            if entry.versions and entry.versions[0].end is None:
                prior = entry.versions.pop(0)
                entry.begin = prior.begin
                entry.owner = None
                self._queue_gc(entry, row_id)
            else:
                # An insert that never committed: the undo log popped (or
                # tombstoned) the row; the entry stays behind as a marker
                # until GC so in-flight snapshot readers cannot mistake a
                # reused slot for committed content.
                entry.owner = None
                entry.begin = _ABSENT
                self._queue_gc(entry, row_id)

    def collect_row(self, row_id: int, min_active: int) -> tuple[bool, int]:
        """Prune versions of ``row_id`` unreachable by every snapshot at or
        after ``min_active``; returns (fully collected?, versions freed)."""
        with self.latch:
            entry = self._versions.get(row_id)
            if entry is None:
                return True, 0
            if entry.owner is not None:
                # A new owner appeared; its commit (or rollback) re-queues.
                entry.queued = False
                return True, 0
            pruned = 0
            if entry.begin == _ABSENT:
                for version in entry.versions:
                    self._drop_version_keys(version, row_id)
                    pruned += 1
                del self._versions[row_id]
                entry.queued = False
                return True, pruned
            if entry.begin <= min_active:
                # The current content is visible to every open snapshot:
                # the whole chain (and the entry itself) is dead.
                for version in entry.versions:
                    self._drop_version_keys(version, row_id)
                    pruned += 1
                del self._versions[row_id]
                entry.queued = False
                return True, pruned
            # Newest content is invisible to the oldest snapshot: keep the
            # chain down to the newest version that snapshot can read.
            keep = len(entry.versions)
            for position, version in enumerate(entry.versions):
                if version.begin <= min_active:
                    keep = position + 1
                    break
            for version in entry.versions[keep:]:
                self._drop_version_keys(version, row_id)
                pruned += 1
            del entry.versions[keep:]
            return False, pruned

    def _queue_gc(self, entry: VersionEntry, row_id: int) -> None:
        if not entry.queued:
            entry.queued = True
            self._controller.enqueue_gc(self, row_id)

    def _drop_version_keys(self, version: RowVersion, row_id: int) -> None:
        for index_name, key in version.stale_keys:
            index = self._indexes.get(index_name)
            if index is not None:
                index.delete(key, row_id)
        version.stale_keys.clear()

    def _checked_index_insert(
        self, index: Index, key: object, row_id: int, txn: "Transaction"
    ) -> None:
        """Insert an index entry, discriminating a *real* duplicate from a
        dead-version key that merely lingers until GC.

        A unique violation re-raises when some other row id under the key
        is live (committed and current); it becomes a
        :class:`TransactionConflictError` when the holder is another
        in-flight transaction or a commit newer than ``txn``'s snapshot
        (the outcome depends on who commits — the safe answer is to abort
        and retry); and it is overridden when every holder is a dead
        version.
        """
        try:
            index.insert(key, row_id)
            return
        except UniqueViolationError:
            pass
        snapshot = txn.snapshot or 0
        rows = self._rows
        for other_id in index.lookup(key):
            if other_id == row_id:
                continue
            entry = self._versions.get(other_id)
            if entry is None:
                raise UniqueViolationError(
                    f"unique index {index.name!r} violated for key {key!r}",
                    index=index.name,
                    key=key,
                )
            current = rows[other_id] if other_id < len(rows) else None
            positions = self._positions(index.name)
            current_holds_key = current is not None and make_key(
                current[p] for p in positions
            ) == key
            if entry.owner is not None and entry.owner is not txn:
                if current_holds_key or any(
                    version.end is None
                    and version.row is not None
                    and make_key(version.row[p] for p in positions) == key
                    for version in entry.versions
                ):
                    self._conflict(
                        f"key {key!r} of unique index {index.name!r} is "
                        "claimed by another in-flight transaction"
                    )
                continue
            if current_holds_key:
                if entry.owner is None and entry.begin > snapshot:
                    self._conflict(
                        f"key {key!r} of unique index {index.name!r} was "
                        "committed after this transaction's snapshot"
                    )
                raise UniqueViolationError(
                    f"unique index {index.name!r} violated for key {key!r}",
                    index=index.name,
                    key=key,
                )
        index.insert(key, row_id, enforce_unique=False)

    def _conflict(self, message: str) -> None:
        controller = self._controller
        if controller is not None:
            controller.count_conflict()
        raise TransactionConflictError(message)

    # -- redo operations ----------------------------------------------------
    #
    # Forward row operations replayed by crash recovery.  The write-ahead
    # log records each committed insert with its original row id, so replay
    # must be able to place a row at an exact position — including leaving
    # holes where aborted transactions once consumed ids — for the rebuilt
    # indexes and statistics to match the pre-crash state.

    def redo_insert(self, row_id: int, row: Row) -> None:
        """Redo an insert at its original row id, extending the row list
        with tombstones if ids in between never materialised."""
        self._place_row(row_id, row)

    def _place_row(self, row_id: int, row: Row) -> None:
        """Materialise ``row`` at an exact id (shared by delete-undo and
        insert-redo, which are the same operation from storage's view)."""
        if row_id >= len(self._rows):
            self._rows.extend([None] * (row_id + 1 - len(self._rows)))
        self._rows[row_id] = row
        self._live_count += 1
        for name, index in self._indexes.items():
            positions = self._positions(name)
            index.insert(make_key(row[p] for p in positions), row_id)
        self._note_mutation(row_id)

    def slot_count(self) -> int:
        """Total row slots allocated (live rows plus tombstones); the next
        insert takes id ``slot_count()``.  Snapshots persist this so row
        ids keep lining up with the log across a checkpoint."""
        return len(self._rows)

    def restore_rows(
        self, rows: list[tuple[int, Row]], slot_count: int
    ) -> None:
        """Replace all storage with ``rows`` at their exact ids (used by
        snapshot loading).  Every index is rebuilt from scratch, which also
        restores the incremental distinct-key statistics."""
        if slot_count < len(rows):
            raise SqlExecutionError(
                f"snapshot for {self.schema.name!r} claims {slot_count} slots "
                f"for {len(rows)} rows"
            )
        self._rows = [None] * slot_count
        for row_id, row in rows:
            self._rows[row_id] = row
        self._live_count = len(rows)
        for name, index in self._indexes.items():
            index.clear()
            positions = self._positions(name)
            for row_id, row in rows:
                index.insert(make_key(row[p] for p in positions), row_id)
        self._drop_column_cache()

    def __len__(self) -> int:
        return self._live_count

    # -- internals ----------------------------------------------------------

    def _row_or_none(self, row_id: int) -> Optional[Row]:
        if 0 <= row_id < len(self._rows):
            return self._rows[row_id]
        return None

    def _positions(self, index_name: str) -> list[int]:
        return [
            self.schema.column_index(column)
            for column in self._index_columns[index_name]
        ]

    def _unindex(self, row: Row, row_id: int, skip: str | None = None) -> None:
        for name, index in self._indexes.items():
            if name == skip:
                continue
            positions = self._positions(name)
            index.delete(make_key(row[p] for p in positions), row_id)
