"""Row storage for the in-memory SQL engine.

Each table's rows live in a :class:`TableData` instance: a dense list of row
tuples plus the indexes built over the table.  Row identifiers are stable
positions in the list; deleted rows are tombstoned (``None``) so identifiers
never move, which keeps index maintenance simple.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.sqlengine.catalog import TableSchema, TableStatistics
from repro.sqlengine.errors import SqlExecutionError
from repro.sqlengine.indexes import HashIndex, Index, OrderedIndex, make_key

Row = tuple[object, ...]


class TableData:
    """Rows and indexes of one table."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[Optional[Row]] = []
        self._live_count = 0
        self._indexes: dict[str, Index] = {}
        self._index_columns: dict[str, tuple[str, ...]] = {}
        pk_columns = tuple(schema.primary_key_columns)
        if pk_columns:
            self.create_index(f"pk_{schema.name}", pk_columns, unique=True)

    # -- index management ---------------------------------------------------

    def create_index(
        self,
        name: str,
        columns: tuple[str, ...],
        unique: bool = False,
        ordered: bool = False,
    ) -> Index:
        """Create (and backfill) an index over the given columns."""
        if name in self._indexes:
            raise SqlExecutionError(f"index {name!r} already exists")
        for column in columns:
            self.schema.column_index(column)
        index: Index
        if ordered:
            index = OrderedIndex(name, columns, unique=unique)
        else:
            index = HashIndex(name, columns, unique=unique)
        positions = [self.schema.column_index(column) for column in columns]
        for row_id, row in enumerate(self._rows):
            if row is not None:
                index.insert(make_key(row[p] for p in positions), row_id)
        self._indexes[name] = index
        self._index_columns[name] = columns
        return index

    def drop_index(self, name: str) -> None:
        """Remove an index by name."""
        self._indexes.pop(name, None)
        self._index_columns.pop(name, None)

    def indexes(self) -> dict[str, Index]:
        """All indexes keyed by name."""
        return dict(self._indexes)

    def find_equality_index(self, columns: tuple[str, ...]) -> Optional[Index]:
        """Find an index whose key columns exactly match ``columns``.

        Column order is normalised so ``(a, b)`` matches an index on
        ``(b, a)`` as long as lookups supply values in index order; callers
        therefore use :meth:`index_column_order` to reorder their keys.
        """
        wanted = tuple(column.lower() for column in columns)
        for index in self._indexes.values():
            have = tuple(column.lower() for column in index.columns)
            if tuple(sorted(have)) == tuple(sorted(wanted)):
                return index
        return None

    # -- statistics ----------------------------------------------------------
    #
    # Statistics are read straight from live storage state (the live-row
    # counter and the indexes' incremental distinct-key tracking), so they
    # cost O(1) to read, stay correct under concurrent inserts/deletes, and
    # survive transaction rollback (the undo log replays inverse operations
    # through the same insert/delete paths that maintain them).

    def column_distinct(self, column: str) -> Optional[int]:
        """NDV of ``column`` from a single-column index over it, or None."""
        wanted = column.lower()
        for index in self._indexes.values():
            if len(index.columns) == 1 and index.columns[0].lower() == wanted:
                return index.distinct_keys()
        return None

    def index_distinct(self, name: str) -> Optional[int]:
        """Distinct key count of the named index, or None if unknown."""
        index = self._indexes.get(name)
        return index.distinct_keys() if index is not None else None

    def statistics(self) -> TableStatistics:
        """A point-in-time snapshot of this table's planner statistics."""
        column_distinct: dict[str, int] = {}
        index_distinct: dict[str, int] = {}
        for name, index in self._indexes.items():
            distinct = index.distinct_keys()
            index_distinct[name] = distinct
            if len(index.columns) == 1:
                column_distinct.setdefault(index.columns[0].lower(), distinct)
        return TableStatistics(
            table=self.schema.name,
            row_count=self._live_count,
            column_distinct=column_distinct,
            index_distinct=index_distinct,
        )

    # -- row operations -----------------------------------------------------

    def insert(self, values: Row) -> int:
        """Insert a (already coerced) row and return its row id."""
        row_id = len(self._rows)
        self._rows.append(values)
        self._live_count += 1
        for name, index in self._indexes.items():
            positions = self._positions(name)
            try:
                index.insert(make_key(values[p] for p in positions), row_id)
            except SqlExecutionError:
                # Roll the insert back so the table stays consistent.  The
                # row was just appended, so popping it restores the row list
                # byte-identically (transaction rollback relies on this).
                self._rows.pop()
                self._live_count -= 1
                self._unindex(values, row_id, skip=name)
                raise
        return row_id

    def delete(self, row_id: int) -> None:
        """Delete the row with the given id (no-op if already deleted)."""
        row = self._row_or_none(row_id)
        if row is None:
            return
        self._unindex(row, row_id)
        self._rows[row_id] = None
        self._live_count -= 1

    def update(self, row_id: int, values: Row) -> None:
        """Replace the row with the given id."""
        row = self._row_or_none(row_id)
        if row is None:
            raise SqlExecutionError(f"row {row_id} does not exist")
        self._unindex(row, row_id)
        self._rows[row_id] = values
        for name, index in self._indexes.items():
            positions = self._positions(name)
            index.insert(make_key(values[p] for p in positions), row_id)

    def get(self, row_id: int) -> Row:
        """Return the row with the given id."""
        row = self._row_or_none(row_id)
        if row is None:
            raise SqlExecutionError(f"row {row_id} does not exist")
        return row

    def scan(self) -> Iterator[tuple[int, Row]]:
        """Iterate over (row_id, row) for every live row."""
        for row_id, row in enumerate(self._rows):
            if row is not None:
                yield row_id, row

    def rows(self) -> Iterator[Row]:
        """Iterate over live rows only."""
        for _, row in self.scan():
            yield row

    def lookup_rows(self, index: Index, key: object) -> list[tuple[int, Row]]:
        """Rows matching an index key."""
        result = []
        for row_id in index.lookup(key):
            row = self._row_or_none(row_id)
            if row is not None:
                result.append((row_id, row))
        return result

    def select_row_ids(self, predicate: Callable[[Row], bool]) -> list[int]:
        """Row ids of live rows satisfying ``predicate``."""
        return [row_id for row_id, row in self.scan() if predicate(row)]

    def clear(self) -> None:
        """Remove every row but keep the schema and index definitions."""
        self._rows.clear()
        self._live_count = 0
        for index in self._indexes.values():
            index.clear()

    # -- undo operations ----------------------------------------------------
    #
    # Inverse row operations replayed by the transaction undo log.  They are
    # written to restore the table (rows *and* every index) to exactly its
    # pre-operation state, including repairing indexes an aborted UPDATE left
    # half-modified.

    def undo_insert(self, row_id: int, row: Row) -> None:
        """Undo an insert: remove the row and all of its index entries.

        When the row sits at the tail of the row list (the common case, since
        inserts always append and the undo log replays newest-first) the slot
        is popped so the storage returns to a byte-identical state; otherwise
        it is tombstoned.
        """
        if self._row_or_none(row_id) is None:
            return
        self._unindex(row, row_id)
        self._live_count -= 1
        if row_id == len(self._rows) - 1:
            self._rows.pop()
        else:
            self._rows[row_id] = None

    def undo_delete(self, row_id: int, row: Row) -> None:
        """Undo a delete: restore the row and re-insert its index entries."""
        self._place_row(row_id, row)

    def undo_update(self, row_id: int, old_row: Row, new_row: Row) -> None:
        """Undo an update: restore ``old_row`` and repair every index.

        Index deletes are idempotent, so both the new and the old key are
        removed defensively before the old key is re-inserted — this restores
        consistency even if the update failed partway through re-indexing.
        """
        for name, index in self._indexes.items():
            positions = self._positions(name)
            index.delete(make_key(new_row[p] for p in positions), row_id)
            index.delete(make_key(old_row[p] for p in positions), row_id)
            index.insert(make_key(old_row[p] for p in positions), row_id)
        self._rows[row_id] = old_row

    # -- redo operations ----------------------------------------------------
    #
    # Forward row operations replayed by crash recovery.  The write-ahead
    # log records each committed insert with its original row id, so replay
    # must be able to place a row at an exact position — including leaving
    # holes where aborted transactions once consumed ids — for the rebuilt
    # indexes and statistics to match the pre-crash state.

    def redo_insert(self, row_id: int, row: Row) -> None:
        """Redo an insert at its original row id, extending the row list
        with tombstones if ids in between never materialised."""
        self._place_row(row_id, row)

    def _place_row(self, row_id: int, row: Row) -> None:
        """Materialise ``row`` at an exact id (shared by delete-undo and
        insert-redo, which are the same operation from storage's view)."""
        if row_id >= len(self._rows):
            self._rows.extend([None] * (row_id + 1 - len(self._rows)))
        self._rows[row_id] = row
        self._live_count += 1
        for name, index in self._indexes.items():
            positions = self._positions(name)
            index.insert(make_key(row[p] for p in positions), row_id)

    def slot_count(self) -> int:
        """Total row slots allocated (live rows plus tombstones); the next
        insert takes id ``slot_count()``.  Snapshots persist this so row
        ids keep lining up with the log across a checkpoint."""
        return len(self._rows)

    def restore_rows(
        self, rows: list[tuple[int, Row]], slot_count: int
    ) -> None:
        """Replace all storage with ``rows`` at their exact ids (used by
        snapshot loading).  Every index is rebuilt from scratch, which also
        restores the incremental distinct-key statistics."""
        if slot_count < len(rows):
            raise SqlExecutionError(
                f"snapshot for {self.schema.name!r} claims {slot_count} slots "
                f"for {len(rows)} rows"
            )
        self._rows = [None] * slot_count
        for row_id, row in rows:
            self._rows[row_id] = row
        self._live_count = len(rows)
        for name, index in self._indexes.items():
            index.clear()
            positions = self._positions(name)
            for row_id, row in rows:
                index.insert(make_key(row[p] for p in positions), row_id)

    def __len__(self) -> int:
        return self._live_count

    # -- internals ----------------------------------------------------------

    def _row_or_none(self, row_id: int) -> Optional[Row]:
        if 0 <= row_id < len(self._rows):
            return self._rows[row_id]
        return None

    def _positions(self, index_name: str) -> list[int]:
        return [
            self.schema.column_index(column)
            for column in self._index_columns[index_name]
        ]

    def _unindex(self, row: Row, row_id: int, skip: str | None = None) -> None:
        for name, index in self._indexes.items():
            if name == skip:
                continue
            positions = self._positions(name)
            index.delete(make_key(row[p] for p in positions), row_id)
