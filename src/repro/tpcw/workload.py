"""Random-parameter generation for the benchmark queries.

The paper runs every query "using random valid parameters"; this module
draws those parameters from a seeded generator so runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.tpcw.population import PopulationScale, customer_uname
from repro.tpcw.schema import TPCW_SUBJECTS


@dataclass
class ParameterGenerator:
    """Draws random valid parameters for each benchmark query."""

    scale: PopulationScale
    seed: int = 7
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def customer_id(self) -> int:
        """A random valid customer id (getName)."""
        return self._rng.randint(1, self.scale.num_customers)

    def customer_username(self) -> str:
        """A random valid customer user name (getCustomer)."""
        return customer_uname(self._rng.randint(1, self.scale.num_customers))

    def subject(self) -> str:
        """A random valid item subject (doSubjectSearch)."""
        return self._rng.choice(TPCW_SUBJECTS)

    def item_id(self) -> int:
        """A random valid item id (doGetRelated)."""
        return self._rng.randint(1, self.scale.num_items)

    def reset(self) -> None:
        """Restart the sequence (so two variants see identical parameters)."""
        self._rng = random.Random(self.seed)
